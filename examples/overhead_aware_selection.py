"""Overhead-conscious format selection (§6's related-work extension).

Converting a matrix out of CSR costs many SpMV-equivalents (Table 8:
COO 9x, ELL 102x, HYB 147x).  Whether switching pays off depends on how
many SpMV calls the application will make — PageRank-style solvers run
thousands, a single residual check runs one.

This script sweeps the call count for matrices with different structures
and shows where the crossover (break-even) points fall.

Run:  python examples/overhead_aware_selection.py
"""

import numpy as np

from repro.core.overhead import select_with_overhead
from repro.datasets.generators import (
    power_law_rows,
    random_uniform,
    stencil_2d,
)
from repro.features.stats import compute_stats
from repro.gpu import PASCAL


def main() -> None:
    rng = np.random.default_rng(21)
    matrices = {
        "2-D stencil (ELL-friendly)": stencil_2d(rng, nx=60, ny=60),
        "scattered uniform (CSR-friendly)": random_uniform(
            rng, nrows=4000, density=0.004
        ),
        "moderate power-law (HYB-friendly)": power_law_rows(
            rng, nrows=5000, avg_nnz_per_row=10, alpha=1.7, max_over_mean=2.9
        ),
    }
    print("amortised format choice on the simulated GTX 1080 (Pascal)")
    print("(matrices are read from .mtx files into CSR; conversion uses")
    print(" Table 8's relative costs)\n")
    for name, matrix in matrices.items():
        stats = compute_stats(matrix)
        print(name)
        header_printed = False
        for calls in (1, 10, 100, 1_000, 10_000, 100_000):
            decision = select_with_overhead(stats, PASCAL, calls)
            if not header_printed:
                print(f"  qualitative best format: "
                      f"{decision.qualitative_best}")
                if np.isfinite(decision.breakeven_calls):
                    print(f"  break-even at ~{decision.breakeven_calls:,.0f} "
                          "SpMV calls")
                header_printed = True
            marker = " <- converts" if decision.converted else ""
            print(f"    {calls:>7,} calls -> {decision.chosen_format}{marker}")
        print()


if __name__ == "__main__":
    main()
