"""Explainability: what the format-selection clusters actually contain.

The paper argues the semi-supervised approach is *"more explainable than
most supervised models"* because it separates matrix similarity from
format choice.  This script makes that concrete: it prints a purity
report, profiles the biggest clusters in terms of the raw Table-1
features, and explains individual predictions.

Run:  python examples/explain_clusters.py
"""

from repro.core.explain import cluster_profile
from repro.core.labeling import build_labeled_dataset
from repro.core.purity import cluster_purity, purity_report
from repro.core.semisupervised import ClusterFormatSelector
from repro.datasets import build_collection
from repro.features import FEATURE_NAMES, extract_features_collection
from repro.gpu import GPUSimulator, TURING


def main() -> None:
    collection = build_collection(seed=5, size=220)
    features = extract_features_collection(collection.records)
    sim = GPUSimulator(TURING, trials=50)
    dataset = build_labeled_dataset(
        "turing", features, sim.benchmark_collection(collection.records)
    )
    family_of = {r.name: r.family for r in collection.records}

    selector = ClusterFormatSelector("kmeans", "vote", 30, seed=0)
    selector.fit(dataset.X, dataset.labels)

    overall = cluster_purity(dataset.labels, selector.train_assignments_)
    print(f"{selector.n_clusters_} clusters, overall purity {overall:.3f} "
          "(= accuracy ceiling of any per-cluster labeler)\n")

    report = purity_report(dataset.labels, selector.train_assignments_)
    print("largest clusters:")
    print(f"{'cluster':>8} {'size':>5} {'purity':>7} {'label':>6}  members")
    for summary in report[:8]:
        members = [
            dataset.names[i]
            for i in range(len(dataset))
            if selector.train_assignments_[i] == summary.cluster
        ]
        families = sorted({family_of[m] for m in members})
        print(
            f"{summary.cluster:>8} {summary.size:>5} {summary.purity:>7.2f} "
            f"{summary.majority_format:>6}  {', '.join(families[:4])}"
        )

    print("\nwhat makes the top cluster special:")
    top = report[0].cluster
    profile = cluster_profile(
        selector, top, dataset.X, list(FEATURE_NAMES)
    )
    print(f"  cluster #{top}: {profile.size} matrices, label {profile.label}")
    print(f"  most distinguishing features: "
          f"{', '.join(profile.distinguishing_features)}")
    for feat in profile.distinguishing_features[:3]:
        lo, med, hi = profile.feature_ranges[feat]
        print(f"    {feat}: min {lo:.3g}, median {med:.3g}, max {hi:.3g}")

    print("\nimpure clusters (where mispredictions come from):")
    for summary in report:
        if summary.purity < 0.9 and summary.size >= 5:
            print(
                f"  cluster {summary.cluster}: size {summary.size}, "
                f"purity {summary.purity:.2f}, labels {summary.label_counts}"
            )

    # Contrast: probing a black-box supervised model needs indirect tools
    # like permutation importance (§1: "it is hard to understand the
    # results of many supervised systems").
    from repro.core.supervised import SupervisedFormatSelector
    from repro.ml.inspection import permutation_importance

    print("\nfor contrast — permutation importance of a Random Forest:")
    rf = SupervisedFormatSelector("RF", seed=0).fit(dataset.X, dataset.labels)
    imp = permutation_importance(rf, dataset.X, dataset.labels, n_repeats=3)
    for j in imp.ranking()[:5]:
        print(
            f"  {FEATURE_NAMES[j]:<14} accuracy drop "
            f"{imp.importances_mean[j]:+.3f} ± {imp.importances_std[j]:.3f}"
        )


if __name__ == "__main__":
    main()
