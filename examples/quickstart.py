"""Quickstart: pick the best sparse format for a matrix with the
semi-supervised selector.

Walks the full pipeline end to end on a small synthetic collection:

1. build matrices and extract the Table-1 features,
2. benchmark them on a simulated NVIDIA V100 (per-format SpMV times),
3. train the paper's K-Means-VOTE selector,
4. predict the format for new, unseen matrices and explain the choice.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.explain import explain_prediction, format_explanation
from repro.core.labeling import build_labeled_dataset
from repro.core.semisupervised import ClusterFormatSelector
from repro.datasets import build_collection
from repro.datasets.generators import power_law_rows, stencil_2d
from repro.features import extract_features, extract_features_collection
from repro.gpu import GPUSimulator, VOLTA


def main() -> None:
    # 1. A small training collection (synthetic SuiteSparse stand-in).
    print("building a 150-matrix training collection ...")
    collection = build_collection(seed=1, size=150)
    features = extract_features_collection(collection.records)

    # 2. Simulated benchmarking campaign on Volta: per-format SpMV times
    #    -> best-format labels.  On real hardware this is the expensive
    #    step (Table 8: ~a day per GPU); here it is instant.
    print("benchmarking all formats on the simulated V100 ...")
    simulator = GPUSimulator(VOLTA, trials=50)
    results = simulator.benchmark_collection(collection.records)
    dataset = build_labeled_dataset("volta", features, results)
    print(f"  {len(dataset)} runnable matrices, "
          f"label distribution: {dataset.class_distribution()}")

    # 3. The paper's semi-supervised selector: log + min-max + PCA-8
    #    preprocessing, K-Means clusters, majority-vote cluster labels.
    selector = ClusterFormatSelector(
        clusterer="kmeans", labeler="vote", n_clusters=40, seed=0
    )
    selector.fit(dataset.X, dataset.labels)
    print(f"trained K-Means-VOTE with {selector.n_clusters_} clusters")

    # 4. Predict for unseen matrices with very different structures.
    rng = np.random.default_rng(99)
    unseen = {
        "5-point stencil (uniform rows)": stencil_2d(rng, nx=50, ny=50),
        "power-law rows (skewed)": power_law_rows(
            rng, nrows=3000, avg_nnz_per_row=8, alpha=1.8, max_over_mean=2.8
        ),
    }
    for name, matrix in unseen.items():
        x = extract_features(matrix)
        predicted = selector.predict(x[None, :])[0]
        truth = simulator.benchmark(name, matrix)
        print(f"\n{name}:")
        print(f"  predicted format: {predicted}")
        print(f"  simulated ground truth: {truth.best_format} "
              f"(times: {({f: f'{t*1e6:.1f}us' for f, t in truth.times.items()})})")
        explanation = explain_prediction(
            selector, x, dataset.names, dataset.labels
        )
        print("  " + format_explanation(explanation).replace("\n", "\n  "))


if __name__ == "__main__":
    main()
