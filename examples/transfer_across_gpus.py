"""Porting a format selector to a new GPU with a tiny benchmarking budget.

The paper's core pitch (§4): clusters are architecture-invariant, so
moving to a new platform only requires re-benchmarking ~one matrix per
cluster and re-voting the cluster labels — versus re-running the full
benchmarking campaign a supervised model needs.

This script trains on a simulated Pascal GTX 1080, then ports to a
simulated Turing RTX 8000 three ways:

- zero-shot (keep Pascal's cluster labels),
- budgeted (benchmark 1 and 2 matrices per cluster on Turing),
- and compares with a Random Forest trained purely on Pascal labels.

Run:  python examples/transfer_across_gpus.py
"""

import numpy as np

from repro.core.labeling import build_labeled_dataset, common_subset
from repro.core.semisupervised import ClusterFormatSelector
from repro.core.supervised import SupervisedFormatSelector
from repro.datasets import build_collection
from repro.features import extract_features_collection
from repro.gpu import GPUSimulator, PASCAL, TURING
from repro.ml.metrics import accuracy_score, matthews_corrcoef
from repro.ml.model_selection import train_test_split


def main() -> None:
    print("building collection and benchmarking on Pascal + Turing ...")
    collection = build_collection(seed=2, size=250)
    features = extract_features_collection(collection.records)
    datasets = {}
    for arch in (PASCAL, TURING):
        sim = GPUSimulator(arch, trials=50)
        results = sim.benchmark_collection(collection.records)
        datasets[arch.name] = build_labeled_dataset(
            arch.name, features, results
        )
    aligned = common_subset(datasets)
    pascal, turing = aligned["pascal"], aligned["turing"]
    agreement = np.mean(pascal.labels == turing.labels)
    print(f"  common subset: {len(pascal)} matrices, "
          f"cross-arch label agreement {agreement:.1%}")

    train, test = train_test_split(
        len(pascal), 0.3, y=pascal.labels, seed=0
    )

    # Architecture-invariant clusters from the training features.
    selector = ClusterFormatSelector("kmeans", "vote", 40, seed=0)
    selector.fit_clusters(pascal.X[train])

    def score(pred, name):
        acc = accuracy_score(turing.labels[test], pred)
        mcc = matthews_corrcoef(turing.labels[test], pred)
        print(f"  {name:42s} ACC={acc:.3f}  MCC={mcc:.3f}")

    print("\nevaluating on the Turing test split:")

    # (a) Zero-shot: Pascal labels only.
    selector.label_clusters(pascal.labels[train])
    score(selector.predict(turing.X[test]), "zero-shot (Pascal labels)")

    # (b) Budgeted porting: benchmark k matrices per cluster on Turing.
    for budget in (1, 2):
        sample = selector.sample_for_benchmarking(budget, seed=1)
        print(f"  -- re-benchmarking {len(sample)} matrices on Turing "
              f"({budget}/cluster) --")
        selector.label_clusters(
            turing.labels[train],
            benchmarked=sample,
            source_y=pascal.labels[train],
        )
        score(
            selector.predict(turing.X[test]),
            f"ported with {budget} benchmark(s) per cluster",
        )

    # (c) Supervised baseline transferred without retraining.
    rf = SupervisedFormatSelector("RF", seed=0)
    rf.fit(pascal.X[train], pascal.labels[train])
    score(rf.predict(turing.X[test]), "Random Forest, 0% retraining")

    # (d) The full-information ceiling: selector labeled with all Turing
    #     training labels.
    selector.label_clusters(turing.labels[train])
    score(selector.predict(turing.X[test]), "ceiling (all Turing labels)")


if __name__ == "__main__":
    main()
