"""Online format selection: the paper's §7 future-work scenario.

*"an online learning scenario where new matrices are added, and new
clusters are formed continuously."*  A long-running service receives
matrices one at a time; after each SpMV campaign it learns which format
was actually fastest and feeds that label back.  Cluster count, splits,
and rolling prediction accuracy are reported as the stream progresses.

Run:  python examples/online_selection.py
"""

import numpy as np

from repro.core.online import OnlineFormatSelector
from repro.core.pipeline import FeaturePipeline
from repro.datasets import build_collection
from repro.features import extract_features_collection
from repro.gpu import GPUSimulator, TURING


def main() -> None:
    # Warm-up batch to fit the (stable) preprocessing pipeline.
    warmup = build_collection(seed=11, size=60)
    warmup_features = extract_features_collection(warmup.records)
    pipeline = FeaturePipeline().fit(warmup_features.values)

    # The stream: a different, larger collection arriving one by one.
    stream = build_collection(seed=12, size=300)
    stream_features = extract_features_collection(stream.records)
    sim = GPUSimulator(TURING, trials=20)

    online = OnlineFormatSelector(
        pipeline, radius=0.18, min_purity=0.75, min_split_size=8
    )

    window_hits: list[bool] = []
    print("streaming 300 matrices (labels learned from observed SpMV runs)")
    print(f"{'seen':>5} {'clusters':>9} {'splits':>7} {'rolling ACC':>12}")
    for i, record in enumerate(stream.records):
        result = sim.benchmark(record.name, record.matrix)
        if not result.runnable:
            continue
        x = stream_features.row(record.name)
        prediction = online.observe(x, result.best_format)
        window_hits.append(prediction == result.best_format)
        if len(window_hits) % 50 == 0:
            rolling = np.mean(window_hits[-50:])
            print(
                f"{len(window_hits):>5} {online.n_clusters:>9} "
                f"{online.n_splits:>7} {rolling:>12.2f}"
            )

    early = np.mean(window_hits[:50])
    late = np.mean(window_hits[-50:])
    print(f"\naccuracy first 50: {early:.2f}  ->  last 50: {late:.2f}")
    print(f"final clusters: {online.n_clusters} "
          f"(labels: {dict(online.label_distribution())})")


if __name__ == "__main__":
    main()
