"""Serving + batch-inference latency benchmark → ``BENCH_obs.json``.

The perf-regression tracker: each run measures request latency through
the full serving stack (gateway → admission → breaker → predict) and
sharded batch inference over a *seeded* workload, then writes
``BENCH_obs.json`` with p50/p95/p99 latency, RPS, per-stage span costs,
and the full metrics snapshot.  CI's ``obs-smoke`` job runs this on a
tiny workload, uploads the JSON as an artifact, and gates it with
``repro obs report`` against ``benchmarks/slo_permissive.json``.

Knobs (environment):

- ``REPRO_BENCH_REQUESTS`` — serve-path request count (default 200)
- ``REPRO_BENCH_ITEMS``    — batch-path items per repeat (default 256)
- ``REPRO_BENCH_JOBS``     — worker processes for the batch path
  (default 4)
- ``REPRO_BENCH_OUT``      — output path (default ``BENCH_obs.json``
  next to this file's repo root)

Run directly (``python benchmarks/bench_serving_latency.py``), via
``pytest benchmarks/bench_serving_latency.py -s``, or through the CLI
(``repro obs bench``) — all three share :mod:`repro.obs.bench`.
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.obs.bench import run_bench, write_bench
from repro.serving.drill import synthetic_frozen_selector

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_obs.json"
)


def run_serving_bench(out_path: str | None = None) -> dict:
    """Run the benchmark on the env-configured workload; write the JSON."""
    n_requests = int(os.environ.get("REPRO_BENCH_REQUESTS", "200"))
    n_items = int(os.environ.get("REPRO_BENCH_ITEMS", "256"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
    out = out_path or os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=0).save(model_path)
        result = run_bench(
            model_path,
            n_requests=n_requests,
            n_items=n_items,
            jobs=jobs,
            seed=0,
        )
    write_bench(result, out)
    return result


def print_report(result: dict) -> None:
    serve = result["serve"]
    batch = result["batch"]
    print()
    print(
        f"serve : {serve['n_requests']} requests  "
        f"p50 {serve['p50_ms']:.3f} ms  p95 {serve['p95_ms']:.3f} ms  "
        f"p99 {serve['p99_ms']:.3f} ms  {serve['rps']:.0f} req/s"
    )
    print(
        f"batch : {batch['repeats']}x{batch['n_items']} items "
        f"(jobs={batch['jobs']})  p50 {batch['p50_ms']:.3f} ms  "
        f"p99 {batch['p99_ms']:.3f} ms  "
        f"{batch['items_per_second']:.0f} items/s"
    )
    hot = sorted(
        result["stages"].items(), key=lambda kv: kv[1]["self_s"],
        reverse=True,
    )
    print("stages (self-time descending):")
    for name, row in hot[:8]:
        print(
            f"  {name:<28} calls={row['calls']:<6} "
            f"cum={row['cum_s']:.4f}s self={row['self_s']:.4f}s"
        )


def test_serving_latency_bench(tmp_path):
    out = str(tmp_path / "BENCH_obs.json")
    result = run_serving_bench(out_path=out)
    print_report(result)
    assert os.path.exists(out)
    serve = result["serve"]
    # Quantiles must be ordered and every request answered.
    assert serve["p50_ms"] <= serve["p95_ms"] <= serve["p99_ms"]
    assert sum(serve["statuses"].values()) == serve["n_requests"]
    # The stitched trace must attribute cost to serving stages.
    assert "serving.request" in result["stages"]
    assert "serving.predict" in result["stages"]


if __name__ == "__main__":
    print_report(run_serving_bench())
    sys.exit(0)
