"""Table 2: architecture parameter sets (static render)."""

from conftest import print_table

from repro.experiments import table2


def test_table2_architectures(benchmark, bench_data):
    result = benchmark.pedantic(
        table2.generate, args=(bench_data,), rounds=3, iterations=1
    )
    assert len(result.rows) == 3
    print_table(result)
