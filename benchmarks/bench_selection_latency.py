"""Tiered selection latency benchmark → ``BENCH_select.json``.

The low-latency-selection perf tracker: each run times three selection
paths over the same seeded matrix workload —

- **tier1** — cheap row-length features plus the stage-1 margin test,
- **full** — the complete 21-feature pipeline plus a frozen-model
  assignment (what every non-tiered prediction pays),
- **tiered** — :class:`repro.core.tiered.TieredSelector` end to end
  with its calibrated margin, mixing tier-1 answers and escalations —

then writes ``BENCH_select.json`` with per-tier p50/p95/p99, the
escalation rate, matrices/sec, per-stage span costs, and the metrics
snapshot.  CI's ``select-smoke`` job runs this on a tiny workload,
uploads the JSON, and gates it with ``repro obs report`` against
``benchmarks/slo_select_permissive.json`` — whose load-bearing rule is
that tier-1 median latency stays under half the full-pipeline median.

Knobs (environment):

- ``REPRO_BENCH_MATRICES`` — seeded matrices per repeat (default 64)
- ``REPRO_BENCH_REPEATS``  — timed repeats over the workload (default 3)
- ``REPRO_BENCH_OUT``      — output path (default ``BENCH_select.json``
  next to this file's repo root)

Run directly (``python benchmarks/bench_selection_latency.py``), via
``pytest benchmarks/bench_selection_latency.py -s``, or through the CLI
(``repro obs bench --select``) — all three share
:func:`repro.obs.bench.run_select_bench`.
"""

from __future__ import annotations

import os
import sys

from repro.obs.bench import run_select_bench, write_bench

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_select.json"
)


def run_selection_bench(out_path: str | None = None) -> dict:
    """Run the benchmark on the env-configured workload; write the JSON."""
    n_matrices = int(os.environ.get("REPRO_BENCH_MATRICES", "64"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    out = out_path or os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    result = run_select_bench(
        None, n_matrices=n_matrices, seed=0, repeats=repeats
    )
    write_bench(result, out)
    return result


def print_report(result: dict) -> None:
    tier1 = result["tier1"]
    full = result["full"]
    tiered = result["tiered"]
    print()
    print(
        f"tier1 : p50 {tier1['p50_ms']:.3f} ms  "
        f"p95 {tier1['p95_ms']:.3f} ms  p99 {tier1['p99_ms']:.3f} ms"
    )
    print(
        f"full  : p50 {full['p50_ms']:.3f} ms  "
        f"p95 {full['p95_ms']:.3f} ms  p99 {full['p99_ms']:.3f} ms"
    )
    print(
        f"tiered: p50 {tiered['p50_ms']:.3f} ms  "
        f"p99 {tiered['p99_ms']:.3f} ms  "
        f"{tiered['matrices_per_second']:.0f} matrices/s  "
        f"escalation rate {tiered['escalation_rate']:.3f} "
        f"({tiered['n_tier1']} tier-1 / {tiered['n_escalated']} escalated)"
    )
    if full["p50_ms"]:
        print(
            f"speedup: tier-1 p50 is "
            f"{tier1['p50_ms'] / full['p50_ms']:.3f}x the full-pipeline p50"
        )


def test_selection_latency_bench(tmp_path):
    out = str(tmp_path / "BENCH_select.json")
    result = run_selection_bench(out_path=out)
    print_report(result)
    assert os.path.exists(out)
    for row in (result["tier1"], result["full"], result["tiered"]):
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
    tiered = result["tiered"]
    assert tiered["n_tier1"] + tiered["n_escalated"] == (
        result["n_matrices"] * result["repeats"]
    )
    assert 0.0 <= tiered["escalation_rate"] <= 1.0
    # The load-bearing perf claim, same bound the CI SLO file gates on.
    assert result["tier1"]["p50_ms"] < 0.5 * result["full"]["p50_ms"]
    # Escalations must have run the real pipeline under its span.
    assert "select.tier1" in result["stages"]
    assert "select.escalate" in result["stages"]
    metrics = result["metrics"]
    assert "select.bench.tier1_p50_ms" in metrics
    assert "select.bench.full_p50_ms" in metrics


if __name__ == "__main__":
    print_report(run_selection_bench())
    sys.exit(0)
