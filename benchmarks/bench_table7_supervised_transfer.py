"""Table 7: supervised transfer (5 scenarios × 5 models × 3 fractions).

Shape assertions mirror §5.3: retraining with target data improves the
supervised models (more than it improves the semi-supervised selector),
and 0%-transfer MCC sits clearly below the local MCC of Table 6.
"""

import numpy as np
from conftest import print_table

from repro.experiments import table7


def test_table7_supervised_transfer(benchmark, bench_data):
    result = benchmark.pedantic(
        table7.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    assert len(result.rows) == 25
    i0 = result.headers.index("MCC@0%")
    i50 = result.headers.index("MCC@50%")
    gain = np.mean([row[i50] - row[i0] for row in result.rows])
    assert gain > -0.02  # retraining helps on average
    for row in result.rows:
        for frac in ("0%", "25%", "50%"):
            assert row[result.headers.index(f"GT@{frac}")] <= 1.0 + 1e-9
