"""Table 5: semi-supervised transfer (6 pairs × 9 combos × 3 fractions).

Shape assertions mirror §5.2: K-Means variants dominate Mean-Shift in the
transfer setting, and retraining provides only a moderate improvement.
"""

import numpy as np
from conftest import print_table

from repro.experiments import table5


def test_table5_semisupervised_transfer(benchmark, bench_data):
    result = benchmark.pedantic(
        table5.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    assert len(result.rows) == 54
    mcc0 = {}
    mcc50 = {}
    for row in result.rows:
        mcc0.setdefault(row[1], []).append(row[result.headers.index("MCC@0%")])
        mcc50.setdefault(row[1], []).append(row[result.headers.index("MCC@50%")])
    km = np.mean(mcc0["K-Means-VOTE"])
    ms = np.mean(mcc0["Mean-Shift-VOTE"])
    assert km > ms
    # Moderate retraining effect: 50% retraining shifts K-Means-VOTE MCC by
    # less than 0.25 absolute on average.
    assert abs(np.mean(mcc50["K-Means-VOTE"]) - km) < 0.25
