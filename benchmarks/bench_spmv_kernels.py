"""Micro-benchmarks: the NumPy SpMV kernels of each storage format.

Not a paper table, but the substrate the whole study rests on — these
timings make regressions in the vectorised kernels visible.
"""

import numpy as np
import pytest

from repro.datasets.generators import banded, power_law_rows, random_uniform
from repro.formats import convert


def _fixture_matrix(kind: str):
    rng = np.random.default_rng(11)
    if kind == "banded":
        return banded(rng, n=4000, bandwidth=8)
    if kind == "scattered":
        return random_uniform(rng, nrows=4000, density=0.004)
    return power_law_rows(
        rng, nrows=4000, avg_nnz_per_row=12, alpha=1.8, max_over_mean=2.8
    )


@pytest.mark.parametrize("structure", ["banded", "scattered", "powerlaw"])
@pytest.mark.parametrize("fmt", ["coo", "csr", "ell", "hyb", "csc"])
def test_spmv_kernel(benchmark, structure, fmt):
    coo = _fixture_matrix(structure)
    matrix = convert(coo, fmt, **({"max_fill": None} if fmt == "ell" else {}))
    x = np.random.default_rng(0).standard_normal(matrix.ncols)
    y = benchmark(matrix.spmv, x)
    np.testing.assert_allclose(y, coo.spmv(x), rtol=1e-9, atol=1e-9)


def test_format_conversion_throughput(benchmark):
    coo = _fixture_matrix("scattered")
    result = benchmark(convert, coo, "hyb")
    assert result.nnz == coo.nnz
