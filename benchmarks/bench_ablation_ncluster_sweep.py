"""Ablation: the cluster-count tradeoff (§4).

*"Having more small clusters will increase accuracy, while having fewer
large clusters reduces training time and limits the risk of overfitting."*
Sweeps K for K-Means-VOTE and reports training-set purity (monotone-ish in
K) against held-out MCC (saturating).
"""

import numpy as np
from conftest import print_table

from repro.core.purity import cluster_purity
from repro.core.semisupervised import ClusterFormatSelector
from repro.experiments.common import TableResult
from repro.ml.metrics import matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold


def _generate(bench_data):
    table = TableResult(
        table_id="Ablation A3",
        title="Number-of-clusters sweep (K-Means-VOTE, per-arch)",
        headers=["Arch", "NC", "purity", "MCC"],
    )
    for arch in bench_data.arch_names:
        ds = bench_data.datasets[arch]
        for nc in (5, 10, 25, 50, 100):
            if nc >= len(ds) // 2:
                continue
            mccs, purities = [], []
            for train, test in StratifiedKFold(
                bench_data.config.n_folds, seed=0
            ).split(ds.labels):
                sel = ClusterFormatSelector("kmeans", "vote", nc, seed=0)
                sel.fit(ds.X[train], ds.labels[train])
                pred = sel.predict(ds.X[test])
                mccs.append(matthews_corrcoef(ds.labels[test], pred))
                purities.append(
                    cluster_purity(ds.labels[train], sel.train_assignments_)
                )
            table.add_row(
                arch, nc, float(np.mean(purities)), float(np.mean(mccs))
            )
    return table


def test_ablation_ncluster_sweep(benchmark, bench_data):
    result = benchmark.pedantic(
        _generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    for arch in bench_data.arch_names:
        rows = [r for r in result.rows if r[0] == arch]
        purities = [r[2] for r in rows]
        mccs = [r[3] for r in rows]
        # Training purity grows with NC (the §4 tradeoff's first half).
        assert purities[-1] >= purities[0]
        # Held-out MCC peaks above the degenerate NC=5 case at some
        # intermediate NC; at the largest NC it may decline again (the
        # overfitting half of the §4 tradeoff), so compare the peak.
        assert max(mccs) >= mccs[0] - 0.02
        assert int(np.argmax(mccs)) > 0 or mccs[0] == max(mccs)
