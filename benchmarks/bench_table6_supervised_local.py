"""Table 6: supervised local evaluation (6 models × 3 GPUs).

Shape assertions mirror §5.3: tree ensembles (RF/XGBoost) are at the top
on MCC, the CNN trails them, GT speedups stay <= 1, and good models beat
the always-CSR baseline.
"""

import numpy as np
from conftest import print_table

from repro.experiments import table6


def test_table6_supervised_local(benchmark, bench_data):
    result = benchmark.pedantic(
        table6.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    assert len(result.rows) == 18
    mcc = {}
    for row in result.rows:
        mcc.setdefault(row[1], []).append(row[4])
    ensembles = max(np.mean(mcc["RF"]), np.mean(mcc["XGBoost"]))
    assert ensembles > np.mean(mcc["CNN"])
    for row in result.rows:
        gt = row[result.headers.index("GT")]
        assert gt <= 1.0 + 1e-9
    # The better half of the models profit over always-CSR.
    csr_col = result.headers.index("CSR")
    assert np.median([row[csr_col] for row in result.rows]) >= 1.0
