"""Horizontal-scaling benchmark for the serving tier → ``BENCH_serving_scale.json``.

Boots the multi-worker tier (asyncio front-end + N ``repro serve``
worker subprocesses attached to the shared mmap model store) at each
worker count in ``REPRO_BENCH_SCALE_WORKERS``, drives the same seeded
predict workload over concurrent JSONL connections, and records
throughput and client-observed latency per worker count.

The output JSON carries a ``metrics`` snapshot with
``serving.scale.rps_<N>`` / ``serving.scale.p99_ms_<N>`` gauges, so CI's
``serve-scale-smoke`` job gates it with ``repro obs report`` against
``benchmarks/slo_serving_scale_permissive.json`` — the near-linear
scaling contract (4-worker RPS >= 2.5x 1-worker on the 4-vCPU runners)
plus a permissive p99 bound.

Knobs (environment):

- ``REPRO_BENCH_SCALE_REQUESTS`` — timed requests per worker count
  (default 300)
- ``REPRO_BENCH_SCALE_CONNS``    — concurrent client connections
  (default 16)
- ``REPRO_BENCH_SCALE_WORKERS``  — comma-separated worker counts
  (default ``1,4``)
- ``REPRO_BENCH_SCALE_NNZ``      — nonzeros per benchmark matrix
  (default 4000; larger = more worker-side compute per request)
- ``REPRO_BENCH_OUT``            — output path (default
  ``BENCH_serving_scale.json`` at the repo root)

Run directly (``python benchmarks/bench_serving_scale.py``) or via
pytest (``pytest benchmarks/bench_serving_scale.py -s``, functional
assertions only — scaling ratios are asserted by the CI SLO gate, not
locally, because local core counts vary).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.io import matrix_market_string
from repro.serving.drill import synthetic_frozen_selector
from repro.serving.frontend import ServingTier, TierConfig

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_serving_scale.json"
)


def _bench_matrix_text(index: int, seed: int, nnz: int) -> str:
    """A benchmark matrix heavy enough that extraction dominates routing."""
    rng = np.random.default_rng(seed * 7_654_321 + index)
    n = max(64, int(np.sqrt(nnz * 4)))
    flat = rng.choice(n * n, size=min(nnz, n * n), replace=False)
    rows, cols = np.divmod(flat, n)
    vals = rng.uniform(0.5, 2.0, size=len(flat))
    return matrix_market_string(COOMatrix((n, n), rows, cols, vals))


def build_workload(
    n_requests: int, seed: int = 0, nnz: int = 4000, n_unique: int = 32
) -> list[str]:
    """Seeded predict lines cycling over a pool of distinct matrices.

    Distinct ``client`` ids spread the keys across the ring the same way
    a real multi-tenant workload would.
    """
    pool = [_bench_matrix_text(i, seed, nnz) for i in range(n_unique)]
    return [
        json.dumps(
            {
                "id": f"b{i}",
                "op": "predict",
                "client": f"tenant-{i % (n_unique * 2)}",
                "mtx": pool[i % len(pool)],
            }
        )
        for i in range(n_requests)
    ]


async def _drive_timed(
    socket_path: str, lines: list[str], connections: int
) -> dict:
    """Fan ``lines`` over connections; measure RPS + per-request latency."""
    shares: list[list[str]] = [[] for _ in range(max(1, connections))]
    for i, line in enumerate(lines):
        shares[i % len(shares)].append(line)
    latencies: list[float] = []
    statuses: dict[str, int] = {}

    async def client(share: list[str]) -> None:
        if not share:
            return
        reader, writer = await asyncio.open_unix_connection(socket_path)
        try:
            for line in share:
                t0 = time.perf_counter()
                writer.write((line + "\n").encode())
                await writer.drain()
                raw = await reader.readline()
                latencies.append(time.perf_counter() - t0)
                status = json.loads(raw).get("status")
                statuses[status] = statuses.get(status, 0) + 1
        finally:
            writer.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(client(share) for share in shares))
    elapsed = time.perf_counter() - t0
    lat = np.sort(np.array(latencies)) * 1e3
    return {
        "n_requests": len(lines),
        "connections": connections,
        "elapsed_s": round(elapsed, 6),
        "rps": round(len(lines) / elapsed, 3),
        "p50_ms": round(float(np.percentile(lat, 50)), 6),
        "p95_ms": round(float(np.percentile(lat, 95)), 6),
        "p99_ms": round(float(np.percentile(lat, 99)), 6),
        "statuses": statuses,
    }


async def _bench_one(
    model_path: str, workers: int, lines: list[str], connections: int
) -> dict:
    """Boot a tier at ``workers`` workers, warm it, run the timed burst."""
    with tempfile.TemporaryDirectory(prefix="repro-scale-bench-") as run_dir:
        tier = ServingTier(
            TierConfig(
                model_path=model_path,
                run_dir=run_dir,
                workers=workers,
                # Generous queue so the bench measures compute scaling,
                # not admission shedding.
                worker_args=("--queue-size", "256", "--deadline", "0"),
            )
        )
        front = os.path.join(run_dir, "front.sock")
        server_task = asyncio.ensure_future(tier.run_socket(front))
        for _ in range(1200):
            if os.path.exists(front):
                break
            if server_task.done():
                server_task.result()
            await asyncio.sleep(0.05)
        # Warm every worker's feature/model path before timing.
        warm = lines[: max(connections, 2 * workers)]
        await _drive_timed(front, warm, connections)
        result = await _drive_timed(front, lines, connections)
        reader, writer = await asyncio.open_unix_connection(front)
        writer.write(b'{"id":"__m","op":"metrics"}\n')
        writer.write(b'{"id":"__s","op":"shutdown"}\n')
        await writer.drain()
        metrics = json.loads(await reader.readline())
        await reader.readline()
        writer.close()
        await asyncio.wait_for(server_task, timeout=30.0)
        result["workers"] = workers
        result["tier_quantiles_ms"] = metrics.get("quantiles_ms")
        result["routed"] = tier.n_routed
        result["worker_lost"] = tier.n_worker_lost
        return result


def run_scaling_bench(out_path: str | None = None) -> dict:
    """Run the env-configured scaling sweep; write the JSON artifact."""
    n_requests = int(os.environ.get("REPRO_BENCH_SCALE_REQUESTS", "300"))
    connections = int(os.environ.get("REPRO_BENCH_SCALE_CONNS", "16"))
    worker_counts = [
        int(w)
        for w in os.environ.get("REPRO_BENCH_SCALE_WORKERS", "1,4").split(",")
        if w.strip()
    ]
    nnz = int(os.environ.get("REPRO_BENCH_SCALE_NNZ", "4000"))
    out = out_path or os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)

    lines = build_workload(n_requests, seed=0, nnz=nnz)
    runs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-scale-model-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=0).save(model_path)
        for workers in worker_counts:
            runs[str(workers)] = asyncio.run(
                _bench_one(model_path, workers, lines, connections)
            )

    metrics: dict[str, dict] = {}
    for workers, run in runs.items():
        metrics[f"serving.scale.rps_{workers}"] = {
            "type": "gauge", "value": run["rps"],
        }
        metrics[f"serving.scale.p99_ms_{workers}"] = {
            "type": "gauge", "value": run["p99_ms"],
        }
        metrics[f"serving.scale.lost_{workers}"] = {
            "type": "gauge", "value": float(run["worker_lost"]),
        }
    result = {
        "bench": "serving_scale",
        "n_requests": n_requests,
        "connections": connections,
        "nnz": nnz,
        "worker_counts": worker_counts,
        "runs": runs,
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def print_report(result: dict) -> None:
    print()
    base = None
    for workers in result["worker_counts"]:
        run = result["runs"][str(workers)]
        if base is None:
            base = run["rps"]
        print(
            f"workers={workers:<2} {run['rps']:>8.1f} req/s  "
            f"p50 {run['p50_ms']:.2f} ms  p99 {run['p99_ms']:.2f} ms  "
            f"speedup {run['rps'] / base:.2f}x"
        )


def test_serving_scale_bench(tmp_path):
    """Functional checks only — scaling ratios are CI's SLO gate."""
    os.environ.setdefault("REPRO_BENCH_SCALE_REQUESTS", "48")
    os.environ.setdefault("REPRO_BENCH_SCALE_CONNS", "6")
    os.environ.setdefault("REPRO_BENCH_SCALE_WORKERS", "1,2")
    os.environ.setdefault("REPRO_BENCH_SCALE_NNZ", "600")
    out = str(tmp_path / "BENCH_serving_scale.json")
    result = run_scaling_bench(out_path=out)
    print_report(result)
    assert os.path.exists(out)
    for workers in result["worker_counts"]:
        run = result["runs"][str(workers)]
        assert sum(run["statuses"].values()) == run["n_requests"]
        assert run["statuses"].get("ok", 0) == run["n_requests"]
        assert run["p50_ms"] <= run["p99_ms"]
        assert f"serving.scale.rps_{workers}" in result["metrics"]


if __name__ == "__main__":
    print_report(run_scaling_bench())
    sys.exit(0)
