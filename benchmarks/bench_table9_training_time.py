"""Table 9: training times per model and retraining fraction.

Shape assertions mirror §5.4: the K-Means-VOTE pipeline trains orders of
magnitude faster than the CNN, and cheaper than the ensemble models.
"""

from conftest import print_table

from repro.experiments import table9


def test_table9_training_time(benchmark, bench_data):
    result = benchmark.pedantic(
        table9.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    t0 = {row[0]: row[1] for row in result.rows}
    assert t0["K-Means-VOTE"] < t0["CNN"]
    assert t0["K-Means-VOTE"] < t0["RF"]
    assert t0["K-Means-VOTE"] < t0["XGBoost"]
