"""Ablation: the paper's log-transform fix for naive clustering.

§4: *"a naive application of a clustering algorithm with the features
shown in Table 1 does not work well ... Applying the log transformation to
these features before clustering gave clusters with fairly uniform sizes
and high purity."*  This bench quantifies exactly that claim: purity and
MCC of K-Means-VOTE with raw vs log- vs sqrt-transformed features.
"""

import numpy as np
from conftest import print_table

from repro.core.pipeline import FeaturePipeline
from repro.core.purity import cluster_purity
from repro.core.semisupervised import ClusterFormatSelector
from repro.experiments.common import TableResult
from repro.ml.metrics import matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold


def _evaluate(ds, transform, n_folds, nc):
    mccs, purities, largest = [], [], []
    for train, test in StratifiedKFold(n_folds, seed=0).split(ds.labels):
        pipe = FeaturePipeline(transform=transform, n_components=8)
        sel = ClusterFormatSelector("kmeans", "vote", nc, pipeline=pipe, seed=0)
        sel.fit(ds.X[train], ds.labels[train])
        pred = sel.predict(ds.X[test])
        mccs.append(matthews_corrcoef(ds.labels[test], pred))
        purities.append(cluster_purity(ds.labels[train], sel.train_assignments_))
        sizes = np.bincount(sel.train_assignments_, minlength=sel.n_clusters_)
        largest.append(sizes.max() / sizes.sum())
    return {
        "MCC": float(np.mean(mccs)),
        "purity": float(np.mean(purities)),
        "largest cluster": float(np.mean(largest)),
    }


def _generate(bench_data):
    table = TableResult(
        table_id="Ablation A1",
        title="Feature transform ablation (K-Means-VOTE)",
        headers=["Arch", "Transform", "MCC", "purity", "largest cluster"],
    )
    nc = bench_data.config.nc_grid[0]
    for arch in bench_data.arch_names:
        ds = bench_data.datasets[arch]
        for transform in (None, "log", "sqrt"):
            scores = _evaluate(
                ds, transform, bench_data.config.n_folds, nc
            )
            table.add_row(
                arch,
                transform or "raw",
                scores["MCC"],
                scores["purity"],
                scores["largest cluster"],
            )
    return table


def test_ablation_transforms(benchmark, bench_data):
    result = benchmark.pedantic(
        _generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    # The paper's claim, averaged over architectures: the log transform
    # beats raw features on both purity-driven MCC and cluster balance.
    by = {}
    for row in result.rows:
        by.setdefault(row[1], []).append((row[2], row[4]))
    raw_mcc = np.mean([m for m, _ in by["raw"]])
    log_mcc = np.mean([m for m, _ in by["log"]])
    assert log_mcc > raw_mcc
    raw_blob = np.mean([b for _, b in by["raw"]])
    log_blob = np.mean([b for _, b in by["log"]])
    assert log_blob <= raw_blob  # log declumps the giant cluster
