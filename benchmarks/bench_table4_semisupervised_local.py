"""Table 4: semi-supervised local evaluation (9 combos × 3 GPUs).

Shape assertions mirror §5.2: the K-Means and Birch families clearly beat
every Mean-Shift variant, which finds too few clusters.
"""

import numpy as np
from conftest import print_table

from repro.experiments import table4


def test_table4_semisupervised_local(benchmark, bench_data):
    result = benchmark.pedantic(
        table4.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    assert len(result.rows) == 27
    by_algo = {}
    for row in result.rows:
        by_algo.setdefault(row[1], []).append(row[3])  # MCC column
    kmeans_vote = np.mean(by_algo["K-Means-VOTE"])
    meanshift_best = max(
        np.mean(by_algo[a]) for a in by_algo if a.startswith("Mean-Shift")
    )
    assert kmeans_vote > meanshift_best
    # Mean-Shift finds far fewer clusters than the tuned K-Means NC.
    nc = {row[1]: row[2] for row in result.rows}
    assert nc["Mean-Shift-VOTE"] < nc["K-Means-VOTE"]
