"""Campaign engine benchmark: cold/warm cache and 1-vs-N-job timings.

The paper's §5.4 point is that the benchmarking campaign dominates
everything (two days of GPU time); this harness records what the runtime
subsystem buys back:

- ``cold@jobs=1``   — the serial baseline campaign
- ``cold@jobs=N``   — the process-pool campaign (``REPRO_BENCH_JOBS``,
  default 4; speedup is bounded by the machine's core count)
- ``store``         — cold campaign that also persists artifacts
- ``warm``          — a run served entirely from the artifact cache

Artifacts are asserted byte-identical across every variant — the
determinism contract is part of what is being benchmarked.

Run directly (``python benchmarks/bench_campaign_parallel.py``) or via
``pytest benchmarks/bench_campaign_parallel.py -s``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_experiment_data


def _jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _config() -> ExperimentConfig:
    size = os.environ.get("REPRO_BENCH_SIZE")
    if size is None:
        return ExperimentConfig.paper()
    return ExperimentConfig.paper(collection_size=int(size))


def run_campaign_bench(config: ExperimentConfig | None = None) -> dict[str, float]:
    """Time the campaign variants; returns {variant: seconds}."""
    config = config or _config()
    jobs = _jobs()
    timings: dict[str, float] = {}

    def timed(variant: str, **kwargs):
        start = time.perf_counter()
        data = build_experiment_data(config, use_cache=False, **kwargs)
        timings[variant] = time.perf_counter() - start
        return data

    serial = timed("cold@jobs=1", jobs=1)
    parallel = timed(f"cold@jobs={jobs}", jobs=jobs)
    assert serial.features.values.tobytes() == parallel.features.values.tobytes()
    for arch in serial.arch_names:
        np.testing.assert_array_equal(
            serial.datasets[arch].labels, parallel.datasets[arch].labels
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        stored = timed("cold+store", jobs=jobs, cache_dir=tmp)
        warm = timed("warm", jobs=jobs, cache_dir=tmp)
        assert warm.features.values.tobytes() == stored.features.values.tobytes()
        for arch in stored.arch_names:
            np.testing.assert_array_equal(
                stored.datasets[arch].labels, warm.datasets[arch].labels
            )

    return timings


def print_report(timings: dict[str, float]) -> None:
    cold = timings["cold@jobs=1"]
    print()
    print(f"{'variant':<14} {'seconds':>9} {'vs cold@jobs=1':>15}")
    for variant, seconds in timings.items():
        rel = cold / seconds if seconds > 0 else float("inf")
        print(f"{variant:<14} {seconds:9.2f} {rel:14.2f}x")


def test_campaign_parallel_and_cache_timings():
    timings = run_campaign_bench()
    print_report(timings)
    # The warm run replays pickled artifacts; anything close to campaign
    # cost means the cache is broken.  (The parallel-speedup numbers are
    # reported, not asserted: they depend on the machine's core count.)
    assert timings["warm"] < 0.5 * timings["cold@jobs=1"]


if __name__ == "__main__":
    print_report(run_campaign_bench())
    sys.exit(0)
