"""Table 8: conversion-cost model and benchmarking-campaign time."""

from conftest import print_table

from repro.experiments import table8


def test_table8_benchmark_cost(benchmark, bench_data):
    result = benchmark.pedantic(
        table8.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    values = dict(zip(result.column("Row"), result.column("Value")))
    # The paper's conversion-cost ordering: HYB > ELL >> COO.
    assert (
        values["conversion cost HYB (x CSR SpMV)"]
        > values["conversion cost ELL (x CSR SpMV)"]
        > values["conversion cost COO (x CSR SpMV)"]
    )
    hours = {
        k: v for k, v in values.items() if k.startswith("benchmarking time")
    }
    assert all(v > 0 for v in hours.values())
