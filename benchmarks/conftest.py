"""Benchmark-suite fixtures.

``pytest benchmarks/ --benchmark-only`` regenerates every table of the
paper on the benchmark-scale collection and times each generator.  Set
``REPRO_BENCH_SIZE`` to scale the collection (default 320 matrices).
Regenerated tables are printed and appended to ``bench_tables.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_experiment_data


def _bench_config() -> ExperimentConfig:
    size = int(os.environ.get("REPRO_BENCH_SIZE", "320"))
    return ExperimentConfig(
        collection_size=size,
        augment_copies=0,
        trials=20,
        n_folds=3,
        nc_grid=(25, 50, 100),
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return _bench_config()


@pytest.fixture(scope="session")
def bench_data(bench_config):
    """The simulated benchmarking campaign, shared by all benches."""
    return build_experiment_data(bench_config)


#: Regenerated tables are also appended here, because pytest captures the
#: stdout of passing tests; the file collects the full set of rows each
#: bench run reproduces.
TABLES_PATH = os.path.join(
    os.path.dirname(__file__), "..", "bench_tables.txt"
)


def print_table(result) -> None:
    """Emit the regenerated table through pytest's output and persist it."""
    text = result.format_text()
    print()
    print(text)
    with open(TABLES_PATH, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")
