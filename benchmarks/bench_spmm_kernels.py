"""Op-aware SpMM workload benchmark → ``BENCH_spmm.json``.

Runs the mixed SpMV/SpMM/SpGEMM campaign of
:mod:`repro.experiments.spmm` on an env-sized collection, then reports
the numbers the ``spmm-smoke`` CI job gates on:

- **selector_acc** — cross-validated accuracy of the op-aware
  K-Means-VOTE selector on the compound ``format@op`` labels,
- **best_static_acc** — accuracy of the best static single-format
  policy (the bar the op-aware selector must clear),
- **k1_max_reldiff** — max relative difference between SpMM at ``k=1``
  and the SpMV model over the campaign (the degeneration invariant;
  exactly 0 by construction),
- per-op kernel-model evaluation latency quantiles.

The payload carries the telemetry ``stages`` table and ``metrics``
snapshot, so ``repro obs report --slo benchmarks/slo_spmm_permissive.json
--metrics BENCH_spmm.json`` can gate it.

Knobs (environment):

- ``REPRO_BENCH_MATRICES`` — collection size (default 96)
- ``REPRO_BENCH_OUT``      — output path (default ``BENCH_spmm.json``
  next to the repo root)

Run directly (``python benchmarks/bench_spmm_kernels.py``) or via
``pytest benchmarks/bench_spmm_kernels.py -s``.
"""

from __future__ import annotations

import json
import os
import sys
import time

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_spmm.json"
)


def _quantiles(samples_ms: list[float]) -> dict:
    import numpy as np

    arr = np.asarray(samples_ms, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def run_spmm_bench(out_path: str | None = None) -> dict:
    """Run the mixed-op campaign benchmark; write ``BENCH_spmm.json``."""
    import numpy as np

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.spmm import (
        SPMM_OPS,
        build_spmm_campaign,
        evaluate_op_selector,
        static_format_accuracy,
    )
    from repro.gpu import ARCHITECTURES
    from repro.gpu.kernels import KernelModel, MODELED_FORMATS, OpSpec
    from repro.obs import TELEMETRY
    from repro.obs.bench import _stage_costs, write_bench

    n_matrices = int(os.environ.get("REPRO_BENCH_MATRICES", "96"))
    out = out_path or os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    config = ExperimentConfig(
        collection_size=n_matrices,
        augment_copies=0,
        trials=5,
        n_folds=3,
        nc_grid=(10, 25),
    )
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        campaign = build_spmm_campaign(config)
        scores = evaluate_op_selector(campaign.dataset, config)
        static = static_format_accuracy(campaign.dataset)
        best_static_fmt = max(static, key=static.__getitem__)

        # SpMM(k=1) ≡ SpMV degeneration invariant over the whole campaign.
        model = KernelModel(ARCHITECTURES[campaign.arch])
        k1 = OpSpec("spmm", 1)
        max_reldiff = 0.0
        for st in campaign.stats:
            for fmt in MODELED_FORMATS:
                if not model.feasible(fmt, st, k1):
                    continue
                a = model.time(fmt, st, "spmv")
                b = model.time(fmt, st, k1)
                max_reldiff = max(max_reldiff, abs(a - b) / a)

        # Kernel-model evaluation latency per op (the cost of one
        # analytical recommendation).
        latency: dict[str, dict] = {}
        for op in SPMM_OPS:
            samples = []
            for st in campaign.stats:
                t0 = time.perf_counter()
                for fmt in MODELED_FORMATS:
                    if model.feasible(fmt, st, op):
                        model.time(fmt, st, op)
                samples.append((time.perf_counter() - t0) * 1e3)
            latency[op] = _quantiles(samples)

        TELEMETRY.gauge_set("spmm.bench.selector_acc", scores["ACC"])
        TELEMETRY.gauge_set(
            "spmm.bench.best_static_acc", static[best_static_fmt]
        )
        TELEMETRY.gauge_set("spmm.bench.k1_max_reldiff", max_reldiff)
        TELEMETRY.gauge_set(
            "spmm.bench.labeled_pairs", float(len(campaign.dataset))
        )
        stages = _stage_costs()
        metrics = TELEMETRY.registry.snapshot()
    finally:
        if not was_enabled:
            TELEMETRY.disable()

    result = {
        "bench": "spmm_kernels",
        "arch": campaign.arch,
        "ops": list(SPMM_OPS),
        "n_matrices": n_matrices,
        "labeled_pairs": len(campaign.dataset),
        "selector": scores,
        "static_acc": static,
        "best_static_format": best_static_fmt,
        "k1_max_reldiff": max_reldiff,
        "kernel_latency": latency,
        "stages": stages,
        "metrics": metrics,
    }
    write_bench(result, out)
    return result


def print_report(result: dict) -> None:
    print()
    print(
        f"op-aware selector: ACC {result['selector']['ACC']:.3f} "
        f"(NC {int(result['selector']['NC'])}) over "
        f"{result['labeled_pairs']} (matrix, op) pairs"
    )
    print(
        f"best static format {result['best_static_format'].upper()}: "
        f"ACC {result['static_acc'][result['best_static_format']]:.3f}"
    )
    print(f"SpMM(k=1) vs SpMV max rel diff: {result['k1_max_reldiff']:.2e}")
    for op, row in result["kernel_latency"].items():
        print(
            f"kernel model {op:8s}: p50 {row['p50_ms']:.3f} ms  "
            f"p99 {row['p99_ms']:.3f} ms per matrix"
        )


def test_spmm_kernel_bench(tmp_path):
    out = str(tmp_path / "BENCH_spmm.json")
    result = run_spmm_bench(out_path=out)
    print_report(result)
    assert os.path.exists(out)
    with open(out, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "spmm_kernels"
    # The acceptance bar: the op-aware selector beats every static
    # single-format policy on the mixed campaign.
    assert (
        result["selector"]["ACC"]
        > result["static_acc"][result["best_static_format"]]
    )
    # The degeneration invariant is bit-exact, not merely close.
    assert result["k1_max_reldiff"] == 0.0
    assert "spmm.bench.selector_acc" in result["metrics"]
    assert "spmm.bench.best_static_acc" in result["metrics"]


if __name__ == "__main__":
    print_report(run_spmm_bench())
    sys.exit(0)
