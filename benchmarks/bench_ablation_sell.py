"""Ablation: sliced-ELL storage vs plain ELL (§6's related-work tradeoff).

Quantifies how much padding SELL-C and SELL-C-σ remove relative to plain
ELL across the collection — the storage side of the *"performance
tradeoff"* the paper attributes to row-reordering formats.
"""

import numpy as np
from conftest import print_table

from repro.experiments.common import TableResult
from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix


def _generate(bench_data):
    table = TableResult(
        table_id="Ablation A5",
        title="Padding of ELL vs SELL-32 vs SELL-32-256 (geomean fill ratio)",
        headers=["variant", "fill ratio", "vs ELL"],
    )
    fills = {"ell": [], "sell": [], "sell_sorted": []}
    for rec in bench_data.records:
        coo = rec.matrix
        if coo.nnz == 0:
            continue
        ell = ELLMatrix.from_coo(coo, max_fill=None)
        sell = SELLMatrix.from_coo(coo, slice_height=32, sigma=1)
        sell_sorted = SELLMatrix.from_coo(coo, slice_height=32, sigma=256)
        fills["ell"].append(ell.fill_ratio())
        fills["sell"].append(sell.fill_ratio())
        fills["sell_sorted"].append(sell_sorted.fill_ratio())
    geo = {k: float(np.exp(np.mean(np.log(v)))) for k, v in fills.items()}
    table.add_row("ELL", geo["ell"], 1.0)
    table.add_row("SELL-32", geo["sell"], geo["sell"] / geo["ell"])
    table.add_row(
        "SELL-32-256", geo["sell_sorted"], geo["sell_sorted"] / geo["ell"]
    )
    return table


def test_ablation_sell_padding(benchmark, bench_data):
    result = benchmark.pedantic(
        _generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    fill = dict(zip(result.column("variant"), result.column("fill ratio")))
    # Slicing strictly helps; sigma-sorting helps further.
    assert fill["SELL-32"] <= fill["ELL"] + 1e-9
    assert fill["SELL-32-256"] <= fill["SELL-32"] + 1e-9
    assert fill["SELL-32-256"] < 0.9 * fill["ELL"]
