"""Micro-benchmarks: clustering and selector throughput.

Table 9's headline is that the semi-supervised pipeline is cheap to
(re)train; these benches time the pieces directly.
"""

from repro.core.pipeline import FeaturePipeline
from repro.core.semisupervised import ClusterFormatSelector
from repro.ml.cluster import Birch, KMeans, MeanShift


def _features(bench_data):
    ds = bench_data.datasets["volta"]
    pipe = FeaturePipeline().fit(ds.X)
    return ds, pipe.transform_features(ds.X)


def test_kmeans_fit(benchmark, bench_data):
    _, Z = _features(bench_data)
    km = benchmark(lambda: KMeans(25, seed=0).fit(Z))
    assert km.cluster_centers_.shape[0] == 25


def test_meanshift_fit(benchmark, bench_data):
    _, Z = _features(bench_data)
    ms = benchmark(lambda: MeanShift(seed=0).fit(Z))
    assert ms.n_clusters_ >= 1


def test_birch_fit(benchmark, bench_data):
    _, Z = _features(bench_data)
    bi = benchmark(lambda: Birch(n_clusters=25, threshold=0.1).fit(Z))
    assert bi.n_clusters_ == 25


def test_selector_full_train(benchmark, bench_data):
    ds = bench_data.datasets["volta"]

    def train():
        sel = ClusterFormatSelector("kmeans", "vote", 25, seed=0)
        return sel.fit(ds.X, ds.labels)

    sel = benchmark(train)
    assert sel.n_clusters_ == 25


def test_selector_relabel_only(benchmark, bench_data):
    """The transfer path: clusters fixed, labels recomputed (§4)."""
    ds = bench_data.datasets["volta"]
    sel = ClusterFormatSelector("kmeans", "vote", 25, seed=0)
    sel.fit_clusters(ds.X)
    result = benchmark(sel.label_clusters, ds.labels)
    assert len(result.cluster_labels_) == 25


def test_selector_predict(benchmark, bench_data):
    ds = bench_data.datasets["volta"]
    sel = ClusterFormatSelector("kmeans", "vote", 25, seed=0)
    sel.fit(ds.X, ds.labels)
    pred = benchmark(sel.predict, ds.X)
    assert pred.shape == ds.labels.shape
