"""Ablation: PCA-8 projection vs the full scaled feature space (§4)."""

import numpy as np
from conftest import print_table

from repro.core.pipeline import FeaturePipeline
from repro.core.semisupervised import ClusterFormatSelector
from repro.experiments.common import TableResult
from repro.ml.metrics import accuracy_score, matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold


def _evaluate(ds, n_components, n_folds, nc):
    mccs, accs = [], []
    for train, test in StratifiedKFold(n_folds, seed=0).split(ds.labels):
        pipe = FeaturePipeline(transform="log", n_components=n_components)
        sel = ClusterFormatSelector("kmeans", "vote", nc, pipeline=pipe, seed=0)
        sel.fit(ds.X[train], ds.labels[train])
        pred = sel.predict(ds.X[test])
        mccs.append(matthews_corrcoef(ds.labels[test], pred))
        accs.append(accuracy_score(ds.labels[test], pred))
    return float(np.mean(mccs)), float(np.mean(accs))


def _generate(bench_data):
    table = TableResult(
        table_id="Ablation A2",
        title="PCA dimensionality ablation (K-Means-VOTE)",
        headers=["Arch", "components", "MCC", "ACC"],
    )
    nc = bench_data.config.nc_grid[0]
    for arch in bench_data.arch_names:
        ds = bench_data.datasets[arch]
        for k in (2, 4, 8, 12, None):
            mcc, acc = _evaluate(ds, k, bench_data.config.n_folds, nc)
            table.add_row(arch, str(k) if k else "all-21", mcc, acc)
    return table


def test_ablation_pca(benchmark, bench_data):
    result = benchmark.pedantic(
        _generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    by_k = {}
    for row in result.rows:
        by_k.setdefault(row[1], []).append(row[2])
    # The paper's PCA-8 choice must be competitive with the full space and
    # clearly better than a 2-D projection.
    assert np.mean(by_k["8"]) >= np.mean(by_k["2"]) - 0.02
    assert np.mean(by_k["8"]) >= np.mean(by_k["all-21"]) - 0.1
