"""Micro-benchmarks: O(nnz) feature extraction and the GPU cost model.

§4's efficiency claim: *"calculating these for a sparse matrix dataset is
inexpensive"* — extraction must stay linear in nnz and fast in absolute
terms relative to benchmarking.
"""

import numpy as np

from repro.datasets.generators import random_uniform
from repro.features import extract_features
from repro.features.stats import compute_stats
from repro.gpu import GPUSimulator, VOLTA
from repro.gpu.kernels import predict_times


def test_feature_extraction(benchmark):
    m = random_uniform(np.random.default_rng(3), nrows=6000, density=0.003)
    vec = benchmark(extract_features, m)
    assert vec.shape == (21,)


def test_structural_stats(benchmark):
    m = random_uniform(np.random.default_rng(3), nrows=6000, density=0.003)
    stats = benchmark(compute_stats, m)
    assert stats.nnz == m.nnz


def test_kernel_model_evaluation(benchmark):
    m = random_uniform(np.random.default_rng(3), nrows=6000, density=0.003)
    stats = compute_stats(m)
    times = benchmark(predict_times, stats, VOLTA)
    assert len(times) >= 3


def test_simulated_benchmark_single_matrix(benchmark):
    m = random_uniform(np.random.default_rng(3), nrows=6000, density=0.003)
    stats = compute_stats(m)
    sim = GPUSimulator(VOLTA, trials=100)
    res = benchmark(sim.benchmark_stats, "bench", stats)
    assert res.runnable
