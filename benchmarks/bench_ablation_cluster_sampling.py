"""Ablation: matrices benchmarked per cluster (the §4 worked example).

*"If two matrices are benchmarked in the latter case, the likelihood of
picking the correct label rises ... close to the upper bound set by the
purity of the cluster."*  Sweeps the per-cluster benchmarking budget on a
new-architecture labeling pass and reports accuracy vs the purity bound.
"""

import numpy as np
from conftest import print_table

from repro.core.purity import cluster_purity
from repro.core.semisupervised import ClusterFormatSelector
from repro.experiments.common import TableResult
from repro.ml.metrics import accuracy_score


def _generate(bench_data):
    table = TableResult(
        table_id="Ablation A4",
        title="Per-cluster benchmarking budget on a new architecture",
        headers=["budget/cluster", "benchmarked", "ACC", "purity bound"],
    )
    # Clusters from architecture-invariant features; labels from Turing
    # (the "new" platform being set up).
    ds = bench_data.datasets["turing"]
    nc = bench_data.config.nc_grid[0]
    sel = ClusterFormatSelector("kmeans", "vote", nc, seed=0)
    sel.fit_clusters(ds.X)
    bound = cluster_purity(ds.labels, sel.train_assignments_)
    for budget in (1, 2, 4, 8):
        accs, counts = [], []
        for seed in range(5):
            sample = sel.sample_for_benchmarking(budget, seed=seed)
            sel.label_clusters(ds.labels, benchmarked=sample)
            accs.append(accuracy_score(ds.labels, sel.predict(ds.X)))
            counts.append(len(sample))
        table.add_row(
            budget,
            int(np.mean(counts)),
            float(np.mean(accs)),
            bound,
        )
    return table


def test_ablation_cluster_sampling(benchmark, bench_data):
    result = benchmark.pedantic(
        _generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    accs = result.column("ACC")
    bound = result.rows[0][3]
    # More benchmarked matrices per cluster approach the purity bound.
    assert accs[-1] >= accs[0] - 1e-9
    assert accs[-1] <= bound + 1e-9
    assert bound - accs[-1] < 0.1
