"""Table 3: best-format distribution across the simulated GPUs.

Shape assertions mirror the paper: CSR majority on every architecture,
ELL the largest minority, COO most frequent on Turing, HYB essentially a
Pascal phenomenon.
"""

from conftest import print_table

from repro.experiments import table3


def _dist(bench_data, arch):
    return bench_data.datasets[arch].class_distribution()


def test_table3_label_distribution(benchmark, bench_data):
    result = benchmark.pedantic(
        table3.generate, args=(bench_data,), rounds=1, iterations=1
    )
    print_table(result)
    for arch in bench_data.arch_names:
        dist = _dist(bench_data, arch)
        assert max(dist, key=dist.get) == "csr"
        assert dist["ell"] > dist["coo"] or dist["ell"] > dist["hyb"]
    # Architecture-specific minorities.
    assert _dist(bench_data, "turing")["coo"] > _dist(bench_data, "volta")["coo"]
    assert _dist(bench_data, "pascal")["hyb"] >= _dist(bench_data, "volta")["hyb"]
