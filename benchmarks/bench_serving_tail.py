"""Tail-latency benchmark for hedged dispatch → ``BENCH_serving_tail.json``.

Boots the multi-worker tier twice with exactly one deliberately slow
worker (``REPRO_FAULTS`` latency injection in that worker's environment
only — the other workers stay fast) and drives the same seeded predict
workload both times:

- **unhedged** — ``hedge_budget=0``: requests routed to the slow worker
  (and everything FIFO-queued behind them) eat the injected delay, so
  the client-observed p99 sits at or above the injected latency.
- **hedged** — a fixed hedge delay re-dispatches unanswered requests to
  the next distinct ring worker; the first response wins.

Brownout scoring is disabled for both runs so the comparison isolates
hedging — otherwise the brownout layer would also rescue the unhedged
run by pulling the slow worker off the ring.

The output JSON carries ``serving.tail.p99_ms_hedged`` /
``serving.tail.p99_ms_unhedged`` gauges plus hedge-volume accounting,
so CI's ``serve-tail-smoke`` job gates it with ``repro obs report``
against ``benchmarks/slo_serving_tail_permissive.json`` — hedged p99
must be at most 0.6x the unhedged p99, and hedge volume must stay
within the token-bucket budget.

Knobs (environment):

- ``REPRO_BENCH_TAIL_REQUESTS`` — timed requests per run (default 300)
- ``REPRO_BENCH_TAIL_CONNS``    — concurrent connections (default 12)
- ``REPRO_BENCH_TAIL_WORKERS``  — worker count (default 3)
- ``REPRO_BENCH_TAIL_DELAY``    — injected latency seconds (default 0.05)
- ``REPRO_BENCH_TAIL_RATE``     — fraction of the slow worker's requests
  afflicted (default 0.3)
- ``REPRO_BENCH_TAIL_HEDGE_MS`` — hedge delay for the hedged run
  (default 50% of the injected delay; it must sit above the typical
  service time, or healthy requests burn the hedge token bucket and
  leave it dry for the genuinely slow ones)
- ``REPRO_BENCH_TAIL_NNZ``      — nonzeros per matrix (default 800)
- ``REPRO_BENCH_OUT``           — output path (default
  ``BENCH_serving_tail.json`` at the repo root)

Run directly (``python benchmarks/bench_serving_tail.py``) or via
pytest (``pytest benchmarks/bench_serving_tail.py -s``, functional
assertions only — the 0.6x ratio is asserted by the CI SLO gate, not
locally, because local core counts and scheduler jitter vary).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile

from repro.serving.drill import (
    audit_tier_conservation,
    synthetic_frozen_selector,
)
from repro.serving.frontend import ServingTier, TierConfig

from bench_serving_scale import _drive_timed, build_workload

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_serving_tail.json"
)


async def _bench_one(
    model_path: str,
    workers: int,
    lines: list[str],
    connections: int,
    delay_s: float,
    rate: float,
    hedge_ms: float | None,
    hedge_budget: float,
) -> dict:
    """One tier run with worker ``w0`` slowed via fault injection."""
    with tempfile.TemporaryDirectory(prefix="repro-tail-bench-") as run_dir:
        tier = ServingTier(
            TierConfig(
                model_path=model_path,
                run_dir=run_dir,
                workers=workers,
                worker_args=("--queue-size", "256", "--deadline", "0"),
                hedge_ms=hedge_ms,
                hedge_budget=hedge_budget,
                # Isolate hedging: no brownout rescue in either run.
                brownout_factor=0.0,
                worker_env={
                    "w0": {
                        "REPRO_FAULTS": (
                            f"latency={rate},delay={delay_s},seed=7"
                        )
                    }
                },
            )
        )
        front = os.path.join(run_dir, "front.sock")
        server_task = asyncio.ensure_future(tier.run_socket(front))
        for _ in range(1200):
            if os.path.exists(front):
                break
            if server_task.done():
                server_task.result()
            await asyncio.sleep(0.05)
        # Warm every worker's feature/model path before timing.
        await _drive_timed(front, lines[: 2 * workers], connections)
        warm_hedges = tier.n_hedges
        result = await _drive_timed(front, lines, connections)
        reader, writer = await asyncio.open_unix_connection(front)
        writer.write(b'{"id":"__s","op":"shutdown"}\n')
        await writer.drain()
        await reader.readline()
        writer.close()
        await asyncio.wait_for(server_task, timeout=30.0)
        result["hedged"] = hedge_budget > 0
        result["hedges"] = tier.n_hedges - warm_hedges
        result["hedge_wins"] = tier.n_hedge_wins
        result["primary_wins"] = tier.n_primary_wins
        result["routed"] = tier.n_routed
        result["worker_lost"] = tier.n_worker_lost
        result["conservation_violations"] = audit_tier_conservation(tier)
        return result


def run_tail_bench(out_path: str | None = None) -> dict:
    """Run the hedged-vs-unhedged pair; write the JSON artifact."""
    n_requests = int(os.environ.get("REPRO_BENCH_TAIL_REQUESTS", "300"))
    connections = int(os.environ.get("REPRO_BENCH_TAIL_CONNS", "12"))
    workers = int(os.environ.get("REPRO_BENCH_TAIL_WORKERS", "3"))
    delay_s = float(os.environ.get("REPRO_BENCH_TAIL_DELAY", "0.05"))
    rate = float(os.environ.get("REPRO_BENCH_TAIL_RATE", "0.3"))
    hedge_ms = float(
        os.environ.get("REPRO_BENCH_TAIL_HEDGE_MS", str(delay_s * 1000 * 0.5))
    )
    nnz = int(os.environ.get("REPRO_BENCH_TAIL_NNZ", "800"))
    out = out_path or os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)

    lines = build_workload(n_requests, seed=3, nnz=nnz)
    hedge_budget = 0.4
    runs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-tail-model-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=0).save(model_path)
        runs["unhedged"] = asyncio.run(
            _bench_one(
                model_path, workers, lines, connections,
                delay_s, rate, hedge_ms=None, hedge_budget=0.0,
            )
        )
        runs["hedged"] = asyncio.run(
            _bench_one(
                model_path, workers, lines, connections,
                delay_s, rate, hedge_ms=hedge_ms, hedge_budget=hedge_budget,
            )
        )

    hedged = runs["hedged"]
    budget_cap = hedge_budget * hedged["routed"] + max(1.0, 32 * hedge_budget)
    metrics = {
        "serving.tail.p99_ms_hedged": {
            "type": "gauge", "value": hedged["p99_ms"],
        },
        "serving.tail.p99_ms_unhedged": {
            "type": "gauge", "value": runs["unhedged"]["p99_ms"],
        },
        "serving.tail.hedges": {
            "type": "gauge", "value": float(hedged["hedges"]),
        },
        "serving.tail.hedge_budget_headroom": {
            "type": "gauge",
            "value": round(budget_cap - hedged["hedges"], 3),
        },
        "serving.tail.conservation_violations": {
            "type": "gauge",
            "value": float(
                len(hedged["conservation_violations"])
                + len(runs["unhedged"]["conservation_violations"])
            ),
        },
    }
    result = {
        "bench": "serving_tail",
        "n_requests": n_requests,
        "connections": connections,
        "workers": workers,
        "injected_delay_s": delay_s,
        "injected_rate": rate,
        "hedge_ms": hedge_ms,
        "hedge_budget": hedge_budget,
        "runs": runs,
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def print_report(result: dict) -> None:
    print()
    for name in ("unhedged", "hedged"):
        run = result["runs"][name]
        print(
            f"{name:<9} p50 {run['p50_ms']:>8.2f} ms  "
            f"p95 {run['p95_ms']:>8.2f} ms  p99 {run['p99_ms']:>8.2f} ms  "
            f"hedges {run['hedges']}"
        )
    ratio = (
        result["runs"]["hedged"]["p99_ms"]
        / max(result["runs"]["unhedged"]["p99_ms"], 1e-9)
    )
    print(f"hedged p99 / unhedged p99 = {ratio:.3f}")


def test_serving_tail_bench(tmp_path):
    """Functional checks only — the 0.6x ratio is CI's SLO gate."""
    os.environ.setdefault("REPRO_BENCH_TAIL_REQUESTS", "60")
    os.environ.setdefault("REPRO_BENCH_TAIL_CONNS", "6")
    os.environ.setdefault("REPRO_BENCH_TAIL_WORKERS", "2")
    os.environ.setdefault("REPRO_BENCH_TAIL_NNZ", "400")
    out = str(tmp_path / "BENCH_serving_tail.json")
    result = run_tail_bench(out)
    assert os.path.exists(out)
    for name in ("unhedged", "hedged"):
        run = result["runs"][name]
        assert run["n_requests"] == 60
        assert not run["conservation_violations"], run
    assert result["runs"]["unhedged"]["hedges"] == 0
    assert result["metrics"]["serving.tail.hedge_budget_headroom"][
        "value"
    ] >= 0.0


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(__file__))
    report = run_tail_bench()
    print_report(report)
