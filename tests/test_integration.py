"""End-to-end integration: the paper's full story on a small collection.

These tests assert the qualitative findings of the paper hold through the
entire stack — generators → features → GPU simulator → labels → selectors.
"""

import numpy as np
import pytest

from repro.core.semisupervised import ClusterFormatSelector
from repro.core.supervised import SupervisedFormatSelector
from repro.core.transfer import transfer_semisupervised, transfer_supervised
from repro.ml.metrics import accuracy_score, matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold, train_test_split


def _cv_scores(ds, fit_predict, n_folds=3):
    accs, mccs = [], []
    for train, test in StratifiedKFold(n_folds, seed=0).split(ds.labels):
        pred = fit_predict(ds.X[train], ds.labels[train], ds.X[test])
        accs.append(accuracy_score(ds.labels[test], pred))
        mccs.append(matthews_corrcoef(ds.labels[test], pred))
    return float(np.mean(accs)), float(np.mean(mccs))


def _semi(clusterer, labeler, nc):
    def run(Xtr, ytr, Xte):
        sel = ClusterFormatSelector(clusterer, labeler, nc, seed=0)
        sel.fit(Xtr, ytr)
        return sel.predict(Xte)

    return run


def _sup(model):
    def run(Xtr, ytr, Xte):
        clf = SupervisedFormatSelector(model, seed=0)
        clf.fit(Xtr, ytr)
        return clf.predict(Xte)

    return run


def test_semisupervised_beats_majority_baseline(tiny_data):
    for arch in tiny_data.arch_names:
        ds = tiny_data.datasets[arch]
        acc, mcc = _cv_scores(ds, _semi("kmeans", "vote", 12))
        majority = max(
            np.mean(ds.labels == f) for f in ("csr", "ell", "coo", "hyb")
        )
        assert acc > majority - 0.02, arch
        assert mcc > 0.2, arch


def test_kmeans_beats_meanshift(tiny_data):
    """§5.2: all Mean-Shift variants perform poorly vs K-Means."""
    ds = tiny_data.datasets["pascal"]
    _, mcc_km = _cv_scores(ds, _semi("kmeans", "vote", 12))
    _, mcc_ms = _cv_scores(ds, _semi("meanshift", "vote", None))
    assert mcc_km > mcc_ms


def test_semisupervised_competitive_with_supervised(tiny_data):
    """The headline claim: clustering-based selection is competitive."""
    ds = tiny_data.datasets["volta"]
    _, mcc_semi = _cv_scores(ds, _semi("kmeans", "vote", 12))
    _, mcc_rf = _cv_scores(ds, _sup("RF"))
    assert mcc_semi > 0.55 * mcc_rf


@pytest.fixture(scope="module")
def transfer_data(tiny_config):
    """tiny_config with enough benchmark trials that cross-architecture
    label disagreements are architectural, not measurement noise.

    At trials=5 the min-over-trials label on near-tied matrices is a coin
    flip per architecture, so the matrices whose labels *differ* across
    GPUs are mostly the unpredictable ones and §3's local-beats-transfer
    effect drowns (local and transfer swap wins depending on the split
    seed).  At trials=20 label agreement rises from ~72% to ~78-84% and
    the remaining disagreements carry the architectural signal the test
    is about.
    """
    import dataclasses

    from repro.experiments.data import build_experiment_data

    return build_experiment_data(dataclasses.replace(tiny_config, trials=20))


def test_supervised_transfer_degrades_vs_local(transfer_data):
    """§3's motivating observation: on the *same* target test set, a model
    trained on another architecture's labels underperforms one trained
    locally (XGBoost's 90.65% -> 71.03% anecdote).  Averaged over all
    source/target pairs to damp small-sample noise."""
    archs = transfer_data.arch_names
    local_mcc, transfer_mcc = [], []
    for tgt_name in archs:
        tgt = transfer_data.common[tgt_name]
        train, test = train_test_split(len(tgt), 0.3, y=tgt.labels, seed=0)
        local = transfer_supervised("RF", tgt, tgt, train, test, 0.0)
        for src_name in archs:
            if src_name == tgt_name:
                continue
            src = transfer_data.common[src_name]
            transferred = transfer_supervised(
                "RF", src, tgt, train, test, 0.0
            )
            local_mcc.append(local.mcc)
            transfer_mcc.append(transferred.mcc)
    assert np.mean(transfer_mcc) < np.mean(local_mcc)


def test_semisupervised_transfer_more_robust_than_supervised(tiny_data):
    """Retraining gains: supervised improves more from 0->50% than the
    semi-supervised selector (whose clusters never change)."""
    src = tiny_data.common["turing"]
    tgt = tiny_data.common["pascal"]
    train, test = train_test_split(len(src), 0.3, y=src.labels, seed=0)

    def semi(frac):
        sel = ClusterFormatSelector("kmeans", "vote", 12, seed=0)
        return transfer_semisupervised(
            sel, src, tgt, train, test, frac
        ).accuracy

    def sup(frac):
        return transfer_supervised(
            "RF", src, tgt, train, test, frac
        ).accuracy

    gain_semi = semi(0.5) - semi(0.0)
    gain_sup = sup(0.5) - sup(0.0)
    # Both gains can be noisy at this scale; the semi-supervised gain must
    # not dominate (the paper: "additional retraining only provides a
    # moderate increase in performance").
    assert gain_semi <= gain_sup + 0.1


def test_full_pipeline_deterministic(tiny_config):
    from repro.experiments.data import build_experiment_data

    d1 = build_experiment_data(tiny_config, use_cache=False)
    d2 = build_experiment_data(tiny_config, use_cache=False)
    for arch in d1.arch_names:
        np.testing.assert_array_equal(
            d1.datasets[arch].labels, d2.datasets[arch].labels
        )
        np.testing.assert_allclose(
            d1.features.values, d2.features.values
        )


def test_oracle_selection_beats_csr_everywhere(tiny_data):
    """The premise of the problem: picking the best format beats CSR."""
    from repro.core.speedup import speedup_metrics

    for arch in tiny_data.arch_names:
        ds = tiny_data.datasets[arch]
        oracle_pred = ds.labels  # oracle == true best format
        m = speedup_metrics(oracle_pred, ds.times)
        assert m.gt_speedup == pytest.approx(1.0)
        assert m.csr_speedup >= 1.0
        assert m.threshold_count == 0
