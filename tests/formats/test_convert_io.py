"""Conversion dispatch and MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.formats import FORMATS, FormatError, convert
from repro.formats.convert import BENCHMARK_FORMATS
from repro.formats.io import (
    MatrixMarketError,
    matrix_market_string,
    read_matrix_market,
    write_matrix_market,
)


class TestConvert:
    def test_all_formats_roundtrip(self, small_dense, small_coo):
        for fmt in FORMATS:
            kwargs = {"max_fill": None} if fmt in ("ell", "dia") else {}
            m = convert(small_coo, fmt, **kwargs)
            assert m.format_name == fmt
            np.testing.assert_allclose(m.to_dense(), small_dense)

    def test_identity_conversion_returns_same_object(self, small_coo):
        assert convert(small_coo, "coo") is small_coo

    def test_unknown_format(self, small_coo):
        with pytest.raises(FormatError):
            convert(small_coo, "bsr")

    def test_benchmark_formats_are_the_papers_four(self):
        assert set(BENCHMARK_FORMATS) == {"coo", "csr", "ell", "hyb"}

    def test_cross_conversion(self, small_dense, small_coo):
        csr = convert(small_coo, "csr")
        hyb = convert(csr, "hyb")
        np.testing.assert_allclose(hyb.to_dense(), small_dense)


class TestMatrixMarket:
    def test_roundtrip(self, small_coo, small_dense):
        text = matrix_market_string(small_coo, comment="unit test")
        back = read_matrix_market(io.StringIO(text))
        np.testing.assert_allclose(back.to_dense(), small_dense)

    def test_file_roundtrip(self, tmp_path, small_coo, small_dense):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_coo, path)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), small_dense)

    def test_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% comment line\n"
            "3 3 3\n1 1 2.0\n2 1 -1.5\n3 2 4.0\n"
        )
        m = read_matrix_market(io.StringIO(text))
        d = m.to_dense()
        assert d[0, 1] == d[1, 0] == -1.5
        assert d[1, 2] == d[2, 1] == 4.0
        assert m.nnz == 5

    def test_skew_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        d = read_matrix_market(io.StringIO(text)).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 1.0

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 7.0

    @pytest.mark.parametrize(
        "text",
        [
            "not a banner\n1 1 0\n",
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
            "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\nbad size\n",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(MatrixMarketError):
            read_matrix_market(io.StringIO(text))
