"""Base-layer helpers and the uniform SpMV entry point."""

import numpy as np
import pytest

from repro.formats import FormatError, convert, spmv
from repro.formats.base import check_shape, check_vector
from repro.formats.spmv import spmv_dense_reference


class TestCheckShape:
    def test_valid(self):
        assert check_shape((3, 4)) == (3, 4)
        assert check_shape((np.int64(3), np.int64(4))) == (3, 4)

    @pytest.mark.parametrize("shape", [(0, 3), (3, 0), (-1, 2), (3,), (1, 2, 3)])
    def test_invalid(self, shape):
        with pytest.raises(FormatError):
            check_shape(shape)


class TestCheckVector:
    def test_casts_dtype(self):
        out = check_vector(np.ones(4, dtype=np.float32), 4)
        assert out.dtype == np.float64

    def test_rejects_wrong_shape(self):
        with pytest.raises(FormatError):
            check_vector(np.ones(3), 4)
        with pytest.raises(FormatError):
            check_vector(np.ones((4, 1)), 4)


class TestSpmvDispatch:
    def test_dispatch_equals_method(self, small_coo, rng):
        x = rng.standard_normal(small_coo.ncols)
        np.testing.assert_allclose(spmv(small_coo, x), small_coo.spmv(x))

    def test_dense_reference_oracle(self, small_coo, rng):
        x = rng.standard_normal(small_coo.ncols)
        for fmt in ("csr", "ell", "hyb"):
            m = convert(small_coo, fmt, **({"max_fill": None} if fmt == "ell" else {}))
            np.testing.assert_allclose(
                spmv(m, x), spmv_dense_reference(m, x), atol=1e-9
            )

    def test_repr_contains_stats(self, small_coo):
        text = repr(small_coo)
        assert "COOMatrix" in text and f"nnz={small_coo.nnz}" in text
