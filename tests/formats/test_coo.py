"""COO container: canonicalisation, SpMV, structure queries, permutation."""

import numpy as np
import pytest

from repro.formats import COOMatrix, FormatError


def test_from_dense_roundtrip(small_dense):
    coo = COOMatrix.from_dense(small_dense)
    assert coo.shape == small_dense.shape
    assert coo.nnz == np.count_nonzero(small_dense)
    np.testing.assert_allclose(coo.to_dense(), small_dense)


def test_triples_are_sorted_row_major(small_coo):
    keys = small_coo.rows * small_coo.ncols + small_coo.cols
    assert np.all(np.diff(keys) > 0)


def test_duplicates_are_summed():
    coo = COOMatrix(
        (3, 3),
        rows=[0, 0, 0, 2],
        cols=[1, 1, 1, 2],
        vals=[1.0, 2.0, 3.0, 5.0],
    )
    assert coo.nnz == 2
    dense = coo.to_dense()
    assert dense[0, 1] == 6.0
    assert dense[2, 2] == 5.0


def test_out_of_range_indices_rejected():
    with pytest.raises(FormatError):
        COOMatrix((2, 2), rows=[2], cols=[0], vals=[1.0])
    with pytest.raises(FormatError):
        COOMatrix((2, 2), rows=[0], cols=[-1], vals=[1.0])


def test_mismatched_triple_lengths_rejected():
    with pytest.raises(FormatError):
        COOMatrix((2, 2), rows=[0, 1], cols=[0], vals=[1.0])


def test_invalid_shape_rejected():
    with pytest.raises(FormatError):
        COOMatrix((0, 5), rows=[], cols=[], vals=[])


def test_spmv_matches_dense(small_dense, small_coo, rng):
    x = rng.standard_normal(small_dense.shape[1])
    np.testing.assert_allclose(small_coo.spmv(x), small_dense @ x)


def test_spmv_rejects_wrong_vector_length(small_coo):
    with pytest.raises(FormatError):
        small_coo.spmv(np.ones(small_coo.ncols + 1))


def test_empty_matrix_spmv():
    coo = COOMatrix.empty((4, 3))
    np.testing.assert_array_equal(coo.spmv(np.ones(3)), np.zeros(4))
    assert coo.nnz == 0
    assert coo.memory_bytes() == 0


def test_row_lengths(small_dense, small_coo):
    expected = (small_dense != 0).sum(axis=1)
    np.testing.assert_array_equal(small_coo.row_lengths(), expected)


def test_diagonal_offsets():
    dense = np.array([[1.0, 2.0, 0.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]])
    coo = COOMatrix.from_dense(dense)
    np.testing.assert_array_equal(coo.diagonal_offsets(), [-2, 0, 1])


def test_transpose(small_dense, small_coo, rng):
    t = small_coo.transpose()
    np.testing.assert_allclose(t.to_dense(), small_dense.T)


def test_permute_rows_and_cols(small_dense, small_coo, rng):
    rp = rng.permutation(small_coo.nrows)
    cp = rng.permutation(small_coo.ncols)
    permuted = small_coo.permute(rp, cp)
    expected = np.zeros_like(small_dense)
    # B[rp[i], cp[j]] = A[i, j]
    for i in range(small_dense.shape[0]):
        for j in range(small_dense.shape[1]):
            expected[rp[i], cp[j]] = small_dense[i, j]
    np.testing.assert_allclose(permuted.to_dense(), expected)


def test_permute_preserves_nnz_and_row_length_multiset(small_coo, rng):
    rp = rng.permutation(small_coo.nrows)
    permuted = small_coo.permute(row_perm=rp)
    assert permuted.nnz == small_coo.nnz
    np.testing.assert_array_equal(
        np.sort(permuted.row_lengths()), np.sort(small_coo.row_lengths())
    )


def test_permute_rejects_non_permutation(small_coo):
    bad = np.zeros(small_coo.nrows, dtype=np.int64)
    with pytest.raises(FormatError):
        small_coo.permute(row_perm=bad)


def test_memory_bytes(small_coo):
    # 2 x 4-byte indices + 8-byte value per entry.
    assert small_coo.memory_bytes() == small_coo.nnz * 16
