"""Further property-based invariants on format internals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, HYBMatrix
from repro.formats.hyb import optimal_ell_width
from repro.formats.sell import SELLMatrix


@st.composite
def row_length_vectors(draw):
    return np.array(
        draw(st.lists(st.integers(0, 60), min_size=1, max_size=200)),
        dtype=np.int64,
    )


@given(row_length_vectors())
@settings(max_examples=80, deadline=None)
def test_optimal_ell_width_bounds(lengths):
    width = optimal_ell_width(lengths)
    assert 0 <= width <= lengths.max(initial=0)


@st.composite
def random_coo(draw):
    nrows = draw(st.integers(1, 30))
    ncols = draw(st.integers(1, 30))
    positions = draw(
        st.lists(
            st.integers(0, nrows * ncols - 1),
            max_size=min(nrows * ncols, 100),
            unique=True,
        )
    )
    rows = np.array([p // ncols for p in positions], dtype=np.int64)
    cols = np.array([p % ncols for p in positions], dtype=np.int64)
    vals = np.arange(1.0, len(positions) + 1.0)
    return COOMatrix((nrows, ncols), rows, cols, vals)


@given(random_coo(), st.integers(0, 12))
@settings(max_examples=60, deadline=None)
def test_hyb_partition_for_any_width(coo, width):
    """For every explicit width the ELL/COO parts partition the entries."""
    hyb = HYBMatrix.from_coo(coo, width=width)
    assert hyb.ell_nnz + hyb.coo_nnz == coo.nnz
    np.testing.assert_allclose(hyb.to_dense(), coo.to_dense())
    # Every row keeps at most `width` entries in the ELL part.
    if width == 0:
        assert hyb.ell_nnz == 0
    else:
        per_row = (hyb.ell.indices != -1).sum(axis=1)
        assert per_row.max(initial=0) <= width


@given(random_coo(), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_sell_roundtrip_any_slice_height(coo, slice_height):
    sell = SELLMatrix.from_coo(coo, slice_height=slice_height, sigma=1)
    np.testing.assert_allclose(sell.to_dense(), coo.to_dense())
    assert sell.nnz == coo.nnz
    assert sell.padded_size >= coo.nnz


@given(random_coo())
@settings(max_examples=40, deadline=None)
def test_sell_sigma_sorting_never_increases_padding(coo):
    """Descending σ-sort minimises the sum of per-slice maxima — but only
    when all slices have equal height (a short trailing slice can gain
    entries from sorting and grow), so pad the matrix to a multiple of
    the slice height first."""
    slice_height = 4
    nrows = ((coo.nrows + slice_height - 1) // slice_height) * slice_height
    padded = COOMatrix((nrows, coo.ncols), coo.rows, coo.cols, coo.vals)
    plain = SELLMatrix.from_coo(padded, slice_height=slice_height, sigma=1)
    sorted_ = SELLMatrix.from_coo(
        padded, slice_height=slice_height, sigma=2 * slice_height
    )
    assert sorted_.padded_size <= plain.padded_size
    np.testing.assert_allclose(sorted_.to_dense(), plain.to_dense())
