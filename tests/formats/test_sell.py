"""SELL-C-σ: slicing geometry, σ-sorting, permutation correctness."""

import numpy as np
import pytest

from repro.datasets.generators import banded, power_law_rows
from repro.formats import COOMatrix, FormatError
from repro.formats.sell import SELLMatrix


@pytest.fixture
def skewed(rng):
    return power_law_rows(
        rng, nrows=600, avg_nnz_per_row=6, alpha=1.8, max_over_mean=2.9
    )


def test_roundtrip_and_spmv(small_dense, small_coo, rng):
    for C, sigma in [(1, 1), (4, 1), (8, 16), (32, 64), (5, 10)]:
        m = SELLMatrix.from_coo(small_coo, slice_height=C, sigma=sigma)
        np.testing.assert_allclose(m.to_dense(), small_dense)
        x = rng.standard_normal(small_coo.ncols)
        np.testing.assert_allclose(m.spmv(x), small_dense @ x)


def test_slice_count(small_coo):
    m = SELLMatrix.from_coo(small_coo, slice_height=8)
    assert m.n_slices == (small_coo.nrows + 7) // 8


def test_per_slice_width_is_local_max(small_coo):
    m = SELLMatrix.from_coo(small_coo, slice_height=4, sigma=1)
    lengths = small_coo.row_lengths()
    for s in range(m.n_slices):
        block = lengths[s * 4 : (s + 1) * 4]
        assert m.slice_width[s] == block.max(initial=0)


def test_sell_never_pads_more_than_ell(skewed):
    from repro.formats.ell import ELLMatrix

    ell = ELLMatrix.from_coo(skewed, max_fill=None)
    sell = SELLMatrix.from_coo(skewed, slice_height=32, sigma=1)
    assert sell.padded_size <= ell.padded_size


def test_sigma_sorting_reduces_padding(skewed):
    plain = SELLMatrix.from_coo(skewed, slice_height=32, sigma=1)
    sorted_ = SELLMatrix.from_coo(skewed, slice_height=32, sigma=128)
    assert sorted_.padded_size < plain.padded_size
    assert sorted_.nnz == plain.nnz == skewed.nnz


def test_sigma_sorting_preserves_spmv(skewed, rng):
    x = rng.standard_normal(skewed.ncols)
    ref = skewed.spmv(x)
    sorted_ = SELLMatrix.from_coo(skewed, slice_height=32, sigma=128)
    np.testing.assert_allclose(sorted_.spmv(x), ref, atol=1e-9)


def test_permutation_is_identity_without_sigma(skewed):
    m = SELLMatrix.from_coo(skewed, slice_height=32, sigma=1)
    np.testing.assert_array_equal(m.row_perm, np.arange(skewed.nrows))


def test_uniform_rows_fill_near_one(rng):
    m = banded(rng, n=256, bandwidth=2, density=1.0)
    sell = SELLMatrix.from_coo(m, slice_height=32, sigma=1)
    assert sell.fill_ratio() < 1.1


def test_memory_accounts_for_permutation(skewed):
    plain = SELLMatrix.from_coo(skewed, slice_height=32, sigma=1)
    sorted_ = SELLMatrix.from_coo(skewed, slice_height=32, sigma=128)
    # Despite the permutation array, sorting wins on this skew level.
    assert sorted_.memory_bytes() < plain.memory_bytes()


def test_empty_matrix():
    m = SELLMatrix.from_coo(COOMatrix.empty((10, 7)), slice_height=4)
    assert m.nnz == 0
    np.testing.assert_array_equal(m.spmv(np.ones(7)), np.zeros(10))
    assert m.to_coo().nnz == 0


def test_validation():
    coo = COOMatrix.empty((4, 4))
    with pytest.raises(FormatError):
        SELLMatrix.from_coo(coo, slice_height=0)
    with pytest.raises(FormatError):
        SELLMatrix.from_coo(coo, slice_height=8, sigma=4)  # sigma < C
    with pytest.raises(FormatError):
        SELLMatrix.from_coo(coo, slice_height=4, sigma=0)
