"""HYB container: width heuristic, ELL/COO split, SpMV."""

import numpy as np
import pytest

from repro.datasets.generators import arrow, power_law_rows
from repro.formats import HYBMatrix
from repro.formats.hyb import optimal_ell_width


@pytest.fixture
def hyb(small_coo) -> HYBMatrix:
    return HYBMatrix.from_coo(small_coo)


def test_roundtrip(small_dense, hyb):
    np.testing.assert_allclose(hyb.to_dense(), small_dense)


def test_parts_partition_entries(small_coo, hyb):
    assert hyb.ell_nnz + hyb.coo_nnz == small_coo.nnz


def test_spmv_matches_dense(small_dense, hyb, rng):
    x = rng.standard_normal(small_dense.shape[1])
    np.testing.assert_allclose(hyb.spmv(x), small_dense @ x)


def test_explicit_width_respected(small_coo):
    hyb = HYBMatrix.from_coo(small_coo, width=2)
    assert hyb.ell.width == 2
    lengths = small_coo.row_lengths()
    assert hyb.coo_nnz == int(np.maximum(lengths - 2, 0).sum())


def test_width_zero_puts_everything_in_coo(small_coo):
    hyb = HYBMatrix.from_coo(small_coo, width=0)
    assert hyb.ell_nnz == 0
    assert hyb.coo_nnz == small_coo.nnz


def test_arrow_overflow_goes_to_coo(rng):
    m = arrow(rng, n=500, band=1)
    hyb = HYBMatrix.from_coo(m)
    # The dense first row must overflow into COO, keeping ELL narrow.
    assert hyb.ell.width < 20
    assert hyb.coo_nnz > 400


def test_memory_less_than_ell_for_skewed(rng):
    m = power_law_rows(
        rng, nrows=800, avg_nnz_per_row=6, alpha=1.8, max_over_mean=2.9
    )
    from repro.formats import ELLMatrix

    hyb = HYBMatrix.from_coo(m)
    ell = ELLMatrix.from_coo(m, max_fill=None)
    assert hyb.memory_bytes() < ell.memory_bytes()


class TestOptimalEllWidth:
    def test_uniform_rows_full_width(self):
        lengths = np.full(320, 7)
        assert optimal_ell_width(lengths) == 7

    def test_skewed_rows_truncate(self):
        lengths = np.full(3200, 2)
        lengths[:16] = 1000
        width = optimal_ell_width(lengths)
        assert width < 1000

    def test_empty(self):
        assert optimal_ell_width(np.array([], dtype=int)) == 0

    def test_monotone_in_relative_speed(self):
        rng = np.random.default_rng(0)
        lengths = rng.poisson(8, size=1000)
        # Faster assumed ELL (higher relative_speed) => push more rows into
        # ELL => width can only grow.
        w_slow = optimal_ell_width(lengths, relative_speed=1.5)
        w_fast = optimal_ell_width(lengths, relative_speed=10.0)
        assert w_fast >= w_slow
