"""Streaming MatrixMarket reader ≡ the in-memory reader, bit for bit.

The contract under test: for *any* input text and *any* chunk size,
driving :func:`read_matrix_market_streaming` +
:func:`assemble_matrix` by hand produces exactly what
:func:`read_matrix_market` produces — the same ``COOMatrix`` contents
(dtypes included) on success, the same :class:`MatrixMarketError`
``code`` *and message* on rejection.  A second contract covers the
file-path entry point: the ``mmap`` fast path must be indistinguishable
from the text-mode fallback, and declared-size limits must trip at the
size line, before any entry is parsed.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix
from repro.formats.io import (
    MatrixMarketError,
    MatrixMarketHeader,
    ReadPolicy,
    assemble_matrix,
    read_matrix_market,
    read_matrix_market_streaming,
)

CHUNK_SIZES = (1, 2, 3, 7, 100_000)

POLICIES = {
    "default": ReadPolicy(),
    "strict": ReadPolicy(
        max_dim=1000,
        max_nnz=1000,
        max_header_bytes=256,
        allow_nonfinite=False,
        duplicates="reject",
    ),
}


def _outcome_inmemory(text: str, policy: ReadPolicy):
    try:
        return _fingerprint(read_matrix_market(io.StringIO(text), policy))
    except MatrixMarketError as exc:
        return ("err", exc.code, str(exc))


def _outcome_streamed(text: str, policy: ReadPolicy, chunk_nnz: int):
    try:
        stream = read_matrix_market_streaming(
            io.StringIO(text), policy, chunk_nnz=chunk_nnz
        )
        header = next(stream)
        assert isinstance(header, MatrixMarketHeader)
        rows, cols, vals = [], [], []
        for block in stream:
            assert len(block.rows) <= chunk_nnz
            rows.append(block.rows)
            cols.append(block.cols)
            vals.append(block.vals)
        return _fingerprint(assemble_matrix(header, rows, cols, vals))
    except MatrixMarketError as exc:
        return ("err", exc.code, str(exc))


def _fingerprint(matrix: COOMatrix):
    return (
        "ok",
        matrix.shape,
        matrix.rows.dtype.str,
        matrix.rows.tobytes(),
        matrix.cols.dtype.str,
        matrix.cols.tobytes(),
        matrix.vals.dtype.str,
        matrix.vals.tobytes(),
    )


def assert_equivalent(text: str):
    for name, policy in POLICIES.items():
        expected = _outcome_inmemory(text, policy)
        for chunk_nnz in CHUNK_SIZES:
            got = _outcome_streamed(text, policy, chunk_nnz)
            assert got == expected, (
                f"policy={name} chunk={chunk_nnz}: {got!r} != {expected!r}"
            )


# -- generative equivalence -------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=300))
def test_arbitrary_text_streams_identically(text):
    assert_equivalent(text)


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["general", "symmetric", "skew-symmetric"]),
    st.sampled_from(["real", "integer", "pattern"]),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=-3, max_value=30),
    st.lists(
        st.tuples(
            st.integers(min_value=-1, max_value=12),
            st.integers(min_value=-1, max_value=12),
            st.floats(allow_nan=True, allow_infinity=True, width=32),
        ),
        max_size=16,
    ),
)
def test_structured_bodies_stream_identically(
    symmetry, field, dim, declared_nnz, entries
):
    """Valid and invalid bodies across symmetries, duplicates included.

    Entries are unconstrained, so this covers mirroring, duplicate
    summation/rejection, count mismatches, out-of-range indices, and
    non-finite values — the error paths must match exactly, too.
    """
    lines = [
        f"%%MatrixMarket matrix coordinate {field} {symmetry}",
        f"{dim} {dim} {declared_nnz}",
    ]
    for r, c, v in entries:
        if field == "pattern":
            lines.append(f"{r + 1} {c + 1}")
        else:
            lines.append(f"{r + 1} {c + 1} {v!r}")
    assert_equivalent("\n".join(lines) + "\n")


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="0123456789 .-+eE\n%\r", max_size=200))
def test_numeric_soup_with_carriage_returns_streams_identically(body):
    banner = "%%MatrixMarket matrix coordinate real general\n"
    assert_equivalent(banner + body)


# -- file-path entry point: mmap fast path vs text fallback ----------------


PATH_CASES = {
    "lf": ("%%MatrixMarket matrix coordinate real general\n"
           "2 2 2\n1 1 1.5\n2 2 2.5\n"),
    "crlf": ("%%MatrixMarket matrix coordinate real general\r\n"
             "2 2 2\r\n1 1 1.5\r\n2 2 2.5\r\n"),
    "no_trailing_newline": (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n1 1 1.5\n2 2 2.5"),
    "empty": "",
    "symmetric": ("%%MatrixMarket matrix coordinate real symmetric\n"
                  "3 3 2\n2 1 1.0\n3 3 4.0\n"),
    "count_mismatch": ("%%MatrixMarket matrix coordinate real general\n"
                       "2 2 3\n1 1 1.0\n"),
}


@pytest.mark.parametrize("case", sorted(PATH_CASES))
def test_path_read_matches_stringio_read(case, tmp_path):
    text = PATH_CASES[case]
    path = tmp_path / f"{case}.mtx"
    path.write_bytes(text.encode("latin-1"))

    def from_path(use_mmap):
        try:
            stream = read_matrix_market_streaming(
                str(path), use_mmap=use_mmap
            )
            header = next(stream)
            blocks = list(stream)
            return _fingerprint(assemble_matrix(
                header,
                [b.rows for b in blocks],
                [b.cols for b in blocks],
                [b.vals for b in blocks],
            ))
        except MatrixMarketError as exc:
            return ("err", exc.code, str(exc))

    expected = _outcome_inmemory(text, ReadPolicy())
    assert from_path(use_mmap=True) == expected
    assert from_path(use_mmap=False) == expected
    # The public reader takes the same path-based route.
    try:
        via_reader = _fingerprint(read_matrix_market(str(path)))
    except MatrixMarketError as exc:
        via_reader = ("err", exc.code, str(exc))
    assert via_reader == expected


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(read_matrix_market_streaming(str(tmp_path / "nope.mtx")))


# -- size-line enforcement: forged headers die before any entry ------------


def test_forged_giant_header_rejected_at_size_line():
    """The limit trips after the size line; entry lines are never pulled."""

    pulled = []

    def lines():
        yield "%%MatrixMarket matrix coordinate real general\n"
        yield "999999999 999999999 999999999999\n"
        pulled.append("entry")
        yield "1 1 1.0\n"

    policy = ReadPolicy(max_dim=1_000_000)
    stream = read_matrix_market_streaming(lines(), policy)
    with pytest.raises(MatrixMarketError) as exc_info:
        next(stream)
    assert exc_info.value.code == "too_large"
    assert not pulled, "reader consumed entry lines past a rejected header"


def test_forged_giant_nnz_rejected_at_size_line():
    pulled = []

    def lines():
        yield "%%MatrixMarket matrix coordinate real general\n"
        yield "10 10 999999999999\n"
        pulled.append("entry")
        yield "1 1 1.0\n"

    policy = ReadPolicy(max_nnz=1_000_000)
    stream = read_matrix_market_streaming(lines(), policy)
    with pytest.raises(MatrixMarketError) as exc_info:
        next(stream)
    assert exc_info.value.code == "too_large"
    assert not pulled


def test_header_yielded_before_entries_are_parsed():
    """The header arrives eagerly; a poisoned entry only raises later."""

    stream = read_matrix_market_streaming(io.StringIO(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "not an entry\n"
    ))
    header = next(stream)
    assert header == MatrixMarketHeader("real", "general", 2, 2, 1)
    with pytest.raises(MatrixMarketError):
        next(stream)


def test_chunk_nnz_must_be_positive():
    with pytest.raises(ValueError):
        list(read_matrix_market_streaming(io.StringIO(""), chunk_nnz=0))
