"""CSR container: construction, validation, SpMV, row access."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, FormatError


@pytest.fixture
def csr(small_coo) -> CSRMatrix:
    return CSRMatrix.from_coo(small_coo)


def test_roundtrip(small_dense, csr):
    np.testing.assert_allclose(csr.to_dense(), small_dense)


def test_indptr_consistency(csr, small_coo):
    assert csr.indptr[0] == 0
    assert csr.indptr[-1] == small_coo.nnz
    np.testing.assert_array_equal(
        np.diff(csr.indptr), small_coo.row_lengths()
    )


def test_spmv_matches_dense(small_dense, csr, rng):
    x = rng.standard_normal(small_dense.shape[1])
    np.testing.assert_allclose(csr.spmv(x), small_dense @ x)


def test_spmv_empty_rows_give_zero(csr):
    y = csr.spmv(np.ones(csr.ncols))
    assert y[5] == 0.0  # row 5 forced empty by the fixture


def test_row_accessor(small_dense, csr):
    for i in range(csr.nrows):
        idx, vals = csr.row(i)
        expected_cols = np.flatnonzero(small_dense[i])
        np.testing.assert_array_equal(idx, expected_cols)
        np.testing.assert_allclose(vals, small_dense[i, expected_cols])


def test_row_accessor_out_of_range(csr):
    with pytest.raises(FormatError):
        csr.row(csr.nrows)


def test_validation_bad_indptr():
    with pytest.raises(FormatError):
        CSRMatrix((2, 2), indptr=[0, 2], indices=[0, 1], data=[1.0, 2.0])
    with pytest.raises(FormatError):
        CSRMatrix((2, 2), indptr=[1, 1, 2], indices=[0, 1], data=[1.0, 2.0])
    with pytest.raises(FormatError):
        CSRMatrix((2, 2), indptr=[0, 2, 1], indices=[0, 1], data=[1.0, 2.0])


def test_validation_column_out_of_range():
    with pytest.raises(FormatError):
        CSRMatrix((2, 2), indptr=[0, 1, 2], indices=[0, 2], data=[1.0, 2.0])


def test_memory_bytes(csr):
    expected = (csr.nrows + 1 + csr.nnz) * 4 + csr.nnz * 8
    assert csr.memory_bytes() == expected


def test_empty_matrix():
    csr = CSRMatrix.from_coo(COOMatrix.empty((3, 4)))
    assert csr.nnz == 0
    np.testing.assert_array_equal(csr.spmv(np.ones(4)), np.zeros(3))
