"""ELL container: padding geometry, fill-bound rejection, SpMV."""

import numpy as np
import pytest

from repro.datasets.generators import arrow, banded
from repro.formats import COOMatrix, ELLMatrix, EllSizeError, FormatError
from repro.formats.ell import PAD


@pytest.fixture
def ell(small_coo) -> ELLMatrix:
    return ELLMatrix.from_coo(small_coo, max_fill=None)


def test_roundtrip(small_dense, ell):
    np.testing.assert_allclose(ell.to_dense(), small_dense)


def test_width_is_max_row_length(small_coo, ell):
    assert ell.width == int(small_coo.row_lengths().max())


def test_padding_slots_marked(small_coo, ell):
    lengths = small_coo.row_lengths()
    for i in range(ell.nrows):
        row_idx = ell.indices[i]
        assert np.all(row_idx[: lengths[i]] != PAD)
        assert np.all(row_idx[lengths[i] :] == PAD)


def test_nnz_and_fill_ratio(small_coo, ell):
    assert ell.nnz == small_coo.nnz
    assert ell.fill_ratio() == ell.padded_size / small_coo.nnz
    assert ell.fill_ratio() >= 1.0


def test_spmv_matches_dense(small_dense, ell, rng):
    x = rng.standard_normal(small_dense.shape[1])
    np.testing.assert_allclose(ell.spmv(x), small_dense @ x)


def test_fill_bound_rejects_arrow(rng):
    # Arrowhead: one dense row makes width ~ n, fill ratio ~ n/5 >> 3.
    m = arrow(rng, n=600, band=1)
    with pytest.raises(EllSizeError):
        ELLMatrix.from_coo(m)


def test_fill_bound_accepts_banded(rng):
    m = banded(rng, n=600, bandwidth=3)
    ell = ELLMatrix.from_coo(m)
    assert ell.fill_ratio() < 3.0


def test_small_matrices_bypass_fill_bound():
    # The absolute 4096-slot floor admits small skewed matrices, as CUSP
    # only applies the relative bound beyond a minimum size.
    dense = np.zeros((8, 64))
    dense[0, :] = 1.0  # one full row, others empty except diagonal
    for i in range(1, 8):
        dense[i, i] = 1.0
    coo = COOMatrix.from_dense(dense)
    ell = ELLMatrix.from_coo(coo)  # padded = 8*64 = 512 <= 4096
    assert ell.width == 64


def test_validation_rejects_nonzero_padding():
    indices = np.array([[0, PAD]])
    values = np.array([[1.0, 2.0]])  # nonzero under a PAD slot
    with pytest.raises(FormatError):
        ELLMatrix((1, 2), indices, values)


def test_empty_matrix():
    ell = ELLMatrix.from_coo(COOMatrix.empty((3, 4)))
    assert ell.width == 0
    assert ell.nnz == 0
    np.testing.assert_array_equal(ell.spmv(np.ones(4)), np.zeros(3))
