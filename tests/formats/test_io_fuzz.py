"""Property-style fuzzing of the hardened MatrixMarket reader.

The contract under test: *every* input either yields a valid
:class:`COOMatrix` or raises :class:`MatrixMarketError` — never another
exception type, never a crash, never a giant allocation driven by a
forged size line.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix
from repro.formats.io import (
    MatrixMarketError,
    ReadPolicy,
    matrix_market_string,
    read_matrix_market,
)

BANNER = "%%MatrixMarket matrix coordinate real general\n"


def _read_text(text: str, policy: ReadPolicy | None = None):
    if policy is None:
        return read_matrix_market(io.StringIO(text))
    return read_matrix_market(io.StringIO(text), policy)


def assert_valid_or_rejected(text: str, policy: ReadPolicy | None = None):
    try:
        matrix = _read_text(text, policy)
    except MatrixMarketError as exc:
        assert isinstance(exc.code, str) and exc.code
        return None
    assert isinstance(matrix, COOMatrix)
    return matrix


# -- generative fuzzing -----------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=400))
def test_arbitrary_text_never_crashes(text):
    assert_valid_or_rejected(text)


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="0123456789 .-+eE\n%", max_size=300))
def test_numeric_soup_after_banner_never_crashes(body):
    assert_valid_or_rejected(BANNER + body)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=-5, max_value=30),
    st.integers(min_value=-5, max_value=30),
    st.integers(min_value=-3, max_value=40),
    st.lists(
        st.tuples(
            st.integers(min_value=-2, max_value=12),
            st.integers(min_value=-2, max_value=12),
            st.floats(allow_nan=True, allow_infinity=True, width=32),
        ),
        max_size=20,
    ),
)
def test_structured_garbage_never_crashes(nrows, ncols, nnz, entries):
    lines = [f"{nrows} {ncols} {nnz}"]
    lines += [f"{r} {c} {v!r}" for r, c, v in entries]
    matrix = assert_valid_or_rejected(BANNER + "\n".join(lines) + "\n")
    if matrix is not None:
        assert matrix.nrows == nrows and matrix.ncols == ncols


STRICT = ReadPolicy(
    max_dim=1000,
    max_nnz=1000,
    max_header_bytes=256,
    allow_nonfinite=False,
    duplicates="reject",
)


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=400))
def test_strict_policy_never_crashes(text):
    assert_valid_or_rejected(text, STRICT)


# -- directed adversarial cases ---------------------------------------------


def _code_of(text: str, policy: ReadPolicy | None = None) -> str:
    with pytest.raises(MatrixMarketError) as exc_info:
        _read_text(text, policy)
    return exc_info.value.code


def test_truncated_file_rejected():
    assert _code_of(BANNER + "5 5 9\n1 1 1.0\n") == "count_mismatch"


def test_truncated_mid_header():
    assert _code_of("%%MatrixMarket matrix") == "bad_banner"
    assert _code_of(BANNER) == "bad_size"
    assert _code_of(BANNER + "% only comments\n") == "bad_size"


def test_huge_declared_nnz_vs_tiny_body_no_allocation():
    # The forged size line demands ~8 TB of triples; the list-based
    # reader must reject it from the body mismatch without allocating.
    text = BANNER + "3 3 999999999999\n1 1 1.0\n"
    assert _code_of(text) == "count_mismatch"


def test_huge_declared_nnz_rejected_up_front_by_policy():
    text = BANNER + "3 3 999999999999\n1 1 1.0\n"
    assert _code_of(text, STRICT) == "too_large"


def test_huge_declared_dims_rejected_by_policy():
    text = BANNER + "99999999 99999999 1\n1 1 1.0\n"
    assert _code_of(text, STRICT) == "too_large"


def test_negative_indices_rejected():
    assert _code_of(BANNER + "4 4 1\n-1 2 1.0\n") == "index_out_of_range"
    assert _code_of(BANNER + "4 4 1\n0 2 1.0\n") == "index_out_of_range"


def test_out_of_range_indices_rejected():
    assert _code_of(BANNER + "4 4 1\n5 1 1.0\n") == "index_out_of_range"


def test_negative_dimensions_rejected():
    assert _code_of(BANNER + "-3 3 1\n1 1 1.0\n") == "bad_size"


def test_nan_and_inf_policy():
    nan_text = BANNER + "2 2 1\n1 1 nan\n"
    inf_text = BANNER + "2 2 1\n1 1 inf\n"
    # Permissive default keeps them (historical behaviour).
    assert np.isnan(_read_text(nan_text).vals[0])
    assert np.isinf(_read_text(inf_text).vals[0])
    # Strict policy rejects both.
    assert _code_of(nan_text, STRICT) == "nonfinite_value"
    assert _code_of(inf_text, STRICT) == "nonfinite_value"


def test_duplicate_policy():
    text = BANNER + "2 2 2\n1 1 1.5\n1 1 2.5\n"
    # Default sums duplicates (CUSP behaviour)...
    matrix = _read_text(text)
    assert matrix.nnz == 1 and matrix.vals[0] == 4.0
    # ...strict rejects them.
    assert _code_of(text, STRICT) == "duplicate_entry"


def test_banner_case_mixing_accepted():
    text = "%%MatrixMarket MATRIX Coordinate REAL General\n1 1 1\n1 1 3.0\n"
    assert _read_text(text).vals[0] == 3.0


def test_oversized_comment_header_rejected_by_policy():
    text = BANNER + ("% spam\n" * 100) + "1 1 1\n1 1 1.0\n"
    assert _read_text(text).nnz == 1  # permissive: fine
    assert _code_of(text, STRICT) == "oversized_header"


def test_non_ascii_comment_bytes_readable_from_disk(tmp_path):
    # Real SuiteSparse files carry author names in latin-1/utf-8
    # comments; the old ascii codec crashed with UnicodeDecodeError.
    path = tmp_path / "latin.mtx"
    path.write_bytes(
        BANNER.encode()
        + b"% author: J\xf6rg M\xfcller \xe2\x82\xac\n"
        + b"2 2 1\n1 2 4.0\n"
    )
    matrix = read_matrix_market(path)
    assert matrix.nnz == 1 and matrix.vals[0] == 4.0


def test_declared_nnz_must_match_lines_read(tmp_path):
    path = tmp_path / "extra.mtx"
    path.write_text(BANNER + "2 2 1\n1 1 1.0\n2 2 2.0\n")
    with pytest.raises(MatrixMarketError) as exc_info:
        read_matrix_market(path)
    assert exc_info.value.code == "count_mismatch"


def test_roundtrip_still_exact(rng):
    dense = (rng.random((9, 7)) < 0.3) * rng.standard_normal((9, 7))
    original = COOMatrix.from_dense(dense)
    back = _read_text(matrix_market_string(original), STRICT)
    np.testing.assert_array_equal(back.to_dense(), original.to_dense())
