"""DIA and CSC containers."""

import numpy as np
import pytest

from repro.datasets.generators import multi_diagonal, random_uniform
from repro.formats import COOMatrix, CSCMatrix, DIAMatrix, FormatError
from repro.formats.dia import DiaSizeError


class TestDIA:
    def test_roundtrip_banded(self, rng):
        m = multi_diagonal(rng, n=200, ndiags=5)
        dia = DIAMatrix.from_coo(m)
        np.testing.assert_allclose(dia.to_dense(), m.to_dense())

    def test_spmv_matches_dense(self, rng):
        m = multi_diagonal(rng, n=150, ndiags=7)
        dia = DIAMatrix.from_coo(m)
        x = rng.standard_normal(150)
        np.testing.assert_allclose(dia.spmv(x), m.to_dense() @ x)

    def test_rectangular_spmv(self, rng):
        dense = np.zeros((6, 9))
        dense[np.arange(6), np.arange(6) + 2] = 3.0  # offset +2
        dense[np.arange(1, 6), np.arange(5)] = -1.0  # offset -1
        coo = COOMatrix.from_dense(dense)
        dia = DIAMatrix.from_coo(coo, max_fill=None)
        x = rng.standard_normal(9)
        np.testing.assert_allclose(dia.spmv(x), dense @ x)

    def test_offsets_sorted_and_counted(self, rng):
        m = multi_diagonal(rng, n=100, ndiags=6)
        dia = DIAMatrix.from_coo(m)
        assert np.all(np.diff(dia.offsets) > 0)
        assert dia.ndiags == len(m.diagonal_offsets())

    def test_scattered_matrix_rejected(self, rng):
        m = random_uniform(rng, nrows=1200, density=0.004)
        with pytest.raises(DiaSizeError):
            DIAMatrix.from_coo(m)

    def test_stored_size(self, rng):
        m = multi_diagonal(rng, n=100, ndiags=4)
        dia = DIAMatrix.from_coo(m)
        assert dia.stored_size == dia.ndiags * 100

    def test_validation_unsorted_offsets(self):
        with pytest.raises(FormatError):
            DIAMatrix((2, 2), offsets=[1, 0], data=np.zeros((2, 2)))


class TestCSC:
    def test_roundtrip(self, small_dense, small_coo):
        csc = CSCMatrix.from_coo(small_coo)
        np.testing.assert_allclose(csc.to_dense(), small_dense)

    def test_spmv_matches_dense(self, small_dense, small_coo, rng):
        csc = CSCMatrix.from_coo(small_coo)
        x = rng.standard_normal(small_dense.shape[1])
        np.testing.assert_allclose(csc.spmv(x), small_dense @ x)

    def test_col_lengths(self, small_dense, small_coo):
        csc = CSCMatrix.from_coo(small_coo)
        np.testing.assert_array_equal(
            csc.col_lengths(), (small_dense != 0).sum(axis=0)
        )

    def test_empty(self):
        csc = CSCMatrix.from_coo(COOMatrix.empty((3, 4)))
        np.testing.assert_array_equal(csc.spmv(np.ones(4)), np.zeros(3))

    def test_validation(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), indptr=[0, 1], indices=[0], data=[1.0])
