"""Property-based tests: all formats agree with the dense oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMATS, COOMatrix, convert


@st.composite
def sparse_matrices(draw) -> COOMatrix:
    """Random small COO matrices, including empty and single-entry ones."""
    nrows = draw(st.integers(1, 24))
    ncols = draw(st.integers(1, 24))
    # Unique positions: duplicate entries would be summed by the COO
    # canonicalisation and could cancel to an explicit zero, which DIA
    # (values-only storage) cannot represent.
    positions = draw(
        st.lists(
            st.integers(0, nrows * ncols - 1),
            max_size=min(nrows * ncols, 120),
            unique=True,
        )
    )
    nnz = len(positions)
    if nnz:
        rows = [p // ncols for p in positions]
        cols = [p % ncols for p in positions]
        # Values bounded away from zero: DIA stores values only (no
        # occupancy mask), so explicit-zero entries are not representable
        # there and are excluded from the cross-format properties.
        magnitudes = draw(
            st.lists(
                st.floats(min_value=1e-3, max_value=100),
                min_size=nnz,
                max_size=nnz,
            )
        )
        signs = draw(
            st.lists(st.sampled_from([-1.0, 1.0]), min_size=nnz, max_size=nnz)
        )
        vals = [m * s for m, s in zip(magnitudes, signs)]
    else:
        rows, cols, vals = [], [], []
    return COOMatrix((nrows, ncols), np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64), np.array(vals))


@given(sparse_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_every_format_spmv_matches_dense(coo, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(coo.ncols)
    reference = coo.to_dense() @ x
    for fmt in FORMATS:
        kwargs = {"max_fill": None} if fmt in ("ell", "dia") else {}
        m = convert(coo, fmt, **kwargs)
        np.testing.assert_allclose(
            m.spmv(x), reference, rtol=1e-9, atol=1e-9
        )


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_every_format_roundtrips_to_same_dense(coo):
    reference = coo.to_dense()
    for fmt in FORMATS:
        kwargs = {"max_fill": None} if fmt in ("ell", "dia") else {}
        m = convert(coo, fmt, **kwargs)
        np.testing.assert_allclose(m.to_dense(), reference)
        assert m.nnz == coo.nnz


@given(sparse_matrices())
@settings(max_examples=40, deadline=None)
def test_nnz_preserved_and_memory_positive(coo):
    for fmt in FORMATS:
        kwargs = {"max_fill": None} if fmt in ("ell", "dia") else {}
        m = convert(coo, fmt, **kwargs)
        assert m.memory_bytes() >= 0
        if coo.nnz:
            assert m.memory_bytes() > 0


@given(sparse_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_spmv_linearity(coo, seed):
    """SpMV is linear: A(ax + by) == a·Ax + b·Ay for every format."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(coo.ncols)
    y = rng.standard_normal(coo.ncols)
    a, b = 2.5, -1.25
    for fmt in ("csr", "coo", "hyb"):
        m = convert(coo, fmt)
        lhs = m.spmv(a * x + b * y)
        rhs = a * m.spmv(x) + b * m.spmv(y)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)
