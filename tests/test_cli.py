"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.generators import banded, stencil_2d
from repro.formats import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, rng):
    path = tmp_path / "m.mtx"
    write_matrix_market(stencil_2d(rng, nx=20, ny=20), path)
    return str(path)


def test_features_command(mtx_file, capsys):
    assert main(["features", mtx_file]) == 0
    out = capsys.readouterr().out
    assert "nnz" in out and "ell_size" in out
    assert len(out.strip().splitlines()) == 21


def test_benchmark_command(mtx_file, capsys):
    assert main(["benchmark", mtx_file, "--arch", "turing", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "csr:" in out and "<- best" in out
    assert "Turing" in out


def test_train_and_predict_roundtrip(tmp_path, mtx_file, capsys):
    model = str(tmp_path / "selector.npz")
    assert main([
        "train", "--size", "60", "--clusters", "10", "--trials", "5",
        "--arch", "volta", "--out", model,
    ]) == 0
    out = capsys.readouterr().out
    assert "saved 10 labeled centroids" in out
    assert main(["predict", mtx_file, "--model", model]) == 0
    out = capsys.readouterr().out
    assert "recommended format:" in out
    fmt = out.split("recommended format:")[1].split()[0]
    assert fmt in {"csr", "coo", "ell", "hyb"}


def test_tables_command(capsys):
    assert main(["tables", "--small", "--only", "table2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
