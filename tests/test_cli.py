"""Command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.generators import stencil_2d
from repro.formats import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, rng):
    path = tmp_path / "m.mtx"
    write_matrix_market(stencil_2d(rng, nx=20, ny=20), path)
    return str(path)


def test_features_command(mtx_file, capsys):
    assert main(["features", mtx_file]) == 0
    out = capsys.readouterr().out
    assert "nnz" in out and "ell_size" in out
    assert len(out.strip().splitlines()) == 21


def test_benchmark_command(mtx_file, capsys):
    assert main(["benchmark", mtx_file, "--arch", "turing", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "csr:" in out and "<- best" in out
    assert "Turing" in out


def test_train_and_predict_roundtrip(tmp_path, mtx_file, capsys):
    model = str(tmp_path / "selector.npz")
    assert main([
        "train", "--size", "60", "--clusters", "10", "--trials", "5",
        "--arch", "volta", "--out", model,
    ]) == 0
    out = capsys.readouterr().out
    assert "saved 10 labeled centroids" in out
    assert main(["predict", mtx_file, "--model", model]) == 0
    out = capsys.readouterr().out
    assert "recommended format:" in out
    fmt = out.split("recommended format:")[1].split()[0]
    assert fmt in {"csr", "coo", "ell", "hyb"}


def test_tables_command(capsys):
    assert main(["tables", "--small", "--only", "table2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_no_args_exits_2_with_usage(capsys):
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
    assert "usage: repro" in capsys.readouterr().err


class TestProfile:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self):
        from repro.obs import TELEMETRY

        yield
        TELEMETRY.disable()
        TELEMETRY.reset()

    def test_train_profile_emits_parseable_trace(self, tmp_path, capsys):
        import json

        from repro.obs import aggregate, load_trace, total_root_seconds

        trace = str(tmp_path / "trace.jsonl")
        model = str(tmp_path / "selector.npz")
        assert main([
            "train", "--size", "50", "--clusters", "8", "--trials", "5",
            "--out", model, "--profile", trace,
        ]) == 0
        err = capsys.readouterr().err
        assert "span events written" in err
        assert "cli.train" in err
        assert "[obs] metrics:" in err
        events = load_trace(trace)
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] == "X"
            json.dumps(event)  # every event is JSON-serialisable
        names = {e["name"] for e in events}
        assert "cli.train" in names
        assert "kmeans.fit" in names
        assert "pipeline.fit" in names
        # The root span covers the whole command, so the trace accounts
        # for (well over) 90% of the command's wall time.
        root = next(e for e in events if e["name"] == "cli.train")
        assert root["dur"] >= 0.9 * total_root_seconds(events) * 1e6
        assert aggregate(events)[0].calls >= 1

    def test_profile_without_path_prints_report_only(
        self, tmp_path, mtx_file, capsys
    ):
        assert main(["features", mtx_file, "--profile"]) == 0
        out, err = capsys.readouterr()
        assert "nnz" in out  # command output still lands on stdout
        assert "[obs] span tree:" in err
        assert "cli.features" in err
        assert "span events written" not in err

    def test_stats_renders_hot_path_table(self, tmp_path, capsys):
        model = str(tmp_path / "selector.npz")
        trace = str(tmp_path / "trace.jsonl")
        assert main([
            "train", "--size", "50", "--clusters", "8", "--trials", "5",
            "--out", model, "--profile", trace,
        ]) == 0
        capsys.readouterr()
        assert main(["stats", trace]) == 0
        out = capsys.readouterr().out
        assert "covered wall time" in out
        assert "self%" in out
        assert "cli.train" in out

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n", encoding="utf-8")
        assert main(["stats", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_stats_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["stats", str(empty)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_default_run_leaves_telemetry_disabled(self, mtx_file):
        from repro.obs import TELEMETRY

        assert main(["features", mtx_file]) == 0
        assert not TELEMETRY.enabled
        assert TELEMETRY.registry.names() == []


def test_train_with_jobs_and_cache(tmp_path, capsys):
    model = str(tmp_path / "selector.npz")
    cache_dir = str(tmp_path / "cache")
    args = [
        "train", "--size", "40", "--clusters", "8", "--trials", "3",
        "--arch", "volta", "--out", model,
        "--jobs", "2", "--cache-dir", cache_dir,
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "saved 8 labeled centroids" in first
    # Second run hits the artifact cache and trains the same selector.
    model2 = str(tmp_path / "selector2.npz")
    args[args.index(model)] = model2
    assert main(args) == 0
    second = capsys.readouterr().out
    assert first.split("(training accuracy")[1] == \
        second.split("(training accuracy")[1]


def test_cache_info_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    model = str(tmp_path / "m.npz")
    assert main([
        "train", "--size", "30", "--clusters", "5", "--trials", "2",
        "--out", model, "--cache-dir", cache_dir,
    ]) == 0
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries    : 1" in out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 1 cached campaign(s)" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_cache_without_dir_errors(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache", "info"]) == 2
    assert "no cache directory" in capsys.readouterr().err


def test_cache_dir_env_var(tmp_path, monkeypatch, capsys):
    cache_dir = str(tmp_path / "envcache")
    monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
    assert main(["cache", "info"]) == 0
    assert cache_dir in capsys.readouterr().out


class TestPredictDegradation:
    """Exit-code policy: 0 = recommendation printed (possibly a degraded
    CSR fallback), 1 = model problem under --strict, 2 = unusable input
    matrix."""

    def test_missing_model_falls_back_to_csr(self, mtx_file, capsys):
        assert main(["predict", mtx_file, "--model", "nope.npz"]) == 0
        out, err = capsys.readouterr()
        assert "recommended format: csr (degraded fallback)" in out
        assert "model unusable" in err

    def test_missing_model_strict_exits_1(self, mtx_file, capsys):
        assert main([
            "predict", mtx_file, "--model", "nope.npz", "--strict",
        ]) == 1
        err = capsys.readouterr().err
        assert "refusing degraded recommendation" in err

    def test_corrupt_model_falls_back(self, tmp_path, mtx_file, capsys):
        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(b"\x00\x01 definitely not a zip archive")
        assert main(["predict", mtx_file, "--model", str(bad)]) == 0
        out = capsys.readouterr().out
        assert "degraded fallback" in out

    def test_custom_fallback_format(self, mtx_file, capsys):
        assert main([
            "predict", mtx_file, "--model", "nope.npz",
            "--fallback-format", "hyb",
        ]) == 0
        assert "recommended format: hyb" in capsys.readouterr().out

    def test_unreadable_matrix_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.mtx"
        bad.write_text("this is not MatrixMarket\n", encoding="utf-8")
        assert main([
            "predict", str(bad), "--model", "irrelevant.npz",
        ]) == 2
        assert "unusable input matrix" in capsys.readouterr().err

    def test_missing_matrix_exits_2(self, tmp_path, mtx_file, capsys):
        assert main([
            "predict", str(tmp_path / "ghost.mtx"), "--model", "nope.npz",
        ]) == 2

    def test_forged_giant_header_exits_2_without_reading_body(
        self, tmp_path, capsys
    ):
        """A tiny file declaring a huge matrix dies at the size line."""
        forged = tmp_path / "forged.mtx"
        forged.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "999999999 999999999 999999999999\n"
            "1 1 1.0\n"
        )
        assert main([
            "predict", str(forged), "--model", "irrelevant.npz",
        ]) == 2
        err = capsys.readouterr().err
        assert "unusable input matrix" in err
        assert "exceed limit" in err

    def test_forged_giant_nnz_exits_2(self, tmp_path, capsys):
        forged = tmp_path / "forged.mtx"
        forged.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "10 10 999999999999\n"
            "1 1 1.0\n"
        )
        assert main([
            "predict", str(forged), "--model", "irrelevant.npz",
        ]) == 2
        assert "exceeds limit" in capsys.readouterr().err

    def test_size_limits_can_be_disabled(self, tmp_path, mtx_file, capsys):
        assert main([
            "predict", mtx_file, "--model", "nope.npz",
            "--max-dim", "0", "--max-nnz", "0",
        ]) == 0
        assert "recommended format:" in capsys.readouterr().out


class TestTieredPredict:
    @pytest.fixture(scope="class")
    def model(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("tiered-model") / "selector.npz")
        assert main([
            "train", "--size", "30", "--clusters", "5", "--trials", "3",
            "--out", path,
        ]) == 0
        return path

    def test_tiered_predict_prints_tier(self, model, mtx_file, capsys):
        assert main([
            "predict", mtx_file, "--model", model, "--tiered",
        ]) == 0
        out = capsys.readouterr().out
        assert "recommended format:" in out
        assert "(tier " in out

    def test_forced_escalation_matches_plain_predict(
        self, model, mtx_file, capsys
    ):
        """An unreachable margin makes --tiered the full pipeline."""
        assert main(["predict", mtx_file, "--model", model]) == 0
        plain = capsys.readouterr().out
        assert main([
            "predict", mtx_file, "--model", model,
            "--tiered", "--tier-margin", "1e18",
        ]) == 0
        tiered = capsys.readouterr().out
        assert "(tier 2," in tiered
        fmt = plain.split("recommended format:")[1].split()[0]
        centroid = plain.split("centroid #")[1].split()[0]
        assert f"recommended format: {fmt} " in tiered
        assert f"centroid #{centroid} " in tiered

    def test_degraded_model_ignores_tiered_flag(self, mtx_file, capsys):
        assert main([
            "predict", mtx_file, "--model", "nope.npz", "--tiered",
        ]) == 0
        out = capsys.readouterr().out
        assert "degraded fallback" in out
        assert "(tier " not in out

    def test_tiered_batch_records_tiers_and_jobs_invariant(
        self, model, tmp_path, capsys
    ):
        import json

        from repro.datasets import build_collection, export_collection

        directory = tmp_path / "coll"
        records = build_collection(seed=7, size=6)
        export_collection(
            records.records if hasattr(records, "records") else records,
            directory,
        )
        outputs = []
        for i, extra in enumerate([[], ["--jobs", "2"]]):
            out = tmp_path / f"tiered{i}.jsonl"
            assert main([
                "predict-batch", str(directory), "--model", model,
                "--tiered", "--out", str(out), *extra,
            ]) == 0
            captured = capsys.readouterr()
            assert "tiered:" in captured.err
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1], "output depends on --jobs"
        records = [json.loads(line) for line in outputs[0].splitlines()]
        assert all(r["tier"] in (1, 2) for r in records)
        assert all(r["source"] == "model" for r in records)

    def test_tiered_batch_quarantines_unreadable_matrix(
        self, model, tmp_path, capsys
    ):
        import json

        directory = tmp_path / "mixed"
        directory.mkdir()
        (directory / "bad.mtx").write_text("not MatrixMarket\n")
        (directory / "ok.mtx").write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 2\n1 1 1.0\n2 3 2.0\n"
        )
        assert main([
            "predict-batch", str(directory), "--model", model, "--tiered",
        ]) == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line) for line in captured.out.strip().splitlines()
        ]
        by_name = {r["name"]: r for r in records}
        assert by_name["bad"]["source"] == "fallback"
        assert "error" in by_name["bad"]
        assert by_name["ok"]["source"] == "model"
        assert "1 fallbacks" in captured.err
        # --strict turns the fallback into a failing exit code.
        assert main([
            "predict-batch", str(directory), "--model", model,
            "--tiered", "--strict",
        ]) == 1
        capsys.readouterr()


class TestChaosCommand:
    def test_chaos_completes_with_quarantine_and_verifies(self, capsys):
        rc = main([
            "chaos", "--size", "40", "--trials", "2", "--fail", "0.3",
            "--retries", "3", "--require-quarantine", "--verify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign degradation report" in out
        assert "quarantined :" in out
        assert "byte-identical to the fault-free run" in out

    def test_chaos_no_faults_fails_quarantine_gate(self, capsys):
        rc = main([
            "chaos", "--size", "10", "--trials", "2", "--fail", "0.0",
            "--corrupt", "0.0", "--require-quarantine",
        ])
        assert rc == 1
        assert "expected a non-empty quarantine" in capsys.readouterr().err


class TestAbortResume:
    def test_injected_abort_exits_3_then_resume_completes(
        self, tmp_path, monkeypatch, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        model = str(tmp_path / "selector.npz")
        base = [
            "train", "--size", "25", "--clusters", "5", "--trials", "2",
            "--out", model, "--cache-dir", cache_dir,
        ]
        monkeypatch.setenv("REPRO_FAULTS", "abort=40")
        assert main(base + ["--checkpoint-every", "10"]) == 3
        err = capsys.readouterr().err
        assert "campaign aborted" in err
        assert "--resume" in err

        monkeypatch.delenv("REPRO_FAULTS")
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "saved 5 labeled centroids" in out


class TestServeCommand:
    def test_serve_stream_answers_and_shuts_down(
        self, tmp_path, monkeypatch, capsys, mtx_file
    ):
        import io
        import json

        from repro.serving.drill import synthetic_frozen_selector

        model = str(tmp_path / "selector.npz")
        synthetic_frozen_selector(seed=2).save(model)
        with open(mtx_file) as fh:
            text = fh.read()
        lines = [
            json.dumps({"id": "a", "op": "predict", "mtx": text}),
            "{broken json",
            json.dumps({"id": "h", "op": "health"}),
            json.dumps({"id": "s", "op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--model", model]) == 0
        out = [json.loads(line)
               for line in capsys.readouterr().out.splitlines()]
        assert [r["status"] for r in out] == ["ok", "invalid", "ok", "ok"]
        assert out[0]["source"] == "model"
        assert out[1]["code"] == "bad_json"
        assert out[2]["model"]["degraded"] is False

    def test_serve_degraded_start_warns_and_falls_back(
        self, tmp_path, monkeypatch, capsys, mtx_file
    ):
        import io
        import json

        with open(mtx_file) as fh:
            text = fh.read()
        lines = [
            json.dumps({"id": "a", "op": "predict", "mtx": text}),
            json.dumps({"id": "s", "op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--model", str(tmp_path / "ghost.npz")]) == 0
        captured = capsys.readouterr()
        assert "starting degraded" in captured.err
        first = json.loads(captured.out.splitlines()[0])
        assert first["status"] == "fallback"
        assert first["reason"] == "model_unusable"
        assert first["format"] == "csr"


class TestChaosServe:
    def test_chaos_serve_drill_passes_and_verifies(self, capsys):
        rc = main([
            "chaos", "--target", "serve", "--requests", "200",
            "--fail", "0.3", "--corrupt", "0.05",
            "--require-breaker", "--verify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving drill" in out
        assert "every request answered, no crashes" in out
        assert "corrupt candidate written" in out
        assert "retrained candidate written" in out
        assert "identical to a fresh single-shot predict" in out

    def test_chaos_serve_fault_free_fails_breaker_gate(self, capsys):
        rc = main([
            "chaos", "--target", "serve", "--requests", "30",
            "--fail", "0.0", "--corrupt", "0.0", "--no-swap",
            "--require-breaker",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "expected the circuit breaker to open" in err


class TestPredictBatch:
    @pytest.fixture(scope="class")
    def model(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("model") / "selector.npz")
        assert main([
            "train", "--size", "30", "--clusters", "5", "--trials", "3",
            "--out", path,
        ]) == 0
        return path

    @pytest.fixture(scope="class")
    def collection(self, tmp_path_factory):
        from repro.datasets import build_collection, export_collection

        directory = tmp_path_factory.mktemp("coll") / "matrices"
        records = build_collection(seed=7, size=6)
        export_collection(
            records.records if hasattr(records, "records") else records,
            directory,
        )
        return directory

    def _records(self, out: str) -> list[dict]:
        import json

        return [json.loads(line) for line in out.strip().splitlines()]

    def test_batch_matches_single_predict_line_for_line(
        self, model, collection, capsys
    ):
        assert main([
            "predict-batch", str(collection), "--model", model,
        ]) == 0
        captured = capsys.readouterr()
        records = self._records(captured.out)
        assert "predict-batch: 6 matrices, 6 model answers" in captured.err
        mtx_files = sorted(collection.glob("*.mtx"))
        assert [r["name"] for r in records] == [p.stem for p in mtx_files]
        for record, path in zip(records, mtx_files):
            assert main(["predict", str(path), "--model", model]) == 0
            line = capsys.readouterr().out
            fmt = line.split("recommended format:")[1].split()[0]
            centroid = int(line.split("centroid #")[1].split()[0])
            assert record["format"] == fmt
            assert record["centroid"] == centroid
            assert record["source"] == "model"

    def test_jobs_and_shard_size_do_not_change_output(
        self, model, collection, tmp_path, capsys
    ):
        outputs = []
        for i, extra in enumerate(
            [[], ["--jobs", "2"], ["--shard-size", "2"],
             ["--jobs", "2", "--shard-size", "1"]]
        ):
            out = tmp_path / f"out{i}.jsonl"
            assert main([
                "predict-batch", str(collection), "--model", model,
                "--out", str(out), *extra,
            ]) == 0
            capsys.readouterr()
            outputs.append(out.read_bytes())
        assert all(o == outputs[0] for o in outputs[1:])

    def test_manifest_input_with_comments(
        self, model, collection, tmp_path, capsys
    ):
        names = sorted(p.name for p in collection.glob("*.mtx"))[:3]
        manifest = tmp_path / "matrices.txt"
        manifest.write_text(
            "# three matrices, relative to this manifest\n"
            + "\n".join(f"../{collection.name}/{n}" for n in names)
            + "\n"
        )
        (tmp_path / collection.name).symlink_to(collection)
        assert main([
            "predict-batch", str(manifest), "--model", model,
        ]) == 0
        records = self._records(capsys.readouterr().out)
        assert [r["name"] + ".mtx" for r in records] == names

    def test_missing_source_exits_2(self, model, capsys):
        assert main([
            "predict-batch", "/nonexistent/dir", "--model", model,
        ]) == 2
        assert "no such directory or manifest" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, model, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "predict-batch", str(empty), "--model", model,
        ]) == 2
        assert "no matrices found" in capsys.readouterr().err

    def test_unusable_model_falls_back_and_strict_fails(
        self, collection, tmp_path, capsys
    ):
        missing = str(tmp_path / "missing.npz")
        assert main([
            "predict-batch", str(collection), "--model", missing,
        ]) == 0
        records = self._records(capsys.readouterr().out)
        assert all(r["source"] == "fallback" for r in records)
        assert all(r["format"] == "csr" for r in records)
        assert main([
            "predict-batch", str(collection), "--model", missing,
            "--strict",
        ]) == 1
        capsys.readouterr()


class TestPredictBatchTracing:
    @pytest.fixture(scope="class")
    def model(self, tmp_path_factory):
        from repro.serving.drill import synthetic_frozen_selector

        path = str(tmp_path_factory.mktemp("tmodel") / "selector.npz")
        synthetic_frozen_selector(seed=3).save(path)
        return path

    @pytest.fixture(scope="class")
    def collection(self, tmp_path_factory):
        from repro.datasets import build_collection, export_collection

        directory = tmp_path_factory.mktemp("tcoll") / "matrices"
        records = build_collection(seed=9, size=8)
        export_collection(
            records.records if hasattr(records, "records") else records,
            directory,
        )
        return directory

    def test_profiled_parallel_run_stitches_one_trace(
        self, model, collection, tmp_path, capsys
    ):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main([
            "predict-batch", str(collection), "--model", model,
            "--jobs", "4", "--shard-size", "2",
            "--profile", str(trace),
        ]) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        (request,) = by_name["inference.request"]
        trace_id = request["args"]["trace"]
        shards = by_name["inference.shard"]
        assert sorted(s["args"]["shard"] for s in shards) == [0, 1, 2, 3]
        chunks = by_name["runtime.worker_chunk"]
        assert chunks
        # One trace: every worker chunk rode back under the request id.
        assert all(c["args"]["trace"] == trace_id for c in chunks)
        # Shard spans are descendants of the request root.
        ids = {request["args"]["id"]}
        changed = True
        while changed:
            changed = False
            for e in events:
                if e["args"]["parent"] in ids and e["args"]["id"] not in ids:
                    ids.add(e["args"]["id"])
                    changed = True
        assert all(s["args"]["id"] in ids for s in shards)

    def test_output_bytes_identical_with_and_without_profile(
        self, model, collection, tmp_path, capsys
    ):
        outputs = []
        for i, extra in enumerate([
            ["--jobs", "1"],
            ["--jobs", "4"],
            ["--jobs", "1", "--profile", str(tmp_path / "t1.jsonl")],
            ["--jobs", "4", "--profile", str(tmp_path / "t4.jsonl")],
        ]):
            out = tmp_path / f"out{i}.jsonl"
            assert main([
                "predict-batch", str(collection), "--model", model,
                "--out", str(out), *extra,
            ]) == 0
            capsys.readouterr()
            outputs.append(out.read_bytes())
        assert all(o == outputs[0] for o in outputs[1:])


class TestServeAccessLog:
    def test_serve_writes_access_log(
        self, tmp_path, monkeypatch, capsys, mtx_file
    ):
        import io
        import json

        from repro.obs import read_events
        from repro.serving.drill import synthetic_frozen_selector

        model = str(tmp_path / "selector.npz")
        synthetic_frozen_selector(seed=2).save(model)
        log_path = tmp_path / "access.jsonl"
        with open(mtx_file) as fh:
            text = fh.read()
        lines = [
            json.dumps({"id": "a", "op": "predict", "mtx": text}),
            "{broken json",
            json.dumps({"id": "s", "op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main([
            "serve", "--model", model, "--access-log", str(log_path),
        ]) == 0
        responses = [json.loads(line)
                     for line in capsys.readouterr().out.splitlines()]
        # Trace ids live in the access log only, never in responses.
        assert all("trace" not in r for r in responses)
        events = read_events(str(log_path))
        assert [e["status"] for e in events] == ["ok", "invalid", "ok"]
        assert events[0]["op"] == "predict"
        assert len(events[0]["trace"]) == 32
        assert events[0]["latency_ms"] > 0

    def test_serve_answers_metrics_and_healthz_ops(
        self, tmp_path, monkeypatch, capsys, mtx_file
    ):
        import io
        import json

        from repro.serving.drill import synthetic_frozen_selector

        model = str(tmp_path / "selector.npz")
        synthetic_frozen_selector(seed=2).save(model)
        with open(mtx_file) as fh:
            text = fh.read()
        lines = [
            json.dumps({"id": "a", "op": "predict", "mtx": text}),
            json.dumps({"id": "m", "op": "metrics"}),
            json.dumps({"id": "z", "op": "healthz"}),
            json.dumps({"id": "s", "op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--model", model]) == 0
        out = [json.loads(line)
               for line in capsys.readouterr().out.splitlines()]
        metrics = out[1]
        assert metrics["op"] == "metrics"
        assert metrics["quantiles_ms"]["p50"] is not None
        assert metrics["metrics"]["serving.latency_seconds"]["count"] >= 1
        assert "serving.requests" in metrics["metrics"]
        healthz = out[2]
        assert healthz["op"] == "healthz"
        assert healthz["state"] == "ok"
        assert healthz["breaker_state"] == "closed"


class TestObsCommands:
    def _write_metrics(self, tmp_path, p99=0.005):
        import json

        from repro.obs import Histogram, LATENCY_BUCKETS

        hist = Histogram("serving.latency_seconds", buckets=LATENCY_BUCKETS)
        for _ in range(100):
            hist.observe(p99)
        snap = {
            "serving.latency_seconds": hist.snapshot(),
            "serving.shed": {"type": "counter", "value": 1.0},
            "serving.admitted": {"type": "counter", "value": 99.0},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snap), encoding="utf-8")
        return str(path)

    def _write_slo(self, tmp_path, max_p99):
        import json

        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [{
            "name": "p99 latency",
            "metric": "serving.latency_seconds",
            "quantile": 0.99,
            "max": max_p99,
            "required": True,
        }]}), encoding="utf-8")
        return str(path)

    def test_report_passes_within_slo(self, tmp_path, capsys):
        rc = main([
            "obs", "report",
            "--slo", self._write_slo(tmp_path, max_p99=1.0),
            "--metrics", self._write_metrics(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[PASS] p99 latency" in out
        assert "1/1 SLOs met" in out

    def test_report_exits_nonzero_on_p99_violation(self, tmp_path, capsys):
        rc = main([
            "obs", "report",
            "--slo", self._write_slo(tmp_path, max_p99=1e-6),
            "--metrics", self._write_metrics(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[FAIL] p99 latency" in out
        assert "1 violated" in out

    def test_report_bad_slo_file_exits_2(self, tmp_path, capsys):
        rc = main([
            "obs", "report",
            "--slo", str(tmp_path / "missing.json"),
            "--metrics", self._write_metrics(tmp_path),
        ])
        assert rc == 2
        assert "cannot read SLO file" in capsys.readouterr().err

    def test_report_bad_metrics_file_exits_2(self, tmp_path, capsys):
        rc = main([
            "obs", "report",
            "--slo", self._write_slo(tmp_path, max_p99=1.0),
            "--metrics", str(tmp_path / "missing.json"),
        ])
        assert rc == 2
        assert "repro obs report" in capsys.readouterr().err

    def test_bench_writes_bench_obs_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_obs.json"
        rc = main([
            "obs", "bench", "--out", str(out_path),
            "--requests", "20", "--items", "16", "--jobs", "1",
            "--repeats", "2",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "BENCH_obs" in captured.out or str(out_path) in captured.out
        bench = json.loads(out_path.read_text())
        assert bench["bench"] == "serving_latency"
        serve = bench["serve"]
        assert serve["p50_ms"] <= serve["p95_ms"] <= serve["p99_ms"]
        assert serve["n_requests"] == 20
        assert "serving.request" in bench["stages"]
        assert "serving.latency_seconds" in bench["metrics"]

    def test_bench_gates_against_slo(self, tmp_path, capsys):
        rc = main([
            "obs", "bench", "--out", str(tmp_path / "b.json"),
            "--requests", "10", "--items", "8", "--jobs", "1",
            "--repeats", "1",
            "--slo", self._write_slo(tmp_path, max_p99=10.0),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[PASS]" in out

    def test_bench_slo_violation_fails(self, tmp_path, capsys):
        rc = main([
            "obs", "bench", "--out", str(tmp_path / "b.json"),
            "--requests", "10", "--items", "8", "--jobs", "1",
            "--repeats", "1",
            "--slo", self._write_slo(tmp_path, max_p99=1e-9),
        ])
        assert rc == 1
        assert "[FAIL]" in capsys.readouterr().out


class TestChaosMetricsOut:
    def test_chaos_serve_exports_counters_for_slo_report(
        self, tmp_path, capsys
    ):
        import json

        metrics_path = tmp_path / "chaos_metrics.json"
        rc = main([
            "chaos", "--target", "serve", "--requests", "80",
            "--burst", "16", "--fail", "0.3", "--no-swap",
            "--metrics-out", str(metrics_path),
        ])
        capsys.readouterr()
        assert rc == 0
        snap = json.loads(metrics_path.read_text())
        assert snap["serving.shed"]["value"] > 0
        assert snap["serving.admitted"]["value"] > 0
        assert "serving.breaker.open_seconds" in snap
        assert snap["serving.latency_seconds"]["count"] > 0
        assert any(k.startswith("serving.gateway.rejected") for k in snap)
        # The exported snapshot feeds straight into the SLO gate.
        assert main([
            "obs", "report",
            "--slo", "benchmarks/slo_permissive.json",
            "--metrics", str(metrics_path),
        ]) == 0
        assert "SLOs met" in capsys.readouterr().out
