"""Deterministic fault injection (repro.runtime.faults)."""

import pickle

import pytest

from repro.runtime.faults import (
    CampaignAbort,
    Corrupted,
    FaultInjector,
    FaultSpec,
    FaultyFunction,
    InjectedFault,
    injector_for,
    parse_fault_spec,
    reset_abort_counter,
    roll,
    spec_from_env,
)


def test_roll_is_deterministic_and_uniformish():
    a = roll(7, "fail", "banded_00001", 0)
    assert a == roll(7, "fail", "banded_00001", 0)
    assert 0.0 <= a < 1.0
    # Different coordinates give different rolls.
    assert a != roll(7, "fail", "banded_00001", 1)
    assert a != roll(7, "fail", "banded_00002", 0)
    assert a != roll(8, "fail", "banded_00001", 0)
    assert a != roll(7, "latency", "banded_00001", 0)
    # Roughly uniform over many keys.
    rolls = [roll(0, "fail", f"m{i}") for i in range(2000)]
    mean = sum(rolls) / len(rolls)
    assert 0.45 < mean < 0.55


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(corruption_rate=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(latency_seconds=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(abort_after=-1)
    assert not FaultSpec().active
    assert FaultSpec(failure_rate=0.1).active
    assert FaultSpec(abort_after=5).active


def test_parse_fault_spec_round_trip():
    spec = parse_fault_spec("fail=0.2, latency=0.1,delay=0.01,corrupt=0.05,"
                            "poison=0.5,seed=7,abort=40")
    assert spec == FaultSpec(
        failure_rate=0.2,
        latency_rate=0.1,
        latency_seconds=0.01,
        corruption_rate=0.05,
        poison_fraction=0.5,
        seed=7,
        abort_after=40,
    )


def test_parse_fault_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_fault_spec("fail")
    with pytest.raises(ValueError):
        parse_fault_spec("explode=0.5")


def test_spec_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert spec_from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "fail=0.25,seed=3")
    assert spec_from_env() == FaultSpec(failure_rate=0.25, seed=3)


def test_injector_for():
    assert injector_for(None) is None
    assert injector_for(FaultSpec()) is None  # inactive spec
    assert isinstance(injector_for(FaultSpec(failure_rate=0.1)), FaultInjector)


def test_failure_rate_zero_never_fails():
    injector = FaultInjector(FaultSpec())
    assert not any(injector.fails(f"m{i}", 0) for i in range(200))


def test_poison_names_fail_every_attempt():
    injector = FaultInjector(FaultSpec(failure_rate=0.3, seed=1))
    keys = [f"m{i}" for i in range(400)]
    poison = [k for k in keys if injector.is_poison(k)]
    assert poison, "expected some poison names at 30% failure"
    for key in poison[:10]:
        assert all(injector.fails(key, attempt) for attempt in range(6))
    # Transient failures clear up within a few rerolls.
    transient = [
        k for k in keys
        if injector.fails(k, 0) and not injector.is_poison(k)
    ]
    assert transient, "expected some transient failures"
    for key in transient:
        assert not all(injector.fails(key, attempt) for attempt in range(8))


def test_wrapped_function_injects_and_rerolls(monkeypatch):
    spec = FaultSpec(failure_rate=0.4, seed=2)
    injector = FaultInjector(spec)
    wrapped = injector.wrap(lambda item: item * 2, str)
    failing = next(
        k for k in range(100)
        if injector.fails(str(k), 0) and not injector.is_poison(str(k))
    )
    with pytest.raises(InjectedFault):
        wrapped(failing)
    # Some later attempt succeeds and computes the *real* value.
    for attempt in range(1, 8):
        if not injector.fails(str(failing), attempt):
            assert wrapped.for_attempt(attempt)(failing) == failing * 2
            break
    else:
        pytest.fail("transient failure never cleared")


def test_corruption_returns_detectable_marker():
    spec = FaultSpec(corruption_rate=0.5, seed=4)
    injector = FaultInjector(spec)
    wrapped = injector.wrap(lambda item: item + 1, str)
    corrupted_key = next(
        k for k in range(100) if injector.corrupts(str(k), 0)
    )
    out = wrapped(corrupted_key)
    assert isinstance(out, Corrupted)
    assert out.key == str(corrupted_key)
    clean_key = next(
        k for k in range(100) if not injector.corrupts(str(k), 0)
    )
    assert wrapped(clean_key) == clean_key + 1


def test_wrapper_survives_pickling():
    spec = FaultSpec(failure_rate=0.2, seed=5)
    wrapped = FaultyFunction(abs, str, spec, attempt=3)
    clone = pickle.loads(pickle.dumps(wrapped))
    assert clone.spec == spec
    assert clone.attempt == 3
    assert clone(-4) == 4 or isinstance(clone(-4), Corrupted)


def test_abort_after_raises_campaign_abort():
    reset_abort_counter()
    wrapped = FaultyFunction(abs, str, FaultSpec(abort_after=3))
    assert [wrapped(-i) for i in range(1, 4)] == [1, 2, 3]
    with pytest.raises(CampaignAbort):
        wrapped(-5)
    reset_abort_counter()
    assert wrapped(-6) == 6


def test_campaign_abort_is_not_an_exception():
    # The resilience guard absorbs Exception; a simulated crash must
    # never be absorbed into a retry.
    assert not issubclass(CampaignAbort, Exception)
