"""The chunked process-pool map: ordering, chunking, telemetry, errors."""

import pytest

from repro.obs import TELEMETRY
from repro.runtime.parallel import chunk_slices, parallel_map, resolve_jobs


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(5) == 5

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1


class TestChunkSlices:
    def test_covers_all_items_in_order(self):
        slices = chunk_slices(103, jobs=4)
        items = list(range(103))
        flat = [x for sl in slices for x in items[sl]]
        assert flat == items

    def test_explicit_chunk_size(self):
        slices = chunk_slices(10, jobs=2, chunk=3)
        assert [sl.stop - sl.start for sl in slices] == [3, 3, 3, 1]

    def test_empty(self):
        assert chunk_slices(0, jobs=4) == []


class TestParallelMap:
    def test_inline_path_matches_comprehension(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_matches_inline(self):
        items = list(range(37))
        serial = parallel_map(_square, items, jobs=1)
        parallel = parallel_map(_square, items, jobs=3, chunk=4)
        assert parallel == serial

    def test_order_preserved_regardless_of_chunking(self):
        items = list(range(23))
        for chunk in (1, 2, 7, 50):
            assert parallel_map(_square, items, jobs=2, chunk=chunk) == [
                x * x for x in items
            ]

    def test_worker_error_propagates(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_map(_fail_on_three, list(range(6)), jobs=2, chunk=2)

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_stays_inline(self):
        assert parallel_map(_square, [7], jobs=8) == [49]

    def test_chunk_telemetry_recorded(self):
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            parallel_map(_square, list(range(12)), jobs=2, chunk=3)
            assert TELEMETRY.registry.counter("runtime.chunks").value == 4
            assert TELEMETRY.registry.counter("runtime.items").value == 12
            hist = TELEMETRY.registry.get("runtime.chunk_seconds")
            assert hist is not None and hist.count == 4
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_inline_path_records_no_telemetry(self):
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            parallel_map(_square, list(range(12)), jobs=1)
            assert TELEMETRY.registry.get("runtime.chunks") is None
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()


def _traced_square(x):
    with TELEMETRY.span("work.square", x=x):
        TELEMETRY.inc("work.items")
        return x * x


class TestWorkerTraceStitching:
    def test_worker_subtrees_land_under_parallel_map_span(self):
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            parallel_map(_traced_square, list(range(12)), jobs=2, chunk=3)
            (root,) = TELEMETRY.tracer.roots
            assert root.name == "runtime.parallel_map"
            chunks = [c for c in root.children
                      if c.name == "runtime.worker_chunk"]
            assert len(chunks) == 4
            # Every chunk carries the same trace id as the parent span.
            trace_id = root.attrs["trace"]
            assert all(c.attrs["trace"] == trace_id for c in chunks)
            assert sorted(c.attrs["chunk"] for c in chunks) == [0, 1, 2, 3]
            # The per-item spans recorded inside workers came back too.
            leaves = [g for c in chunks for g in c.children]
            assert [g.name for g in leaves] == ["work.square"] * 12
            # Worker-side counters merged into the parent registry.
            assert TELEMETRY.registry.counter("work.items").value == 12
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_stitched_subtrees_are_anchored_into_parent_clock(self):
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            parallel_map(_traced_square, list(range(8)), jobs=2, chunk=4)
            (root,) = TELEMETRY.tracer.roots
            for chunk in root.children:
                if chunk.name != "runtime.worker_chunk":
                    continue
                # Worker clocks differ from the parent's; after anchoring
                # the subtree must sit inside the parent span's window.
                assert root.start <= chunk.start
                assert chunk.end <= root.end
                for leaf in chunk.children:
                    assert chunk.start <= leaf.start
                    assert leaf.end <= chunk.end
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_existing_request_context_is_propagated(self):
        from repro.obs import request_scope

        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            with request_scope("campaign.root", trace_id="f" * 32):
                parallel_map(_traced_square, list(range(6)), jobs=2, chunk=3)
            (root,) = TELEMETRY.tracer.roots
            assert root.name == "campaign.root"
            (pmap,) = root.children
            assert pmap.attrs["trace"] == "f" * 32
            assert all(
                c.attrs["trace"] == "f" * 32
                for c in pmap.children if c.name == "runtime.worker_chunk"
            )
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_results_identical_with_telemetry_on_and_off(self):
        items = list(range(29))
        off = parallel_map(_traced_square, items, jobs=3, chunk=4)
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            on = parallel_map(_traced_square, items, jobs=3, chunk=4)
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert on == off == [x * x for x in items]
