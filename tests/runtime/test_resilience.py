"""Retry, backoff, quarantine, timeouts (repro.runtime.resilience)."""

import time

import pytest

from repro.obs import TELEMETRY
from repro.runtime.faults import (
    CampaignAbort,
    FaultInjector,
    FaultSpec,
    reset_abort_counter,
)
from repro.runtime.resilience import (
    Quarantine,
    RetryPolicy,
    TaskFailure,
    resilient_map,
)


def _double(x):
    return x * 2


def _always_fail(x):
    raise RuntimeError("always fails")


class _FlakyOnce:
    """Fails each item's first attempt, succeeds afterwards (picklable)."""

    def __init__(self):
        self.attempt = 0

    def for_attempt(self, attempt):
        clone = _FlakyOnce()
        clone.attempt = attempt
        return clone

    def __call__(self, x):
        if self.attempt == 0:
            raise RuntimeError(f"flaky {x}")
        return x * 10


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0)

    def test_backoff_schedule_is_capped(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.3)
        assert policy.backoff(5) == pytest.approx(0.3)


class TestResilientMap:
    def test_all_success_is_a_plain_map(self):
        result = resilient_map(_double, [1, 2, 3])
        assert result.values == [2, 4, 6]
        assert result.ok == [True, True, True]
        assert result.complete
        assert result.retried == 0

    def test_flaky_tasks_recover_on_retry(self):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
        result = resilient_map(_FlakyOnce(), [1, 2, 3], policy=policy)
        assert result.values == [10, 20, 30]
        assert result.complete
        assert result.retried == 3

    def test_exhausted_retries_become_failures(self):
        def always_fails(x):
            raise ValueError(f"nope {x}")

        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        result = resilient_map(
            always_fails, [1, 2], keys=["a", "b"], policy=policy
        )
        assert result.values == [None, None]
        assert result.ok == [False, False]
        assert not result.complete
        assert result.n_failed == 2
        failure = result.failures[0]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "a"
        assert failure.kind == "error"
        assert failure.attempts == 3
        assert "nope 1" in failure.message

    def test_partial_failure_preserves_order(self):
        def odd_fails(x):
            if x % 2:
                raise RuntimeError("odd")
            return x

        policy = RetryPolicy(max_attempts=1)
        result = resilient_map(odd_fails, list(range(6)), policy=policy)
        assert result.values == [0, None, 2, None, 4, None]
        assert result.ok == [True, False, True, False, True, False]
        assert set(result.failures) == {1, 3, 5}

    def test_injected_faults_classified_and_rerolled(self):
        spec = FaultSpec(failure_rate=0.4, poison_fraction=0.3, seed=9)
        injector = FaultInjector(spec)
        items = list(range(60))
        keys = [str(i) for i in items]
        wrapped = injector.wrap(_double, str)
        policy = RetryPolicy(max_attempts=4, backoff_base=0.0)
        result = resilient_map(wrapped, items, keys=keys, policy=policy)
        poison = {k for k in keys if injector.is_poison(k)}
        assert poison, "fixture should include poison names"
        failed_keys = {f.key for f in result.failures.values()}
        # Poison names always exhaust retries; unlucky transients may too.
        assert poison <= failed_keys
        for failure in result.failures.values():
            assert failure.kind == "injected"
            assert failure.attempts == 4
        # Every survivor computed the true value.
        for i, (value, ok) in enumerate(zip(result.values, result.ok)):
            if ok:
                assert value == items[i] * 2

    def test_validator_rejections_are_retried_then_quarantined(self):
        def validate(out):
            return "too big" if out > 4 else None

        policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
        result = resilient_map(
            _double, [1, 2, 3], policy=policy, validate=validate
        )
        assert result.values[:2] == [2, 4]
        assert result.ok == [True, True, False]
        assert result.failures[2].kind == "invalid"
        assert "too big" in result.failures[2].message

    def test_corrupted_results_detected(self):
        spec = FaultSpec(corruption_rate=0.99, seed=1)
        wrapped = FaultInjector(spec).wrap(_double, str)
        policy = RetryPolicy(max_attempts=1)
        result = resilient_map(wrapped, [1], keys=["m"], policy=policy)
        assert result.failures[0].kind == "corrupt"

    def test_campaign_abort_propagates(self):
        reset_abort_counter()
        wrapped = FaultInjector(FaultSpec(abort_after=2)).wrap(_double, str)
        with pytest.raises(CampaignAbort):
            resilient_map(wrapped, [1, 2, 3, 4], policy=RetryPolicy())
        reset_abort_counter()

    def test_key_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            resilient_map(_double, [1, 2], keys=["only-one"])

    def test_task_timeout_converts_hang_to_failure(self):
        # Deterministic assertions only: the SIGALRM guard interrupts the
        # hang at task_timeout, and the injected fake sleeper records the
        # backoff schedule instead of a wall-clock upper bound (which was
        # flaky on loaded CI runners).
        def slow_if_two(x):
            if x == 2:
                time.sleep(5.0)
            return x

        slept: list[float] = []
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, task_timeout=0.1
        )
        result = resilient_map(
            slow_if_two, [1, 2, 3], policy=policy, sleep=slept.append
        )
        assert result.ok == [True, False, True]
        assert result.failures[1].kind == "timeout"
        assert slept == []  # backoff_base=0.0 never sleeps

    def test_backoff_schedule_uses_injected_sleeper(self):
        slept: list[float] = []
        policy = RetryPolicy(max_attempts=3, backoff_base=0.25, backoff_factor=2.0)
        result = resilient_map(_always_fail, [1], policy=policy, sleep=slept.append)
        assert result.ok == [False]
        # One backoff before each retry round: base, then base * factor.
        assert slept == [policy.backoff(0), policy.backoff(1)] == [0.25, 0.5]

    def test_parallel_jobs_match_inline(self):
        spec = FaultSpec(failure_rate=0.3, seed=6)
        items = list(range(40))
        keys = [str(i) for i in items]
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)

        def run(jobs):
            wrapped = FaultInjector(spec).wrap(_double, str)
            return resilient_map(
                wrapped, items, keys=keys, jobs=jobs, policy=policy
            )

        inline, pooled = run(1), run(2)
        assert inline.values == pooled.values
        assert inline.ok == pooled.ok
        assert set(inline.failures) == set(pooled.failures)


class TestQuarantine:
    def test_report_and_names(self):
        quarantine = Quarantine()
        assert not quarantine
        assert quarantine.report() == "quarantine: empty"
        failure = TaskFailure(
            key="banded_00001", kind="injected", attempts=3, message="boom"
        )
        quarantine.add("banded_00001", "stats", failure)
        quarantine.add(
            "banded_00001",
            "benchmark:volta",
            TaskFailure(
                key="volta:banded_00001", kind="timeout", attempts=3,
                message="slow",
            ),
        )
        assert quarantine
        assert len(quarantine) == 1  # unique names
        assert quarantine.names == ["banded_00001"]
        report = quarantine.report()
        assert "stats/injected" in report
        assert "benchmark:volta/timeout" in report

    def test_telemetry_counters(self):
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            quarantine = Quarantine()
            quarantine.add(
                "m1", "stats",
                TaskFailure(key="m1", kind="error", attempts=2, message="x"),
            )
            registry = TELEMETRY.registry
            assert registry.counter("resilience.quarantined_total").value == 1
            assert registry.gauge("resilience.quarantined").value == 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
