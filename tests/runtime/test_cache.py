"""Persistent artifact cache: keying, roundtrips, invalidation, telemetry."""

import numpy as np
import pytest

from repro.obs import TELEMETRY
from repro.runtime.cache import (
    ArtifactCache,
    artifact_key,
    code_fingerprint,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture
def counters():
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield TELEMETRY.registry
    TELEMETRY.disable()
    TELEMETRY.reset()


def _counter(registry, name):
    c = registry.get(name)
    return 0 if c is None else c.value


class TestKeying:
    def test_stable_for_equal_fields(self):
        a = artifact_key({"seed": 1, "size": 10}, fingerprint="f")
        b = artifact_key({"size": 10, "seed": 1}, fingerprint="f")
        assert a == b

    def test_config_fields_change_key(self):
        a = artifact_key({"seed": 1}, fingerprint="f")
        b = artifact_key({"seed": 2}, fingerprint="f")
        assert a != b

    def test_code_fingerprint_changes_key(self):
        a = artifact_key({"seed": 1}, fingerprint="aaa")
        b = artifact_key({"seed": 1}, fingerprint="bbb")
        assert a != b

    def test_fingerprint_tracks_module_sources(self):
        full = code_fingerprint()
        subset = code_fingerprint(("repro.features.stats",))
        assert full != subset
        assert subset == code_fingerprint(("repro.features.stats",))


class TestRoundtrip:
    def test_store_then_load(self, cache, counters):
        payload = {"x": np.arange(5), "y": [1, 2, 3]}
        cache.store("k1", payload, meta={"n_matrices": 5})
        loaded = cache.load("k1")
        np.testing.assert_array_equal(loaded["x"], payload["x"])
        assert loaded["y"] == [1, 2, 3]
        assert _counter(counters, "runtime.cache.stores") == 1
        assert _counter(counters, "runtime.cache.hits") == 1

    def test_miss_counts(self, cache, counters):
        assert cache.load("absent") is None
        assert _counter(counters, "runtime.cache.misses") == 1
        assert _counter(counters, "runtime.cache.hits") == 0

    def test_corrupt_entry_is_a_miss(self, cache, counters):
        cache.store("k1", {"ok": True})
        path = cache.entry_dir("k1") / "artifact.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.load("k1") is None
        assert _counter(counters, "runtime.cache.errors") == 1
        assert _counter(counters, "runtime.cache.misses") == 1

    def test_contains(self, cache):
        assert not cache.contains("k")
        cache.store("k", 42)
        assert cache.contains("k")


class TestManagement:
    def test_entries_expose_meta(self, cache):
        cache.store("k1", [1], meta={"n_matrices": 7})
        entries = list(cache.entries())
        assert len(entries) == 1
        assert entries[0]["key"] == "k1"
        assert entries[0]["n_matrices"] == 7
        assert entries[0]["bytes"] > 0

    def test_clear_removes_everything(self, cache):
        cache.store("k1", [1])
        cache.store("k2", [2])
        assert cache.clear() == 2
        assert not cache.contains("k1")
        assert list(cache.entries()) == []

    def test_clear_on_missing_root(self, tmp_path):
        assert ArtifactCache(tmp_path / "never-created").clear() == 0

    def test_info_summarises(self, cache):
        cache.store("k1", list(range(100)))
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["keys"] == ["k1"]
