"""Extra noise-model properties and simulator parameter coverage."""

import numpy as np
import pytest

from repro.gpu import GPUSimulator, VOLTA
from repro.gpu.noise import DEFAULT_SIGMA, noisy_trials


def test_sigma_controls_spread(rng):
    tight = noisy_trials(1.0, 5000, np.random.default_rng(0), sigma=0.01)
    wide = noisy_trials(1.0, 5000, np.random.default_rng(0), sigma=0.2)
    assert wide.std() > 5 * tight.std()


def test_zero_ish_sigma_near_deterministic(rng):
    t = noisy_trials(1.0, 100, rng, sigma=1e-9)
    np.testing.assert_allclose(t, 1.0, rtol=1e-6)


def test_default_sigma_reasonable():
    assert 0.0 < DEFAULT_SIGMA < 0.2


def test_simulator_sigma_parameter(rng):
    from repro.datasets.generators import banded

    m = banded(rng, n=200, bandwidth=3)
    noisy = GPUSimulator(VOLTA, trials=1, sigma=0.3, seed=1).benchmark("m", m)
    calm = GPUSimulator(VOLTA, trials=1, sigma=1e-9, seed=1).benchmark("m", m)
    # Same kernel model underneath: times agree only to within noise.
    for fmt in calm.times:
        ratio = noisy.times[fmt] / calm.times[fmt]
        assert 0.3 < ratio < 3.0
        assert ratio != pytest.approx(1.0, abs=1e-6)


def test_labels_stable_under_trial_count(rng):
    """Averaging many trials converges labels to the noiseless argmin."""
    from repro.datasets.generators import stencil_2d
    from repro.features.stats import compute_stats
    from repro.gpu.kernels import best_format, predict_times

    m = stencil_2d(rng, nx=40, ny=40)
    stats = compute_stats(m)
    noiseless_best = best_format(predict_times(stats, VOLTA))
    res = GPUSimulator(VOLTA, trials=500, seed=3).benchmark("m", m)
    assert res.best_format == noiseless_best
