"""GPU kernel cost models: mechanisms the paper describes must hold."""

import numpy as np
import pytest

from repro.datasets.generators import (
    arrow,
    banded,
    power_law_rows,
    random_uniform,
    stencil_2d,
)
from repro.features.stats import compute_stats
from repro.gpu import PASCAL, TURING, VOLTA
from repro.gpu.kernels import (
    MODELED_FORMATS,
    FormatInfeasibleError,
    KernelModel,
    predict_times,
    time_csr,
    time_ell,
    time_hyb,
)


def test_all_times_positive(rng):
    s = compute_stats(random_uniform(rng, nrows=1000, density=0.01))
    for arch in (PASCAL, VOLTA, TURING):
        times = predict_times(s, arch)
        assert set(times) == set(MODELED_FORMATS)
        assert all(t > 0 for t in times.values())


def test_noiseless_model_is_deterministic(rng):
    s = compute_stats(banded(rng, n=500, bandwidth=4))
    t1 = predict_times(s, PASCAL)
    t2 = predict_times(s, PASCAL)
    assert t1 == t2


def test_faster_memory_means_faster_spmv(rng):
    # Volta's memory system dominates Pascal's: every kernel is faster.
    s = compute_stats(random_uniform(rng, nrows=3000, density=0.01))
    tp = predict_times(s, PASCAL)
    tv = predict_times(s, VOLTA)
    for fmt in tp:
        assert tv[fmt] < tp[fmt]


def test_ell_wins_uniform_rows(rng):
    s = compute_stats(stencil_2d(rng, nx=48, ny=48, points=5))
    for arch in (PASCAL, VOLTA, TURING):
        times = predict_times(s, arch)
        assert min(times, key=times.get) == "ell"


def test_csr_wins_scattered_long_rows(rng):
    s = compute_stats(random_uniform(rng, nrows=2000, density=0.02))
    times = predict_times(s, VOLTA)
    assert min(times, key=times.get) == "csr"


def test_arrow_is_ell_infeasible_and_csr_catastrophic(rng):
    from repro.gpu.kernels import InfeasibleFormat

    s = compute_stats(arrow(rng, n=4000, band=2))
    model = KernelModel(PASCAL)
    assert not model.feasible("ell", s)
    with pytest.raises(FormatInfeasibleError):
        time_ell(s, PASCAL)
    times = predict_times(s, PASCAL)
    # Infeasibility is a typed marker, not a silent omission.
    assert isinstance(times["ell"], InfeasibleFormat)
    assert not times["ell"]
    assert times["ell"].fmt == "ell" and times["ell"].op == "spmv"
    # The paper's mawi anecdote: CSR is far slower than HYB here.
    assert times["csr"] > 2.0 * times["hyb"]


def test_skew_hurts_csr_more_than_coo(rng):
    uniform = compute_stats(banded(rng, n=3000, bandwidth=5, density=1.0))
    skewed = compute_stats(
        power_law_rows(rng, nrows=3000, avg_nnz_per_row=11, alpha=1.7,
                       max_over_mean=2.9)
    )
    # Normalise by nnz: per-entry CSR cost grows with skew, COO's doesn't.
    csr_ratio = (time_csr(skewed, PASCAL) / skewed.nnz) / (
        time_csr(uniform, PASCAL) / uniform.nnz
    )
    from repro.gpu.kernels import time_coo

    coo_ratio = (time_coo(skewed, PASCAL) / skewed.nnz) / (
        time_coo(uniform, PASCAL) / uniform.nnz
    )
    assert csr_ratio > coo_ratio


def test_capacity_exclusion():
    # A matrix whose ELL structure exceeds Pascal's scaled capacity but
    # fits Turing's.
    import dataclasses

    tiny_pascal = dataclasses.replace(PASCAL, capacity_bytes=1000)
    rng = np.random.default_rng(0)
    s = compute_stats(banded(rng, n=500, bandwidth=3))
    assert KernelModel(TURING).feasible("ell", s)
    assert not KernelModel(tiny_pascal).feasible("ell", s)


def test_hyb_time_between_parts(rng):
    s = compute_stats(
        power_law_rows(rng, nrows=2000, avg_nnz_per_row=8, alpha=1.8,
                       max_over_mean=2.5)
    )
    t = time_hyb(s, PASCAL)
    # HYB must cost at least one launch + its ELL part alone.
    assert t > PASCAL.launch_overhead + PASCAL.hyb_extra_overhead


def test_turing_coo_cheaper_than_volta_coo_relative_to_csr(rng):
    s = compute_stats(random_uniform(rng, nrows=3000, density=0.001))
    tt = predict_times(s, TURING)
    tv = predict_times(s, VOLTA)
    assert tt["coo"] / tt["csr"] < tv["coo"] / tv["csr"]


def test_empty_matrix_times_are_overhead_only():
    from repro.formats import COOMatrix

    s = compute_stats(COOMatrix.empty((64, 64)))
    times = predict_times(s, VOLTA)
    for fmt, t in times.items():
        assert t >= VOLTA.launch_overhead
