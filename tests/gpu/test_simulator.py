"""GPU simulator: noise model, benchmarking protocol, label distributions."""

import numpy as np
import pytest

from repro.datasets.generators import arrow, banded
from repro.features.stats import compute_stats
from repro.gpu import GPUSimulator, PASCAL, TURING, VOLTA
from repro.gpu.noise import averaged_measurement, noisy_trials
from repro.gpu.simulator import (
    CONVERSION_COST_RELATIVE,
    BenchmarkResult,
    label_distribution,
)


class TestNoise:
    def test_trials_shape_and_positivity(self, rng):
        t = noisy_trials(1e-5, 50, rng)
        assert t.shape == (50,)
        assert np.all(t > 0)

    def test_mean_unbiased(self, rng):
        t = noisy_trials(2e-6, 200_000, rng, sigma=0.05)
        assert t.mean() == pytest.approx(2e-6, rel=1e-3)

    def test_more_trials_tighter_average(self):
        singles = [
            averaged_measurement(1.0, 1, np.random.default_rng(i))
            for i in range(300)
        ]
        averaged = [
            averaged_measurement(1.0, 100, np.random.default_rng(i))
            for i in range(300)
        ]
        assert np.std(averaged) < np.std(singles) / 5

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            noisy_trials(-1.0, 10, rng)
        with pytest.raises(ValueError):
            noisy_trials(1.0, 0, rng)


class TestSimulator:
    def test_benchmark_single_matrix(self, rng):
        sim = GPUSimulator(VOLTA, trials=10)
        m = banded(rng, n=300, bandwidth=3)
        res = sim.benchmark("m0", m)
        assert res.runnable
        assert set(res.times) == {"coo", "csr", "ell", "hyb"}
        assert res.best_format in res.times

    def test_measurements_deterministic_given_seed(self, rng):
        m = banded(rng, n=300, bandwidth=3)
        r1 = GPUSimulator(VOLTA, trials=10, seed=4).benchmark("m0", m)
        r2 = GPUSimulator(VOLTA, trials=10, seed=4).benchmark("m0", m)
        assert r1.times == r2.times

    def test_measurements_name_keyed(self, rng):
        # Different names draw different noise streams.
        m = banded(rng, n=300, bandwidth=3)
        sim = GPUSimulator(VOLTA, trials=3, seed=4)
        assert sim.benchmark("a", m).times != sim.benchmark("b", m).times

    def test_subset_benchmarking_consistent(self, tiny_collection):
        sim = GPUSimulator(TURING, trials=5, seed=1)
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        full = sim.benchmark_collection(tiny_collection.records, stats)
        partial = sim.benchmark_collection(
            tiny_collection.records[:5], stats[:5]
        )
        for a, b in zip(full[:5], partial):
            assert a.times == b.times

    def test_excluded_matrix_not_runnable(self, rng):
        m = arrow(rng, n=2000, band=1)
        res = GPUSimulator(PASCAL, trials=5).benchmark("arrow", m)
        assert not res.runnable
        assert "ell" in res.excluded
        assert "csr" in res.times  # the other formats still run

    def test_speedup_over(self, rng):
        m = banded(rng, n=300, bandwidth=3)
        res = GPUSimulator(VOLTA, trials=10).benchmark("m0", m)
        assert res.speedup_over(res.best_format) == pytest.approx(1.0)
        for fmt in res.times:
            assert res.speedup_over(fmt) >= 1.0

    def test_stats_records_mismatch_rejected(self, tiny_collection):
        sim = GPUSimulator(VOLTA, trials=2)
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        with pytest.raises(ValueError):
            sim.benchmark_collection(tiny_collection.records, stats[:-1])

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            GPUSimulator(VOLTA, trials=0)


class TestLabelDistribution:
    def test_distribution_counts_runnable_only(self):
        results = [
            BenchmarkResult("a", "volta", {"csr": 1.0, "coo": 2.0}),
            BenchmarkResult("b", "volta", {"csr": 2.0, "coo": 1.0}),
            BenchmarkResult(
                "c", "volta", {"csr": 1.0}, excluded={"ell": "too big"}
            ),
        ]
        dist = label_distribution(results)
        assert dist["csr"] == 1 and dist["coo"] == 1
        assert sum(dist.values()) == 2

    def test_collection_is_csr_majority_everywhere(self, tiny_data):
        for arch in tiny_data.arch_names:
            dist = tiny_data.datasets[arch].class_distribution()
            assert max(dist, key=dist.get) == "csr"

    def test_turing_coo_at_least_volta(self, tiny_data):
        # The full-size relation is turing >> pascal > volta (Table 3);
        # on the tiny test collection only the strong end is stable.
        coo = {
            a: tiny_data.datasets[a].class_distribution()["coo"]
            for a in tiny_data.arch_names
        }
        assert coo["turing"] >= coo["volta"]


class TestCampaignCost:
    def test_conversion_constants_match_table8(self):
        assert CONVERSION_COST_RELATIVE["coo"] == 9.0
        assert CONVERSION_COST_RELATIVE["ell"] == 102.0
        assert CONVERSION_COST_RELATIVE["hyb"] == 147.0

    def test_campaign_seconds_scales_with_reads(self, tiny_collection):
        sim = GPUSimulator(VOLTA, trials=10, seed=0)
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        results = sim.benchmark_collection(tiny_collection.records, stats)
        base = sim.campaign_seconds(results, read_seconds=0.0)
        with_reads = sim.campaign_seconds(results, read_seconds=5.0)
        runnable_csr = sum(1 for r in results if "csr" in r.times)
        assert with_reads == pytest.approx(base + 5.0 * runnable_csr)

    def test_vectorised_campaign_seconds_pins_reference_loop(
        self, tiny_collection
    ):
        # The reference implementation this replaced: per-result Python
        # loops over times and conversion constants.
        def reference(sim, results, read_seconds):
            total = 0.0
            for res in results:
                if "csr" not in res.times:
                    continue
                csr_time = res.times["csr"]
                total += read_seconds
                for fmt, t in res.times.items():
                    total += CONVERSION_COST_RELATIVE[fmt] * csr_time
                    total += sim.trials * t
            return total

        sim = GPUSimulator(TURING, trials=25, seed=3)
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        results = sim.benchmark_collection(tiny_collection.records, stats)
        assert sim.campaign_seconds(results) == pytest.approx(
            reference(sim, results, 5.0), rel=1e-12
        )
        assert sim.campaign_seconds(results, read_seconds=0.25) == pytest.approx(
            reference(sim, results, 0.25), rel=1e-12
        )

    def test_campaign_seconds_empty_and_excluded(self):
        sim = GPUSimulator(VOLTA, trials=10)
        assert sim.campaign_seconds([]) == 0.0
        no_csr = BenchmarkResult(
            name="x", arch="volta", times={"coo": 1e-6},
            excluded={"csr": "too big"},
        )
        assert sim.campaign_seconds([no_csr]) == 0.0


class TestParallelSeams:
    """Name-keyed noise: the property that makes benchmarking order- and
    partition-independent, which the process-pool fan-out relies on."""

    def test_subset_results_equal_full_run(self, tiny_collection):
        sim = GPUSimulator(PASCAL, trials=6, seed=42)
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        full = sim.benchmark_collection(tiny_collection.records, stats)
        subset_idx = [11, 3, 19, 0]  # scrambled order on purpose
        subset = [
            sim.benchmark_stats(
                tiny_collection.records[i].name, stats[i]
            )
            for i in subset_idx
        ]
        for res, i in zip(subset, subset_idx):
            assert res.times == full[i].times
            assert res.excluded == full[i].excluded

    def test_parallel_benchmark_collection_identical(self, tiny_collection):
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        serial = GPUSimulator(VOLTA, trials=5, seed=1).benchmark_collection(
            tiny_collection.records, stats, jobs=1
        )
        parallel = GPUSimulator(VOLTA, trials=5, seed=1).benchmark_collection(
            tiny_collection.records, stats, jobs=2
        )
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            assert a.times == b.times
            assert a.excluded == b.excluded
