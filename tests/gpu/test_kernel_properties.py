"""Hypothesis property suite for the kernel cost layer.

Four families of properties over generated matrices:

- every feasible ``time_*`` / ``time_*_spmm`` / ``time_*_spgemm`` output
  is positive and finite, on every architecture;
- costs are monotone non-decreasing in ``nnz`` (asserted on the banded
  family, whose uniform rows keep the CSR divergence term constant — the
  regime where monotonicity is a theorem of the model) and in the dense
  width ``k`` (a theorem for *any* matrix: every k-term scales or is
  constant, so it is asserted on arbitrary random matrices);
- SpMM at ``k=1`` degenerates to the SpMV model *bit-exactly*;
- ``FormatInfeasibleError`` fires exactly when the ELL/HYB structural
  bounds (and, for SpMM, the dense-residency bound) say so.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import HYPOTHESIS_SCALE

from repro.datasets.generators import banded
from repro.features.stats import compute_stats
from repro.formats.coo import COOMatrix
from repro.gpu.arch import ARCHITECTURES, PASCAL, VOLTA
from repro.gpu.kernels import (
    MODELED_FORMATS,
    VALUE_BYTES,
    FormatInfeasibleError,
    InfeasibleFormat,
    KernelModel,
    NoFeasibleFormatError,
    OpSpec,
    best_format,
    feasible_times,
    parse_op,
    predict_times,
    time_coo,
    time_coo_spmm,
    time_csr,
    time_csr_spmm,
    time_ell,
    time_ell_spmm,
    time_hyb,
    time_hyb_spmm,
)

SPMV_KERNELS = {
    "csr": time_csr,
    "coo": time_coo,
    "ell": time_ell,
    "hyb": time_hyb,
}
SPMM_KERNELS = {
    "csr": time_csr_spmm,
    "coo": time_coo_spmm,
    "ell": time_ell_spmm,
    "hyb": time_hyb_spmm,
}


def random_matrix(seed: int, nrows: int, ncols: int, density: float) -> COOMatrix:
    rng = np.random.default_rng(seed)
    nnz = max(1, int(nrows * ncols * density))
    flat = rng.choice(nrows * ncols, size=min(nnz, nrows * ncols), replace=False)
    rows, cols = np.divmod(flat, ncols)
    vals = rng.normal(size=flat.shape[0])
    vals = np.where(np.abs(vals) < 1e-3, 1e-3, vals)
    return COOMatrix(
        (nrows, ncols), rows.astype(np.int64), cols.astype(np.int64), vals
    )


matrix_params = st.tuples(
    st.integers(0, 2**31 - 1),  # seed
    st.integers(4, 60),  # nrows
    st.integers(4, 60),  # ncols
    st.floats(0.02, 0.5),  # density
)

ops = st.sampled_from(["spmv", "spmm:2", "spmm:8", "spmm:32", "spgemm"])

widths = st.tuples(st.integers(1, 64), st.integers(1, 64))


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params, op=ops)
def test_all_feasible_times_positive_finite(params, op):
    seed, nrows, ncols, density = params
    s = compute_stats(random_matrix(seed, nrows, ncols, density))
    for arch in ARCHITECTURES.values():
        model = KernelModel(arch)
        times = predict_times(s, arch, op)
        assert set(times) == set(MODELED_FORMATS)
        for fmt, t in times.items():
            if isinstance(t, InfeasibleFormat):
                assert not model.feasible(fmt, s, op)
                continue
            assert model.feasible(fmt, s, op)
            assert t > 0.0 and math.isfinite(t), (fmt, op, t)


@settings(max_examples=40 * HYPOTHESIS_SCALE, deadline=None)
@given(
    n=st.integers(64, 1024),
    bw=st.integers(1, 10),
    extra=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_times_monotone_in_nnz_on_uniform_rows(n, bw, extra, seed):
    """Widening a band strictly adds entries; no cost may go down.

    ``check_feasible=False`` isolates the cost surface from the
    capacity cliffs (feasibility flips are tested separately).
    """
    rng = np.random.default_rng(seed)
    small = compute_stats(banded(rng, n=n, bandwidth=bw))
    rng = np.random.default_rng(seed)
    large = compute_stats(banded(rng, n=n, bandwidth=bw + extra))
    assert large.nnz > small.nnz
    for arch in (PASCAL, VOLTA):
        for fmt in ("csr", "coo", "ell", "hyb"):
            t_small = SPMV_KERNELS[fmt](small, arch, **(
                {} if fmt in ("csr", "coo") else {"check_feasible": False}
            ))
            t_large = SPMV_KERNELS[fmt](large, arch, **(
                {} if fmt in ("csr", "coo") else {"check_feasible": False}
            ))
            assert t_large >= t_small, (fmt, arch.name)
            for k in (2, 32):
                m_small = SPMM_KERNELS[fmt](
                    small, arch, k, check_feasible=False
                )
                m_large = SPMM_KERNELS[fmt](
                    large, arch, k, check_feasible=False
                )
                assert m_large >= m_small, (fmt, arch.name, k)


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params, ks=widths)
def test_spmm_monotone_in_dense_width(params, ks):
    seed, nrows, ncols, density = params
    k_lo, k_hi = sorted(ks)
    s = compute_stats(random_matrix(seed, nrows, ncols, density))
    for arch in ARCHITECTURES.values():
        for fmt in MODELED_FORMATS:
            t_lo = SPMM_KERNELS[fmt](s, arch, k_lo, check_feasible=False)
            t_hi = SPMM_KERNELS[fmt](s, arch, k_hi, check_feasible=False)
            assert t_hi >= t_lo, (fmt, arch.name, k_lo, k_hi)


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_spmm_k1_degenerates_to_spmv_bit_exactly(params):
    seed, nrows, ncols, density = params
    s = compute_stats(random_matrix(seed, nrows, ncols, density))
    for arch in ARCHITECTURES.values():
        for fmt in MODELED_FORMATS:
            spmv = SPMV_KERNELS[fmt](s, arch, **(
                {} if fmt in ("csr", "coo") else {"check_feasible": False}
            ))
            spmm1 = SPMM_KERNELS[fmt](s, arch, 1, check_feasible=False)
            assert spmv == spmm1, (fmt, arch.name, spmv, spmm1)


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_infeasibility_fires_exactly_on_the_bounds(params):
    seed, nrows, ncols, density = params
    s = compute_stats(random_matrix(seed, nrows, ncols, density))
    for arch in ARCHITECTURES.values():
        model = KernelModel(arch)
        ell_ok = s.ell_convertible() and s.bytes_ell() <= arch.capacity_bytes
        assert model.feasible("ell", s) == ell_ok
        hyb_ok = s.bytes_hyb() <= arch.capacity_bytes
        assert model.feasible("hyb", s) == hyb_ok
        assert model.feasible("csr", s) and model.feasible("coo", s)
        # SpMM adds the dense-residency bound on top of the structural one.
        for k in (8, 64):
            dense = (s.nrows + s.ncols) * k * VALUE_BYTES
            assert model.feasible("csr", s, f"spmm:{k}") == (
                s.bytes_csr() + dense <= arch.capacity_bytes
            )
            assert model.feasible("ell", s, f"spmm:{k}") == (
                ell_ok and s.bytes_ell() + dense <= arch.capacity_bytes
            )


def test_parse_op_accepts_and_rejects():
    assert parse_op("spmv") == OpSpec("spmv", 1)
    assert parse_op("spmm:64") == OpSpec("spmm", 64)
    assert parse_op("spmm").k >= 1
    assert parse_op("spgemm").canonical == "spgemm"
    spec = OpSpec("spmm", 8)
    assert parse_op(spec) is spec
    for bad in ("bogus", "spmm:0", "spmm:x", "spmv:2", "spgemm:4"):
        with pytest.raises(ValueError):
            parse_op(bad)
    with pytest.raises(ValueError):
        OpSpec("spmv", 2)


class TestAllInfeasible:
    """A matrix no format can run must yield a typed error, not an empty argmin."""

    @staticmethod
    def _everything_infeasible():
        import dataclasses

        rng = np.random.default_rng(5)
        s = compute_stats(banded(rng, n=2000, bandwidth=4))
        # Capacity below the dense operands of a wide SpMM: every format
        # carries the marker.
        tiny = dataclasses.replace(PASCAL, capacity_bytes=10_000)
        return s, tiny

    def test_predict_times_returns_all_markers(self):
        s, tiny = self._everything_infeasible()
        times = predict_times(s, tiny, "spmm:512")
        assert set(times) == set(MODELED_FORMATS)
        assert all(isinstance(t, InfeasibleFormat) for t in times.values())
        assert feasible_times(times) == {}
        with pytest.raises(NoFeasibleFormatError) as err:
            best_format(times)
        # Every format's reason is carried in the error.
        for fmt in MODELED_FORMATS:
            assert fmt in str(err.value)

    def test_error_is_a_value_error_for_old_callers(self):
        assert issubclass(NoFeasibleFormatError, ValueError)

    def test_simulator_raises_the_same_typed_error(self):
        from repro.gpu.simulator import GPUSimulator

        s, tiny = self._everything_infeasible()
        result = GPUSimulator(tiny, trials=3, seed=0).benchmark_stats(
            "m", s, "spmm:512"
        )
        assert not result.runnable
        assert result.times == {}
        with pytest.raises(NoFeasibleFormatError):
            result.best_format
