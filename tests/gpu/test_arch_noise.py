"""Architecture parameter sets and derived properties."""

import pytest

from repro.gpu import ARCHITECTURES, PASCAL, TURING, VOLTA


def test_registry_contents():
    assert set(ARCHITECTURES) == {"pascal", "volta", "turing"}
    assert ARCHITECTURES["pascal"] is PASCAL


def test_table2_hardware_parameters():
    # The paper's Table 2, verbatim.
    assert (PASCAL.num_sms, PASCAL.l1_kib_per_sm, PASCAL.l2_kib) == (20, 48, 2048)
    assert (VOLTA.num_sms, VOLTA.l1_kib_per_sm, VOLTA.l2_kib) == (80, 128, 6144)
    assert (TURING.num_sms, TURING.l1_kib_per_sm, TURING.l2_kib) == (72, 64, 6144)
    assert (PASCAL.memory_gb, VOLTA.memory_gb, TURING.memory_gb) == (8, 32, 48)
    assert (PASCAL.bandwidth_gbs, VOLTA.bandwidth_gbs, TURING.bandwidth_gbs) == (
        320.0,
        897.0,
        672.0,
    )


def test_derived_properties():
    assert PASCAL.l2_bytes == 2048 * 1024
    assert VOLTA.max_resident_threads == 80 * 2048
    assert PASCAL.effective_bandwidth == pytest.approx(
        320e9 * PASCAL.bandwidth_efficiency
    )


def test_capacity_ordering_matches_memory():
    assert PASCAL.capacity_bytes < VOLTA.capacity_bytes < TURING.capacity_bytes


def test_kernel_dials_encode_paper_mechanisms():
    # Turing's cheap atomics (COO winners), Volta's expensive COO path.
    assert TURING.coo_pass_factor < PASCAL.coo_pass_factor
    assert TURING.coo_pass_factor < VOLTA.coo_pass_factor
    # Pascal's weaker latency hiding punishes serial row walks hardest.
    assert PASCAL.serial_entry_latency > VOLTA.serial_entry_latency
    # HYB dispatch is cheapest on Pascal (Table 3: HYB is Pascal-only).
    assert PASCAL.hyb_extra_overhead < VOLTA.hyb_extra_overhead
    # Newer memory systems have a higher CSR coalescing floor.
    assert VOLTA.csr_coalesce_min > PASCAL.csr_coalesce_min


def test_architectures_frozen():
    with pytest.raises(Exception):
        PASCAL.num_sms = 1
