"""Collection builder and permutation augmentation."""

import numpy as np
import pytest

from repro.datasets import build_collection, permutation_augment
from repro.datasets.suite import FAMILY_WEIGHTS, _sample_params
from repro.datasets.generators import GENERATORS


class TestBuildCollection:
    def test_size_and_names_unique(self, tiny_collection):
        assert len(tiny_collection) == 25
        assert len(set(tiny_collection.names)) == 25

    def test_deterministic(self):
        a = build_collection(seed=3, size=12)
        b = build_collection(seed=3, size=12)
        for ra, rb in zip(a, b):
            assert ra.name == rb.name
            np.testing.assert_allclose(ra.matrix.vals, rb.matrix.vals)

    def test_prefix_stable_under_resize(self):
        big = build_collection(seed=3, size=20)
        small = build_collection(seed=3, size=10)
        for ra, rb in zip(small, big.records[:10]):
            assert ra.name == rb.name
            assert ra.nnz == rb.nnz

    def test_seed_changes_collection(self):
        a = build_collection(seed=1, size=10)
        b = build_collection(seed=2, size=10)
        assert a.names != b.names or any(
            ra.nnz != rb.nnz for ra, rb in zip(a, b)
        )

    def test_families_subset_respected(self):
        col = build_collection(seed=0, size=15, families=["banded", "rmat"])
        assert set(col.families()) <= {"banded", "rmat"}

    def test_family_weights_cover_all_generators(self):
        assert set(FAMILY_WEIGHTS) == set(GENERATORS)

    def test_subset(self, tiny_collection):
        sub = tiny_collection.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub.names == [tiny_collection.names[i] for i in (0, 2, 4)]

    def test_total_nnz_positive(self, tiny_collection):
        assert tiny_collection.total_nnz() > 0

    def test_sample_params_known_families(self):
        rng = np.random.default_rng(0)
        for family in GENERATORS:
            params = _sample_params(family, rng)
            assert isinstance(params, dict)
        with pytest.raises(KeyError):
            _sample_params("nonexistent", rng)


class TestPermutationAugment:
    def test_doubles_collection(self, tiny_collection):
        out = permutation_augment(tiny_collection.records, copies=1)
        assert len(out) == 2 * len(tiny_collection)

    def test_copies_parameter(self, tiny_collection):
        out = permutation_augment(tiny_collection.records[:4], copies=3)
        assert len(out) == 16

    def test_augmented_names_distinct(self, tiny_collection):
        out = permutation_augment(tiny_collection.records, copies=2)
        names = [r.name for r in out]
        assert len(set(names)) == len(names)

    def test_permutation_preserves_nnz(self, tiny_collection):
        out = permutation_augment(tiny_collection.records, copies=1, seed=5)
        originals = {r.name: r for r in tiny_collection.records}
        for rec in out:
            base = rec.params.get("augmented_from")
            if base is not None:
                assert rec.nnz == originals[base].nnz
                assert rec.shape == originals[base].shape

    def test_row_only_permutation_preserves_row_length_multiset(
        self, tiny_collection
    ):
        out = permutation_augment(
            tiny_collection.records[:3], copies=1, permute_cols=False
        )
        for rec in out[3:]:
            base = next(
                r for r in tiny_collection.records
                if r.name == rec.params["augmented_from"]
            )
            np.testing.assert_array_equal(
                np.sort(rec.matrix.row_lengths()),
                np.sort(base.matrix.row_lengths()),
            )

    def test_deterministic(self, tiny_collection):
        a = permutation_augment(tiny_collection.records, copies=1, seed=9)
        b = permutation_augment(tiny_collection.records, copies=1, seed=9)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.matrix.rows, rb.matrix.rows)


class TestDeterminismSeams:
    """Properties the parallel campaign engine relies on."""

    def test_size_n_is_exact_prefix_of_size_2n(self):
        # Not just names/nnz: the structures themselves must match, or a
        # resumable/parallel campaign could mix matrices across sizes.
        small = build_collection(seed=11, size=8)
        big = build_collection(seed=11, size=16)
        for ra, rb in zip(small.records, big.records[:8]):
            assert ra.name == rb.name
            assert ra.family == rb.family
            np.testing.assert_array_equal(ra.matrix.rows, rb.matrix.rows)
            np.testing.assert_array_equal(ra.matrix.cols, rb.matrix.cols)
            np.testing.assert_array_equal(ra.matrix.vals, rb.matrix.vals)

    def test_parallel_generation_bit_identical(self):
        serial = build_collection(seed=11, size=14, jobs=1)
        parallel = build_collection(seed=11, size=14, jobs=2)
        for ra, rb in zip(serial.records, parallel.records):
            assert ra.name == rb.name
            assert ra.params == rb.params
            np.testing.assert_array_equal(ra.matrix.rows, rb.matrix.rows)
            np.testing.assert_array_equal(ra.matrix.cols, rb.matrix.cols)
            np.testing.assert_array_equal(ra.matrix.vals, rb.matrix.vals)

    def test_parallel_augmentation_bit_identical(self, tiny_collection):
        records = tiny_collection.records[:6]
        serial = permutation_augment(records, copies=2, seed=9, jobs=1)
        parallel = permutation_augment(records, copies=2, seed=9, jobs=2)
        assert [r.name for r in serial] == [r.name for r in parallel]
        for ra, rb in zip(serial, parallel):
            np.testing.assert_array_equal(ra.matrix.rows, rb.matrix.rows)
            np.testing.assert_array_equal(ra.matrix.cols, rb.matrix.cols)
            np.testing.assert_array_equal(ra.matrix.vals, rb.matrix.vals)
