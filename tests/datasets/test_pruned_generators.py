"""DLMC-style pruned-weight generators: the SpMM campaign's new families.

Four contracts:

- requested sparsity is honoured (exactly for magnitude pruning, within
  binomial tolerance for the Bernoulli families);
- ``block_pruned`` emits *only* complete ``block x block`` tiles, on
  block-aligned dimensions (rounding non-multiples up);
- a fixed seed reproduces the record bit-for-bit;
- the single-pass :class:`StreamingStats` accumulator matches
  :func:`compute_stats` bit-identically on every family, so streamed
  pruned-weight files get the same features as in-memory ones.
"""

import numpy as np
import pytest

from repro.datasets.generators import (
    GENERATORS,
    PRUNED_FAMILIES,
    block_pruned,
    magnitude_pruned,
    random_pruned,
)
from repro.datasets.suite import DEFAULT_FAMILIES, SPMM_FAMILIES
from repro.features.stats import StreamingStats, compute_stats

PRUNED_GENERATORS = {
    "magnitude_pruned": magnitude_pruned,
    "random_pruned": random_pruned,
    "block_pruned": block_pruned,
}


def test_registry_and_suite_wiring():
    for name in PRUNED_FAMILIES:
        assert GENERATORS[name] is PRUNED_GENERATORS[name]
    # The classic seeded SpMV campaign must not reshuffle: the pruned
    # trio only enters through the explicit SpMM family list.
    assert not set(PRUNED_FAMILIES) & set(DEFAULT_FAMILIES)
    assert SPMM_FAMILIES == DEFAULT_FAMILIES + PRUNED_FAMILIES


@pytest.mark.parametrize("sparsity", [0.5, 0.9, 0.98])
def test_magnitude_pruned_keeps_exact_count(sparsity):
    nrows, ncols = 96, 128
    m = magnitude_pruned(
        np.random.default_rng(0), nrows=nrows, ncols=ncols, sparsity=sparsity
    )
    assert m.shape == (nrows, ncols)
    assert m.nnz == max(1, int(round(nrows * ncols * (1.0 - sparsity))))
    # Survivors are the global magnitude tail: every kept |value| must
    # be at least as large as the implied threshold would allow, i.e.
    # the smallest survivor dominates what a fresh draw discards on
    # average.  Cheap sanity: survivors are well away from zero.
    assert np.abs(m.vals).min() > 0.0


@pytest.mark.parametrize("name", ["random_pruned", "block_pruned"])
@pytest.mark.parametrize("sparsity", [0.7, 0.9])
def test_bernoulli_families_hit_sparsity_within_tolerance(name, sparsity):
    gen = PRUNED_GENERATORS[name]
    m = gen(np.random.default_rng(7), nrows=512, ncols=512, sparsity=sparsity)
    achieved = 1.0 - m.nnz / (m.shape[0] * m.shape[1])
    # random_pruned draws 512*512 Bernoullis (sd ~ 1e-3); block_pruned
    # draws (512/4)^2 tile Bernoullis (sd ~ 3e-3).  5 sd with margin:
    assert achieved == pytest.approx(sparsity, abs=0.02)


@pytest.mark.parametrize("block", [2, 4, 8])
def test_block_pruned_emits_only_full_tiles(block):
    m = block_pruned(
        np.random.default_rng(3), nrows=128, ncols=96, sparsity=0.85,
        block=block,
    )
    assert m.shape[0] % block == 0 and m.shape[1] % block == 0
    assert m.nnz % (block * block) == 0
    tiles, counts = np.unique(
        (m.rows // block) * (m.shape[1] // block) + (m.cols // block),
        return_counts=True,
    )
    assert (counts == block * block).all()
    assert tiles.size == m.nnz // (block * block)


def test_block_pruned_rounds_ragged_dims_up():
    m = block_pruned(
        np.random.default_rng(1), nrows=130, ncols=97, sparsity=0.9, block=8
    )
    assert m.shape == (136, 104)


def test_every_family_survives_extreme_sparsity():
    # At 0.995 the Bernoulli mask can come up empty; the generators must
    # still emit at least one entry (one full tile for block_pruned).
    for name, gen in PRUNED_GENERATORS.items():
        m = gen(np.random.default_rng(11), nrows=32, ncols=32, sparsity=0.995)
        assert m.nnz >= 1, name
    b = block_pruned(
        np.random.default_rng(11), nrows=32, ncols=32, sparsity=0.995, block=4
    )
    assert b.nnz >= 16


@pytest.mark.parametrize("name", sorted(PRUNED_GENERATORS))
def test_same_seed_reproduces_bit_for_bit(name):
    gen = PRUNED_GENERATORS[name]
    a = gen(np.random.default_rng(42), nrows=64, ncols=80, sparsity=0.9)
    b = gen(np.random.default_rng(42), nrows=64, ncols=80, sparsity=0.9)
    assert a.shape == b.shape
    assert a.rows.tobytes() == b.rows.tobytes()
    assert a.cols.tobytes() == b.cols.tobytes()
    assert a.vals.tobytes() == b.vals.tobytes()
    c = gen(np.random.default_rng(43), nrows=64, ncols=80, sparsity=0.9)
    assert (
        a.nnz != c.nnz
        or a.rows.tobytes() != c.rows.tobytes()
        or a.cols.tobytes() != c.cols.tobytes()
    )


def test_collection_records_deterministic_for_pruned_families():
    from repro.datasets.suite import build_collection

    a = build_collection(seed=9, size=6, families=list(PRUNED_FAMILIES))
    b = build_collection(seed=9, size=6, families=list(PRUNED_FAMILIES))
    assert [r.name for r in a.records] == [r.name for r in b.records]
    for ra, rb in zip(a.records, b.records):
        assert ra.family == rb.family and ra.params == rb.params
        assert ra.family in PRUNED_FAMILIES
        assert ra.matrix.shape == rb.matrix.shape
        assert ra.matrix.rows.tobytes() == rb.matrix.rows.tobytes()
        assert ra.matrix.cols.tobytes() == rb.matrix.cols.tobytes()
        assert ra.matrix.vals.tobytes() == rb.matrix.vals.tobytes()


@pytest.mark.parametrize("name", sorted(PRUNED_GENERATORS))
@pytest.mark.parametrize("chunk", [1, 17, 100_000])
def test_streaming_stats_bit_identical_on_pruned_families(name, chunk):
    m = PRUNED_GENERATORS[name](
        np.random.default_rng(5), nrows=72, ncols=56, sparsity=0.88
    )
    want = compute_stats(m)
    acc = StreamingStats(m.shape[0], m.shape[1])
    for start in range(0, m.nnz, chunk):
        acc.update(m.rows[start : start + chunk], m.cols[start : start + chunk])
    got = acc.finalize()
    assert got.nrows == want.nrows and got.ncols == want.ncols
    assert got.nnz == want.nnz
    assert got.row_lengths.tobytes() == want.row_lengths.tobytes()
    assert got.n_diagonals == want.n_diagonals
    assert got.band_fraction == want.band_fraction
    assert got.mean_abs_offset == want.mean_abs_offset
    assert got.warp_divergence_slots == want.warp_divergence_slots
    assert got.csr_max == want.csr_max
    assert got.hyb_width == want.hyb_width
    assert got.hyb_ell_entries == want.hyb_ell_entries
    assert got.hyb_coo_entries == want.hyb_coo_entries


@pytest.mark.parametrize("name", sorted(PRUNED_GENERATORS))
@pytest.mark.parametrize("sparsity", [0.0, 1.0, -0.2, 1.5])
def test_sparsity_domain_is_enforced(name, sparsity):
    with pytest.raises(ValueError):
        PRUNED_GENERATORS[name](
            np.random.default_rng(0), nrows=16, ncols=16, sparsity=sparsity
        )


def test_block_size_domain_is_enforced():
    with pytest.raises(ValueError):
        block_pruned(np.random.default_rng(0), sparsity=0.9, block=0)
