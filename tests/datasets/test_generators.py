"""Structural invariants of every matrix family."""

import numpy as np
import pytest

from repro.datasets.generators import (
    GENERATORS,
    arrow,
    banded,
    block_diagonal,
    multi_diagonal,
    power_law_rows,
    random_uniform,
    rectangular,
    rmat,
    row_blocks,
    scale_free_graph,
    small_world,
    stencil_2d,
    stencil_3d,
)


@pytest.mark.parametrize("family", sorted(GENERATORS))
def test_default_generation_is_valid_and_deterministic(family):
    gen = GENERATORS[family]
    m1 = gen(np.random.default_rng(42))
    m2 = gen(np.random.default_rng(42))
    assert m1.nnz > 0
    assert m1.shape == m2.shape
    np.testing.assert_array_equal(m1.rows, m2.rows)
    np.testing.assert_array_equal(m1.cols, m2.cols)
    np.testing.assert_allclose(m1.vals, m2.vals)


@pytest.mark.parametrize("family", sorted(GENERATORS))
def test_different_seeds_differ(family):
    gen = GENERATORS[family]
    m1 = gen(np.random.default_rng(1))
    m2 = gen(np.random.default_rng(2))
    same = m1.nnz == m2.nnz and np.array_equal(m1.rows, m2.rows) and np.allclose(
        m1.vals, m2.vals
    ) if m1.nnz == m2.nnz else False
    assert not same


def test_banded_entries_within_band(rng):
    m = banded(rng, n=128, bandwidth=4)
    assert np.all(np.abs(m.cols - m.rows) <= 4)


def test_banded_full_density_row_lengths(rng):
    m = banded(rng, n=128, bandwidth=3, density=1.0)
    interior = m.row_lengths()[3:-3]
    assert np.all(interior == 7)


def test_multi_diagonal_has_requested_diagonals(rng):
    m = multi_diagonal(rng, n=256, ndiags=9)
    offs = m.diagonal_offsets()
    assert 0 in offs  # main diagonal always kept
    assert len(offs) <= 9


def test_stencil_2d_uniform_interior(rng):
    m = stencil_2d(rng, nx=12, ny=12, points=5)
    assert m.shape == (144, 144)
    lengths = m.row_lengths()
    assert lengths.max() == 5
    assert lengths.min() == 3  # corners


def test_stencil_2d_9pt(rng):
    m = stencil_2d(rng, nx=8, ny=8, points=9)
    assert m.row_lengths().max() == 9


def test_stencil_3d_7pt(rng):
    m = stencil_3d(rng, n1=6, points=7)
    assert m.shape == (216, 216)
    assert m.row_lengths().max() == 7


def test_stencil_rejects_unknown_points(rng):
    with pytest.raises(ValueError):
        stencil_2d(rng, points=7)
    with pytest.raises(ValueError):
        stencil_3d(rng, points=9)


def test_stencil_is_symmetric_pattern(rng):
    m = stencil_2d(rng, nx=7, ny=9, points=5)
    d = m.to_dense()
    np.testing.assert_array_equal(d != 0, (d != 0).T)


def test_random_uniform_density(rng):
    m = random_uniform(rng, nrows=400, density=0.01)
    realised = m.nnz / (400 * 400)
    assert 0.005 < realised < 0.02


def test_power_law_skew_bounded(rng):
    m = power_law_rows(
        rng, nrows=800, avg_nnz_per_row=8, alpha=1.7, max_over_mean=2.5
    )
    lengths = m.row_lengths()
    # Duplicate collapse can only shrink rows; the cap must hold loosely.
    assert lengths.max() <= 2.5 * lengths.mean() * 1.3


def test_power_law_unbounded_is_skewed(rng):
    m = power_law_rows(rng, nrows=2000, avg_nnz_per_row=6, alpha=1.6)
    lengths = m.row_lengths()
    assert lengths.max() > 5 * lengths.mean()


def test_rmat_shape_and_skew(rng):
    m = rmat(rng, scale=9, edge_factor=8)
    assert m.shape == (512, 512)
    lengths = m.row_lengths()
    assert lengths.max() > 4 * max(lengths.mean(), 1)


def test_scale_free_symmetric(rng):
    m = scale_free_graph(rng, n=300, m_attach=3)
    d = m.to_dense()
    np.testing.assert_array_equal(d != 0, (d != 0).T)


def test_small_world_symmetric_and_near_banded(rng):
    m = small_world(rng, n=400, k=6, p_rewire=0.0)
    d = m.to_dense()
    np.testing.assert_array_equal(d != 0, (d != 0).T)
    # Without rewiring all edges are ring-local (mod wrap-around).
    off = np.abs(m.cols - m.rows)
    assert np.all((off <= 3) | (off >= 397))


def test_block_diagonal_stays_in_blocks(rng):
    m = block_diagonal(rng, nblocks=4, block_size=16)
    assert np.all((m.rows // 16) == (m.cols // 16))


def test_arrow_has_dense_first_row_and_col(rng):
    m = arrow(rng, n=200, band=1, arm_density=1.0)
    lengths = m.row_lengths()
    assert lengths[0] == 200  # full first row (arm + diagonal + band)
    d = m.to_dense()
    assert np.count_nonzero(d[:, 0]) == 200


def test_row_blocks_distinct_lengths(rng):
    m = row_blocks(rng, nrows=300, lengths=(2, 30))
    lengths = m.row_lengths()
    # First group short, second long (duplicates may shave a little).
    assert lengths[:150].mean() < 5
    assert lengths[150:].mean() > 20


def test_rectangular_shape(rng):
    m = rectangular(rng, nrows=500, ncols=64, nnz_per_row=4)
    assert m.shape == (500, 64)
    assert np.all(m.cols < 64)
