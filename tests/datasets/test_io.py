"""Collection export / load roundtrips."""

import numpy as np
import pytest

from repro.datasets.io import export_collection, load_collection
from repro.formats import write_matrix_market


def test_export_load_roundtrip(tmp_path, tiny_collection):
    records = tiny_collection.records[:6]
    out = export_collection(records, tmp_path / "col")
    loaded = load_collection(out)
    assert [r.name for r in loaded] == [r.name for r in records]
    assert [r.family for r in loaded] == [r.family for r in records]
    for a, b in zip(loaded, records):
        np.testing.assert_allclose(a.matrix.to_dense(), b.matrix.to_dense())


def test_export_refuses_overwrite(tmp_path, tiny_collection):
    records = tiny_collection.records[:2]
    export_collection(records, tmp_path / "col")
    with pytest.raises(FileExistsError):
        export_collection(records, tmp_path / "col")


def test_params_survive_json(tmp_path, tiny_collection):
    records = [
        r for r in tiny_collection.records if r.family == "row_blocks"
    ][:1] or tiny_collection.records[:1]
    out = export_collection(records, tmp_path / "col")
    loaded = load_collection(out)
    # Tuples become lists, but the values survive.
    for key, value in records[0].params.items():
        got = loaded[0].params[key]
        if isinstance(value, tuple):
            assert got == list(value)
        else:
            assert got == pytest.approx(value)


def test_load_external_directory(tmp_path, tiny_collection):
    # A bare folder of .mtx files without metadata (SuiteSparse style).
    for rec in tiny_collection.records[:3]:
        write_matrix_market(rec.matrix, tmp_path / f"{rec.name}.mtx")
    loaded = load_collection(tmp_path)
    assert len(loaded) == 3
    assert all(r.family == "external" for r in loaded)


def test_load_errors(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_collection(tmp_path / "missing")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(FileNotFoundError):
        load_collection(empty)


def test_external_collection_feeds_pipeline(tmp_path, tiny_collection):
    """Real-data hook: a bare .mtx directory runs the full pipeline."""
    from repro.core.labeling import build_labeled_dataset
    from repro.features import extract_features_collection
    from repro.gpu import GPUSimulator, VOLTA

    for rec in tiny_collection.records[:8]:
        write_matrix_market(rec.matrix, tmp_path / f"{rec.name}.mtx")
    records = load_collection(tmp_path)
    features = extract_features_collection(records)
    sim = GPUSimulator(VOLTA, trials=3)
    dataset = build_labeled_dataset(
        "volta", features, sim.benchmark_collection(records)
    )
    assert len(dataset) >= 1


def test_failed_export_leaves_no_partial_collection(
    tmp_path, tiny_collection, monkeypatch
):
    """A mid-export crash must not leave a half-written collection: the
    target directory stays clean (no .mtx debris, no commit marker) and
    the staging directory is removed, so a retry just works."""
    import repro.datasets.io as ds_io

    records = tiny_collection.records[:5]
    target = tmp_path / "col"
    real_write = ds_io.write_matrix_market
    calls = {"n": 0}

    def failing_write(matrix, path, comment=None):
        calls["n"] += 1
        if calls["n"] == 3:
            raise OSError("disk full")
        return real_write(matrix, path, comment=comment)

    monkeypatch.setattr(ds_io, "write_matrix_market", failing_write)
    with pytest.raises(OSError, match="disk full"):
        export_collection(records, target)
    assert list(target.iterdir()) == []  # nothing published
    assert list(tmp_path.glob(".col-partial-*")) == []  # staging cleaned

    # The failed attempt does not block a retry.
    monkeypatch.setattr(ds_io, "write_matrix_market", real_write)
    export_collection(records, target)
    loaded = load_collection(target)
    assert [r.name for r in loaded] == [r.name for r in records]


def test_export_metadata_written_last(tmp_path, tiny_collection):
    """collection.json is the commit marker: it lists every exported
    file, and every listed file exists once it does."""
    import json

    records = tiny_collection.records[:4]
    out = export_collection(records, tmp_path / "col")
    meta = json.loads((out / "collection.json").read_text())
    assert len(meta) == 4
    for entry in meta:
        assert (out / entry["file"]).is_file()
