"""Supervised baselines and the transfer workflow."""

import numpy as np
import pytest

from repro.core.semisupervised import ClusterFormatSelector
from repro.core.supervised import SUPERVISED_MODELS, SupervisedFormatSelector
from repro.core.transfer import (
    RETRAIN_FRACTIONS,
    _retrain_mask,
    mixed_labels,
    transfer_semisupervised,
    transfer_supervised,
    transfer_training_set,
)
from repro.ml.base import NotFittedError
from repro.ml.model_selection import train_test_split


class TestSupervisedFormatSelector:
    @pytest.mark.parametrize("model", sorted(SUPERVISED_MODELS))
    def test_fit_predict_all_models(self, model, tiny_data):
        ds = tiny_data.datasets["volta"]
        clf = SupervisedFormatSelector(model, seed=0)
        clf.fit(ds.X, ds.labels)
        pred = clf.predict(ds.X)
        assert pred.shape == ds.labels.shape
        assert np.mean(pred == ds.labels) > 0.7  # training accuracy

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            SupervisedFormatSelector("MLP")

    def test_not_fitted(self, tiny_data):
        with pytest.raises(NotFittedError):
            SupervisedFormatSelector("DT").predict(
                tiny_data.datasets["volta"].X
            )


class TestRetrainMask:
    def test_zero_fraction_empty(self):
        y = np.array(["a"] * 10, dtype=object)
        assert not _retrain_mask(10, 0.0, y, seed=0).any()

    def test_fraction_sizes_stratified(self):
        y = np.array(["a"] * 80 + ["b"] * 20, dtype=object)
        mask = _retrain_mask(100, 0.25, y, seed=0)
        assert mask.sum() == 25
        assert mask[:80].sum() == 20 and mask[80:].sum() == 5

    def test_mixed_labels_replacement(self):
        src = np.array(["a", "a", "a"], dtype=object)
        tgt = np.array(["b", "b", "b"], dtype=object)
        mask = np.array([True, False, True])
        out = mixed_labels(src, tgt, mask)
        np.testing.assert_array_equal(out, ["b", "a", "b"])
        # Input untouched.
        np.testing.assert_array_equal(src, ["a", "a", "a"])


class TestTransferTrainingSet:
    def test_concatenation_grows_with_fraction(self, tiny_data):
        src = tiny_data.common["pascal"]
        tgt = tiny_data.common["volta"]
        train_idx = np.arange(len(src))
        m0 = _retrain_mask(len(src), 0.0, src.labels, 0)
        m50 = _retrain_mask(len(src), 0.5, src.labels, 0)
        X0, y0 = transfer_training_set(src, tgt, train_idx, m0)
        X50, y50 = transfer_training_set(src, tgt, train_idx, m50)
        assert X0.shape[0] == len(src)
        assert X50.shape[0] > X0.shape[0]
        assert y50.shape[0] == X50.shape[0]


class TestTransferEvaluation:
    def _split(self, ds, seed=0):
        return train_test_split(len(ds), 0.3, y=ds.labels, seed=seed)

    def test_supervised_transfer_scores(self, tiny_data):
        src = tiny_data.common["pascal"]
        tgt = tiny_data.common["volta"]
        train, test = self._split(src)
        scores = transfer_supervised("DT", src, tgt, train, test, 0.0)
        assert 0.0 <= scores.accuracy <= 1.0
        assert scores.speedups is not None
        assert scores.speedups.gt_speedup <= 1.0 + 1e-12

    def test_semisupervised_transfer_scores(self, tiny_data):
        src = tiny_data.common["pascal"]
        tgt = tiny_data.common["turing"]
        train, test = self._split(src)
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        scores = transfer_semisupervised(
            sel, src, tgt, train, test, 0.25, with_speedups=True
        )
        assert 0.0 <= scores.accuracy <= 1.0
        assert -1.0 <= scores.mcc <= 1.0

    def test_retraining_not_harmful_on_average(self, tiny_data):
        # Across fractions, 50% target data should not be much worse than
        # 0% (it usually helps; tiny data makes strict monotonicity noisy).
        src = tiny_data.common["volta"]
        tgt = tiny_data.common["pascal"]
        train, test = self._split(src)
        acc = {
            f: transfer_supervised(
                "RF", src, tgt, train, test, f, seed=1
            ).accuracy
            for f in RETRAIN_FRACTIONS
        }
        assert acc[0.5] >= acc[0.0] - 0.1

    def test_identical_arch_transfer_is_local(self, tiny_data):
        # Transferring volta->volta at 0% equals local training.
        src = tiny_data.common["volta"]
        train, test = self._split(src)
        scores = transfer_supervised("DT", src, src, train, test, 0.0)
        clf = SupervisedFormatSelector("DT", seed=0)
        clf.fit(src.X[train], src.labels[train])
        pred = clf.predict(src.X[test])
        assert scores.accuracy == pytest.approx(
            np.mean(pred == src.labels[test])
        )

    def test_misaligned_datasets_rejected(self, tiny_data):
        src = tiny_data.common["pascal"]
        tgt = tiny_data.common["volta"].subset(list(range(len(src) - 1)))
        with pytest.raises(ValueError):
            transfer_supervised(
                "DT", src, tgt, np.arange(3), np.arange(3, 6), 0.0
            )
