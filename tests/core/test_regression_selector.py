"""Regression-based (quantitative) format selection."""

import numpy as np
import pytest

from repro.core.regression import RegressionFormatSelector
from repro.ml.base import NotFittedError
from repro.ml.metrics import accuracy_score


@pytest.fixture(scope="module")
def fitted(tiny_data):
    ds = tiny_data.datasets["pascal"]
    sel = RegressionFormatSelector(n_estimators=30, seed=0)
    sel.fit(ds.X, ds.times)
    return sel, ds


def test_predicted_times_positive_and_complete(fitted):
    sel, ds = fitted
    pred = sel.predict_times(ds.X[:20])
    assert set(pred) <= {"coo", "csr", "ell", "hyb"}
    for fmt, t in pred.items():
        assert t.shape == (20,)
        assert np.all(t > 0)


def test_time_predictions_correlate_with_truth(fitted):
    sel, ds = fitted
    pred = sel.predict_times(ds.X)
    true_csr = np.array([t["csr"] for t in ds.times])
    r = np.corrcoef(np.log(pred["csr"]), np.log(true_csr))[0, 1]
    assert r > 0.9  # in-sample log-time fit must be strong


def test_argmin_selection_competitive(fitted):
    sel, ds = fitted
    acc = accuracy_score(ds.labels, sel.predict(ds.X))
    majority = max(
        np.mean(ds.labels == f) for f in ("csr", "ell", "coo", "hyb")
    )
    assert acc > majority


def test_predicted_speedup_over_csr(fitted):
    sel, ds = fitted
    sp = sel.predicted_speedup_over(ds.X, baseline="csr")
    assert np.all(sp >= 1.0 - 1e-9)  # best <= baseline by construction
    with pytest.raises(ValueError):
        sel.predicted_speedup_over(ds.X, baseline="bsr")


def test_missing_format_rows_excluded(tiny_data):
    ds = tiny_data.datasets["pascal"]
    times = [dict(t) for t in ds.times]
    for t in times[: len(times) // 2]:
        t.pop("hyb", None)
    sel = RegressionFormatSelector(n_estimators=10, seed=0)
    sel.fit(ds.X, times)
    assert "hyb" in sel.predict_times(ds.X[:2])


def test_validation(tiny_data):
    ds = tiny_data.datasets["pascal"]
    with pytest.raises(ValueError):
        RegressionFormatSelector(formats=())
    with pytest.raises(ValueError):
        RegressionFormatSelector().fit(ds.X[:3], ds.times[:2])
    with pytest.raises(NotFittedError):
        RegressionFormatSelector().predict(ds.X)
