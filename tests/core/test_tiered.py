"""TieredSelector: calibration, determinism, and escalation fidelity.

The DESIGN §13 contract under test:

- calibration is a pure function of the frozen model (same model in,
  same margin threshold out);
- tier-1 answers only when the observed margin strictly exceeds the
  threshold, so raising the threshold can only move answers from tier 1
  to tier 2 — never change a tier-2 answer;
- every escalation is bit-identical to the full 21-feature pipeline,
  which means a forced-escalation selector *is* the full pipeline;
- :meth:`select_stream` decides exactly like :meth:`select` on the
  parsed matrix.
"""

import numpy as np
import pytest

from repro.core.tiered import TierDecision, TieredSelector
from repro.features import extract_features
from repro.features.extract import cheap_features_from_lengths
from repro.formats import read_matrix_market, write_matrix_market
from repro.serving.drill import synthetic_frozen_selector


@pytest.fixture(scope="module")
def frozen():
    return synthetic_frozen_selector(seed=5)


@pytest.fixture(scope="module")
def tiered(frozen):
    return TieredSelector.calibrate(frozen)


def _matrices(n, seed=11):
    from repro.formats.coo import COOMatrix

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        nrows = int(rng.integers(2, 40))
        ncols = int(rng.integers(2, 40))
        nnz = int(rng.integers(1, max(2, nrows * ncols // 4)))
        flat = rng.choice(nrows * ncols, size=nnz, replace=False)
        rows, cols = np.divmod(flat, ncols)
        out.append(COOMatrix(
            (nrows, ncols), rows, cols, rng.uniform(0.5, 2.0, size=nnz)
        ))
    return out


def test_calibration_is_deterministic(frozen):
    a = TieredSelector.calibrate(frozen)
    b = TieredSelector.calibrate(frozen)
    assert a.margin_threshold == b.margin_threshold
    assert np.isfinite(a.margin_threshold)
    assert a.margin_threshold >= 0.0


def test_threshold_must_be_finite_and_nonnegative(frozen):
    with pytest.raises(ValueError):
        TieredSelector(frozen, -0.5)
    with pytest.raises(ValueError):
        TieredSelector(frozen, float("nan"))


def test_selection_is_deterministic(tiered):
    for m in _matrices(10):
        first = tiered.select(m)
        second = tiered.select(m)
        assert first == second


def test_escalations_match_full_pipeline(frozen, tiered):
    escalated = 0
    for m in _matrices(40):
        decision = tiered.select(m)
        assert isinstance(decision, TierDecision)
        assert decision.tier in (1, 2)
        if decision.tier == 2:
            escalated += 1
            vec = extract_features(m)[None, :]
            centroid = int(frozen.assign(vec)[0])
            assert decision.centroid == centroid
            assert decision.format == str(frozen.centroid_labels[centroid])
    assert escalated > 0, "workload never escalated; contract untested"


def test_forced_escalation_is_the_full_pipeline(frozen):
    forced = TieredSelector(frozen, 1e18)
    for m in _matrices(15, seed=3):
        decision = forced.select(m)
        assert decision.tier == 2
        vec = extract_features(m)[None, :]
        assert decision.centroid == int(frozen.assign(vec)[0])
    assert forced.escalation_rate == 1.0


def test_tier1_margin_strictly_exceeds_threshold(tiered):
    for m in _matrices(40):
        nrows, ncols = m.shape
        cheap = cheap_features_from_lengths(
            nrows, ncols, m.nnz, m.row_lengths()
        )
        decision, margin = tiered.stage1_with_margin(cheap)
        if decision is not None:
            assert decision.tier == 1
            assert margin > tiered.margin_threshold
            assert decision.margin == margin


def test_raising_threshold_only_moves_answers_to_tier2(frozen, tiered):
    stricter = TieredSelector(
        frozen, tiered.margin_threshold * 2.0 + 1.0
    )
    for m in _matrices(25):
        loose = tiered.select(m)
        strict = stricter.select(m)
        assert strict.tier >= loose.tier
        if loose.tier == 2:
            # Already escalated: a stricter margin cannot change it.
            assert strict.tier == 2
            assert strict.format == loose.format
            assert strict.centroid == loose.centroid


def test_select_stream_matches_select(tiered, tmp_path):
    for i, m in enumerate(_matrices(12, seed=29)):
        path = tmp_path / f"m{i}.mtx"
        write_matrix_market(m, path)
        in_memory = tiered.select(read_matrix_market(str(path)))
        streamed = tiered.select_stream(str(path))
        assert streamed == in_memory


def test_counters_and_escalation_rate(frozen):
    ts = TieredSelector.calibrate(frozen)
    assert ts.requests == 0 and ts.escalations == 0
    assert ts.escalation_rate == 0.0
    matrices = _matrices(20, seed=17)
    for m in matrices:
        ts.select(m)
    assert ts.requests == len(matrices)
    assert 0 <= ts.escalations <= ts.requests
    assert ts.escalation_rate == ts.escalations / ts.requests


def test_decision_fields(tiered):
    (m,) = _matrices(1, seed=2)
    decision = tiered.select(m)
    assert isinstance(decision.format, str) and decision.format
    assert isinstance(decision.centroid, int)
    assert isinstance(decision.margin, float)
