"""The semi-supervised selector: clustering + labeling + inference."""

import numpy as np
import pytest

from repro.core.semisupervised import ClusterFormatSelector, make_clusterer
from repro.ml.base import NotFittedError
from repro.ml.cluster import Birch, KMeans, MeanShift
from repro.ml.metrics import accuracy_score, matthews_corrcoef


@pytest.fixture(scope="module")
def volta(tiny_data):
    return tiny_data.datasets["volta"]


class TestMakeClusterer:
    def test_instances(self):
        assert isinstance(make_clusterer("kmeans", 5), KMeans)
        assert isinstance(make_clusterer("meanshift"), MeanShift)
        assert isinstance(make_clusterer("birch", 5), Birch)

    def test_kmeans_requires_nc(self):
        with pytest.raises(ValueError):
            make_clusterer("kmeans")
        with pytest.raises(ValueError):
            make_clusterer("birch")

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_clusterer("dbscan", 5)


class TestClusterFormatSelector:
    def test_fit_predict_accuracy(self, volta):
        sel = ClusterFormatSelector("kmeans", "vote", 12, seed=0)
        sel.fit(volta.X, volta.labels)
        pred = sel.predict(volta.X)
        assert accuracy_score(volta.labels, pred) > 0.7
        assert matthews_corrcoef(volta.labels, pred) > 0.2

    def test_predictions_constant_within_cluster(self, volta):
        sel = ClusterFormatSelector("kmeans", "vote", 8, seed=0)
        sel.fit(volta.X, volta.labels)
        clusters = sel.assign_clusters(volta.X)
        pred = sel.predict(volta.X)
        for c in np.unique(clusters):
            assert len(set(pred[clusters == c])) == 1

    def test_all_labelers_work(self, volta):
        for labeler in ("vote", "lr", "rf"):
            sel = ClusterFormatSelector("kmeans", labeler, 10, seed=0)
            sel.fit(volta.X, volta.labels)
            assert len(sel.cluster_labels_) == sel.n_clusters_

    def test_all_clusterers_work(self, volta):
        for clusterer in ("kmeans", "meanshift", "birch"):
            sel = ClusterFormatSelector(clusterer, "vote", 10, seed=0)
            sel.fit(volta.X, volta.labels)
            assert sel.predict(volta.X).shape == volta.labels.shape

    def test_two_stage_separation(self, volta):
        # fit_clusters needs no labels; label_clusters supplies them later.
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel.fit_clusters(volta.X)
        with pytest.raises(NotFittedError):
            sel.predict(volta.X)
        sel.label_clusters(volta.labels)
        assert sel.predict(volta.X).shape == volta.labels.shape

    def test_partial_benchmarking_mask(self, volta):
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel.fit_clusters(volta.X)
        sample = sel.sample_for_benchmarking(per_cluster=1, seed=0)
        assert len(sample) <= sel.benchmarking_budget(1)
        sel.label_clusters(volta.labels, benchmarked=sample)
        pred = sel.predict(volta.X)
        # One benchmarked matrix per cluster already predicts decently.
        assert accuracy_score(volta.labels, pred) > 0.6

    def test_unbenchmarked_cluster_falls_back_to_majority(self, volta):
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel.fit_clusters(volta.X)
        # Benchmark only cluster 0's members.
        members = np.flatnonzero(sel.train_assignments_ == 0)
        sel.label_clusters(volta.labels, benchmarked=members)
        # Other clusters carry the global majority of the benchmarked set.
        from collections import Counter

        majority = Counter(
            volta.labels[members].tolist()
        ).most_common(1)[0][0]
        assert all(
            lab == majority
            for c, lab in enumerate(sel.cluster_labels_)
            if c != 0
        )

    def test_source_y_evidence_combination(self, volta, tiny_data):
        pascal = tiny_data.datasets["pascal"]
        shared = [n for n in volta.names if n in set(pascal.names)]
        v = volta.subset_by_names(shared)
        p = pascal.subset_by_names(shared)
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel.fit_clusters(v.X)
        none_mask = np.zeros(len(v), dtype=bool)
        sel.label_clusters(v.labels, benchmarked=none_mask, source_y=p.labels)
        # With zero target benchmarks, labels must be derivable from the
        # source labels alone.
        sel2 = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel2.fit_clusters(v.X)
        sel2.label_clusters(p.labels)
        np.testing.assert_array_equal(sel.cluster_labels_, sel2.cluster_labels_)

    def test_custom_clusterer_object(self, volta):
        sel = ClusterFormatSelector(KMeans(n_clusters=6, seed=1), "vote")
        sel.fit(volta.X, volta.labels)
        assert sel.n_clusters_ == 6

    def test_validation(self, volta):
        with pytest.raises(ValueError):
            ClusterFormatSelector("dbscan")
        with pytest.raises(ValueError):
            ClusterFormatSelector(labeler="svm")
        sel = ClusterFormatSelector("kmeans", "vote", 10)
        with pytest.raises(NotFittedError):
            sel.assign_clusters(volta.X)
        sel.fit_clusters(volta.X)
        with pytest.raises(ValueError):
            sel.label_clusters(volta.labels[:3])
        with pytest.raises(ValueError):
            sel.label_clusters(
                volta.labels, benchmarked=np.zeros(len(volta), dtype=bool)
            )

    def test_more_clusters_higher_purity(self, volta):
        from repro.core.purity import cluster_purity

        few = ClusterFormatSelector("kmeans", "vote", 4, seed=0)
        many = ClusterFormatSelector("kmeans", "vote", 24, seed=0)
        few.fit_clusters(volta.X)
        many.fit_clusters(volta.X)
        p_few = cluster_purity(volta.labels, few.train_assignments_)
        p_many = cluster_purity(volta.labels, many.train_assignments_)
        assert p_many >= p_few - 0.02


class TestDegenerateClusterIds:
    def test_empty_kmeans_cluster_still_labelable(self):
        # Two distinct points, four requested clusters: K-Means must keep
        # four centroids (reseeding duplicates), and the selector must
        # label all of them so predict() can never index out of range.
        import numpy as np

        X = np.repeat(
            np.array([[0.0] * 21, [1000.0] * 21]), 12, axis=0
        )
        y = np.array(["csr"] * 12 + ["ell"] * 12, dtype=object)
        sel = ClusterFormatSelector("kmeans", "vote", 4, seed=0)
        sel.fit(X, y)
        assert len(sel.cluster_labels_) == sel.n_clusters_ == 4
        rng = np.random.default_rng(0)
        probe = rng.uniform(-10, 1010, size=(50, 21))
        pred = sel.predict(probe)
        assert set(pred) <= {"csr", "ell"}
