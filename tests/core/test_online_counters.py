"""Telemetry counters of the online selector: a scripted update sequence
with known cluster births, joins, a split, and a relabel, checked against
the exact counter values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlineFormatSelector
from repro.core.pipeline import FeaturePipeline
from repro.obs import TELEMETRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _make_selector() -> OnlineFormatSelector:
    # Identity-ish pipeline: no transform, no PCA, min-max over [0, 10]
    # so raw coordinates map to [0, 1] and distances are easy to script.
    pipe = FeaturePipeline(transform=None, n_components=None)
    pipe.fit(np.array([[0.0, 0.0], [10.0, 10.0]]))
    return OnlineFormatSelector(
        pipe, radius=0.15, min_purity=0.7, min_split_size=4
    )


#: (point, label) script.  Scaled coordinates are raw / 10.
SCRIPT = [
    # Cluster A near the origin: 2 csr + 2 coo -> purity 0.5 at the 4th
    # labeled member -> split into per-label subclusters.
    ((0.0, 0.0), "csr"),   # creates A
    ((0.3, 0.0), "csr"),   # joins A
    ((0.0, 0.3), "coo"),   # joins A
    ((0.3, 0.3), "coo"),   # joins A, triggers the split
    # Cluster B far away: ell then 2x hyb -> majority flips to hyb at the
    # third labeled member (a relabel event), too few members to split.
    ((9.0, 9.0), "ell"),   # creates B
    ((9.3, 9.0), "hyb"),   # joins B (tie keeps 'ell')
    ((9.0, 9.3), "hyb"),   # joins B, relabels B to 'hyb'
    # Cluster C: unlabeled traffic still shapes the clustering.
    ((5.0, 5.0), None),    # creates C
    ((5.2, 5.0), None),    # joins C
]


def _run_script(selector: OnlineFormatSelector) -> None:
    for point, label in SCRIPT:
        selector.observe(np.array(point), label)


def test_scripted_sequence_matches_counters():
    selector = _make_selector()
    TELEMETRY.enable()
    _run_script(selector)

    reg = TELEMETRY.registry
    assert reg.counter("online.observations").value == 9
    assert reg.counter("online.clusters_created").value == 3
    assert reg.counter("online.assignments").value == 6
    assert reg.counter("online.splits").value == 1
    assert reg.counter("online.relabels").value == 1
    # Labeled updates only count the join path (creations carry their
    # label into the fresh cluster instead).
    assert reg.counter("online.labeled_updates").value == 5
    assert reg.histogram("online.update_seconds").count == 9

    # Counters agree with the selector's own bookkeeping.
    assert selector.n_observed == 9
    assert selector.n_splits == 1
    # A split into csr+coo, B, C.
    assert selector.n_clusters == 4


def test_counters_match_state_mid_stream():
    selector = _make_selector()
    TELEMETRY.enable()
    for point, label in SCRIPT[:4]:
        selector.observe(np.array(point), label)
    reg = TELEMETRY.registry
    assert reg.counter("online.clusters_created").value == 1
    assert reg.counter("online.splits").value == 1
    assert reg.counter("online.relabels").value == 0
    assert selector.n_clusters == 2  # A split into csr/coo subclusters
    labels = {c.label for c in selector.clusters}
    assert labels == {"csr", "coo"}


def test_disabled_telemetry_records_nothing():
    selector = _make_selector()
    _run_script(selector)
    assert TELEMETRY.registry.names() == []
    # Behaviour itself is unchanged.
    assert selector.n_observed == 9
    assert selector.n_clusters == 4
    assert selector.n_splits == 1


class TestRejectedInputs:
    """Garbage feature vectors must not poison the running centroids."""

    def test_nonfinite_observe_rejected(self):
        selector = _make_selector()
        selector.observe(np.array([0.0, 0.0]), "csr")
        with pytest.raises(ValueError, match="non-finite"):
            selector.observe(np.array([np.nan, 0.0]), "csr")
        with pytest.raises(ValueError, match="non-finite"):
            selector.observe(np.array([np.inf, 0.0]), "coo")
        # State is untouched by the rejected updates.
        assert selector.n_observed == 1
        assert selector.n_clusters == 1
        np.testing.assert_array_equal(
            selector.clusters[0].centroid, selector._transform_one([0.0, 0.0])
        )

    def test_nonfinite_predict_rejected(self):
        selector = _make_selector()
        selector.observe(np.array([0.0, 0.0]), "csr")
        with pytest.raises(ValueError, match="non-finite"):
            selector.predict_one(np.array([np.nan, np.nan]))

    def test_rejections_counted(self):
        TELEMETRY.enable()
        selector = _make_selector()
        for _ in range(3):
            with pytest.raises(ValueError):
                selector.observe(np.array([np.nan, 0.0]), "csr")
        assert TELEMETRY.registry.counter("online.rejected").value == 3
