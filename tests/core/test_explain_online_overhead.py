"""Explainability, online selection, and overhead-conscious selection."""

import numpy as np
import pytest

from repro.core.explain import (
    cluster_profile,
    explain_prediction,
    format_explanation,
)
from repro.core.online import OnlineFormatSelector
from repro.core.overhead import (
    OverheadDecision,
    conversion_cost_seconds,
    select_with_overhead,
)
from repro.core.pipeline import FeaturePipeline
from repro.core.semisupervised import ClusterFormatSelector
from repro.datasets.generators import power_law_rows, stencil_2d
from repro.features.stats import compute_stats
from repro.gpu import PASCAL


@pytest.fixture(scope="module")
def fitted_selector(tiny_data):
    ds = tiny_data.datasets["pascal"]
    sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
    sel.fit(ds.X, ds.labels)
    return sel, ds


class TestExplain:
    def test_cluster_profile_fields(self, fitted_selector, tiny_data):
        sel, ds = fitted_selector
        prof = cluster_profile(
            sel, 0, ds.X, list(tiny_data.features.feature_names)
        )
        assert prof.size >= 1
        assert prof.label in {"csr", "ell", "coo", "hyb"}
        assert len(prof.feature_ranges) == 21
        lo, med, hi = prof.feature_ranges["nnz"]
        assert lo <= med <= hi
        assert len(prof.distinguishing_features) == 5

    def test_empty_cluster_rejected(self, fitted_selector, tiny_data):
        sel, ds = fitted_selector
        with pytest.raises(ValueError):
            cluster_profile(
                sel, 9999, ds.X, list(tiny_data.features.feature_names)
            )

    def test_explain_prediction(self, fitted_selector):
        sel, ds = fitted_selector
        expl = explain_prediction(sel, ds.X[0], ds.names, ds.labels)
        assert expl.label == sel.predict(ds.X[:1])[0]
        assert expl.distance_to_centroid >= 0
        assert 1 <= len(expl.nearest_training_names) <= 3
        # The sample itself is in the training set, so it must be its own
        # nearest neighbour.
        assert ds.names[0] in expl.nearest_training_names

    def test_format_explanation_text(self, fitted_selector):
        sel, ds = fitted_selector
        text = format_explanation(
            explain_prediction(sel, ds.X[0], ds.names, ds.labels)
        )
        assert "predicted format" in text
        assert "cluster #" in text


class TestOnline:
    def _pipeline(self, tiny_data):
        return FeaturePipeline().fit(tiny_data.features.values)

    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValueError):
            OnlineFormatSelector(FeaturePipeline())

    def test_streaming_learns_labels(self, tiny_data):
        ds = tiny_data.datasets["turing"]
        pipe = self._pipeline(tiny_data)
        online = OnlineFormatSelector(pipe, radius=0.3)
        # First pass: observe everything with labels.
        for x, lab in zip(ds.X, ds.labels):
            online.observe(x, str(lab))
        assert online.n_clusters >= 1
        # Second pass: predictions should now beat always-CSR... at least
        # match the majority baseline.
        pred = np.array([online.predict_one(x) for x in ds.X], dtype=object)
        acc = np.mean(pred == ds.labels)
        majority = max(
            np.mean(ds.labels == f) for f in ("csr", "ell", "coo", "hyb")
        )
        assert acc >= majority - 0.05

    def test_unlabeled_traffic_shapes_clusters(self, tiny_data):
        ds = tiny_data.datasets["turing"]
        pipe = self._pipeline(tiny_data)
        online = OnlineFormatSelector(pipe, radius=0.3)
        for x in ds.X[:20]:
            online.observe(x, None)
        assert online.n_clusters >= 1
        assert online.label_distribution()[None] == online.n_clusters

    def test_default_prediction_when_empty(self, tiny_data):
        pipe = self._pipeline(tiny_data)
        online = OnlineFormatSelector(pipe, default_format="csr")
        assert online.predict_one(tiny_data.features.values[0]) == "csr"

    def test_impure_cluster_splits(self, tiny_data):
        pipe = self._pipeline(tiny_data)
        # Giant radius: everything lands in one cluster; alternating labels
        # force a split once min_split_size labeled members accumulate.
        online = OnlineFormatSelector(
            pipe, radius=100.0, min_purity=0.9, min_split_size=6
        )
        X = tiny_data.features.values
        for i in range(12):
            online.observe(X[i % len(X)], "csr" if i % 2 else "ell")
        assert online.n_splits >= 1
        assert online.n_clusters >= 2

    def test_validation(self, tiny_data):
        pipe = self._pipeline(tiny_data)
        with pytest.raises(ValueError):
            OnlineFormatSelector(pipe, radius=0.0)


class TestOverhead:
    def test_conversion_cost_model(self):
        assert conversion_cost_seconds("ell", 1e-5) == pytest.approx(102e-5)
        with pytest.raises(ValueError):
            conversion_cost_seconds("bsr", 1e-5)

    def test_one_call_never_converts(self, rng):
        s = compute_stats(stencil_2d(rng, nx=40, ny=40))
        decision = select_with_overhead(s, PASCAL, n_spmv_calls=1)
        assert decision.chosen_format == "csr"
        assert not decision.converted

    def test_many_calls_converts_to_best(self, rng):
        s = compute_stats(stencil_2d(rng, nx=40, ny=40))
        decision = select_with_overhead(s, PASCAL, n_spmv_calls=100_000)
        assert decision.chosen_format == decision.qualitative_best
        assert decision.chosen_format == "ell"
        assert decision.converted

    def test_breakeven_monotone(self, rng):
        s = compute_stats(stencil_2d(rng, nx=40, ny=40))
        d = select_with_overhead(s, PASCAL, n_spmv_calls=100_000)
        # At the breakeven call count, conversion cost equals total saving.
        assert d.breakeven_calls == pytest.approx(
            d.conversion_cost / d.per_spmv_saving
        )

    def test_csr_best_matrix_stays_csr(self, rng):
        s = compute_stats(
            power_law_rows(rng, nrows=800, avg_nnz_per_row=16, alpha=2.0,
                           max_over_mean=1.8)
        )
        decision = select_with_overhead(s, PASCAL, n_spmv_calls=10)
        assert isinstance(decision, OverheadDecision)
        assert decision.breakeven_calls >= 0

    def test_validation(self, rng):
        s = compute_stats(stencil_2d(rng, nx=10, ny=10))
        with pytest.raises(ValueError):
            select_with_overhead(s, PASCAL, n_spmv_calls=0)
        with pytest.raises(ValueError):
            select_with_overhead(s, PASCAL, 5, base_format="bsr")
