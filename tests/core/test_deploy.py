"""Frozen selectors: freeze / predict-parity / save / load / relabel."""

import numpy as np
import pytest

from repro.core.deploy import FrozenSelector, _rebuild_pipeline, freeze
from repro.core.semisupervised import ClusterFormatSelector


@pytest.fixture(scope="module", params=["kmeans", "meanshift", "birch"])
def frozen_pair(request, tiny_data):
    ds = tiny_data.datasets["volta"]
    nc = None if request.param == "meanshift" else 12
    sel = ClusterFormatSelector(request.param, "vote", nc, seed=0)
    sel.fit(ds.X, ds.labels)
    return sel, freeze(sel), ds


def test_frozen_predictions_match_live(frozen_pair):
    sel, frozen, ds = frozen_pair
    np.testing.assert_array_equal(frozen.predict(ds.X), sel.predict(ds.X))


def test_frozen_transform_matches_pipeline(frozen_pair):
    sel, frozen, ds = frozen_pair
    np.testing.assert_allclose(
        frozen.transform(ds.X),
        sel.pipeline_.transform_features(ds.X),
        atol=1e-12,
    )


def test_save_load_roundtrip(frozen_pair, tmp_path):
    _, frozen, ds = frozen_pair
    path = tmp_path / "selector.npz"
    frozen.save(path)
    loaded = FrozenSelector.load(path)
    np.testing.assert_array_equal(loaded.predict(ds.X), frozen.predict(ds.X))
    np.testing.assert_allclose(loaded.centroids, frozen.centroids)


def test_relabel_swaps_labels_only(frozen_pair, tiny_data):
    _, frozen, ds = frozen_pair
    # Port to Pascal: relabel centroids with pascal's labels via a live
    # selector vote on the common matrices.
    new_labels = np.array(
        ["coo"] * frozen.n_centroids, dtype=object
    )
    ported = frozen.relabel(new_labels)
    assert set(ported.predict(ds.X)) == {"coo"}
    np.testing.assert_allclose(ported.centroids, frozen.centroids)


def test_relabel_validates_length(frozen_pair):
    _, frozen, _ = frozen_pair
    with pytest.raises(ValueError):
        frozen.relabel(np.array(["csr"], dtype=object))


def test_freeze_requires_labeled_selector(tiny_data):
    ds = tiny_data.datasets["volta"]
    sel = ClusterFormatSelector("kmeans", "vote", 8, seed=0)
    sel.fit_clusters(ds.X)
    with pytest.raises(ValueError):
        freeze(sel)


def test_rebuilt_pipeline_equivalent(frozen_pair):
    _, frozen, ds = frozen_pair
    pipe = _rebuild_pipeline(frozen)
    np.testing.assert_allclose(
        pipe.transform_features(ds.X), frozen.transform(ds.X), atol=1e-12
    )


def test_no_pca_no_transform_variant(tiny_data, tmp_path):
    from repro.core.pipeline import FeaturePipeline

    ds = tiny_data.datasets["volta"]
    sel = ClusterFormatSelector(
        "kmeans", "vote", 8,
        pipeline=FeaturePipeline(transform=None, n_components=None),
        seed=0,
    )
    sel.fit(ds.X, ds.labels)
    frozen = freeze(sel)
    path = tmp_path / "plain.npz"
    frozen.save(path)
    loaded = FrozenSelector.load(path)
    np.testing.assert_array_equal(loaded.predict(ds.X), sel.predict(ds.X))


def test_version_check(tmp_path, frozen_pair):
    _, frozen, _ = frozen_pair
    path = tmp_path / "bad.npz"
    frozen.save(path)
    # Corrupt the version field.
    data = dict(np.load(path, allow_pickle=False))
    data["version"] = np.array([999])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        FrozenSelector.load(path)


class TestFallbackSelector:
    """Graceful degradation: inference keeps answering without a model."""

    def test_healthy_model_passthrough(self, frozen_pair, tmp_path):
        from repro.core.deploy import FallbackSelector

        _, frozen, ds = frozen_pair
        path = tmp_path / "selector.npz"
        frozen.save(path)
        fallback = FallbackSelector.load(path)
        assert not fallback.degraded
        assert fallback.error is None
        np.testing.assert_array_equal(
            fallback.predict(ds.X), frozen.predict(ds.X)
        )
        assert fallback.predict_one(ds.X[0]) == frozen.predict(ds.X[:1])[0]

    def test_missing_model_degrades_to_csr(self, tmp_path):
        from repro.core.deploy import FallbackSelector

        fallback = FallbackSelector.load(tmp_path / "missing.npz")
        assert fallback.degraded
        assert "FileNotFoundError" in fallback.error
        out = fallback.predict(np.zeros((3, 21)))
        assert list(out) == ["csr", "csr", "csr"]

    def test_corrupt_model_degrades(self, tmp_path):
        from repro.core.deploy import FallbackSelector

        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"not an npz archive")
        fallback = FallbackSelector.load(path)
        assert fallback.degraded
        assert fallback.predict_one(np.zeros(21)) == "csr"

    def test_custom_fallback_format(self, tmp_path):
        from repro.core.deploy import FallbackSelector

        fallback = FallbackSelector.load(
            tmp_path / "missing.npz", fallback_format="coo"
        )
        assert fallback.predict_one(np.zeros(21)) == "coo"

    def test_predict_time_failure_degrades_that_call(
        self, frozen_pair, tmp_path
    ):
        from repro.core.deploy import FallbackSelector

        _, frozen, ds = frozen_pair
        path = tmp_path / "selector.npz"
        frozen.save(path)
        fallback = FallbackSelector.load(path)
        # Wrong feature dimensionality makes the frozen transform blow
        # up; the wrapper answers with the fallback instead of raising.
        out = fallback.predict(np.zeros((2, 3)))
        assert list(out) == ["csr", "csr"]
        assert fallback.error is not None

    def test_degraded_load_counts_in_telemetry(self, tmp_path):
        from repro.core.deploy import FallbackSelector
        from repro.obs import TELEMETRY

        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            fallback = FallbackSelector.load(tmp_path / "missing.npz")
            fallback.predict(np.zeros((2, 21)))
            registry = TELEMETRY.registry
            assert registry.counter("deploy.fallback_loads").value == 1
            assert registry.counter("deploy.fallback_predictions").value == 2
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
