"""Feature pipeline, purity, and speedup metrics."""

import numpy as np
import pytest

from repro.core.pipeline import FeaturePipeline
from repro.core.purity import cluster_purity, purity_report
from repro.core.speedup import speedup_metrics
from repro.ml.base import NotFittedError


class TestFeaturePipeline:
    def test_output_dim_with_pca(self, tiny_data):
        X = tiny_data.features.values
        pipe = FeaturePipeline(n_components=8).fit(X)
        Z = pipe.transform_features(X)
        assert Z.shape == (X.shape[0], 8)
        assert pipe.output_dim == 8

    def test_no_pca(self, tiny_data):
        X = tiny_data.features.values
        pipe = FeaturePipeline(n_components=None).fit(X)
        Z = pipe.transform_features(X)
        assert Z.shape == X.shape
        # Without PCA the scaled output stays in the unit box.
        assert Z.min() >= 0.0 and Z.max() <= 1.0

    def test_no_transform_stage(self, tiny_data):
        X = tiny_data.features.values
        pipe = FeaturePipeline(transform=None, n_components=4).fit(X)
        assert pipe.transform_features(X).shape == (X.shape[0], 4)

    def test_transform_reduces_dynamic_range(self, tiny_data):
        # The paper's point: nnz-like features span orders of magnitude;
        # the log transform compresses them.
        X = tiny_data.features.values
        raw = FeaturePipeline(transform=None, n_components=None).fit(X)
        logd = FeaturePipeline(transform="log", n_components=None).fit(X)
        j = tiny_data.features.feature_names.index("nnz")
        spread_raw = np.std(raw.transform_features(X)[:, j])
        spread_log = np.std(logd.transform_features(X)[:, j])
        # Min-max scaled: log-transformed nnz occupies the range far more
        # evenly (higher std) than the outlier-squashed raw scaling.
        assert spread_log > spread_raw

    def test_not_fitted(self, tiny_data):
        with pytest.raises(NotFittedError):
            FeaturePipeline().transform_features(tiny_data.features.values)

    def test_deterministic(self, tiny_data):
        X = tiny_data.features.values
        Z1 = FeaturePipeline().fit(X).transform_features(X)
        Z2 = FeaturePipeline().fit(X).transform_features(X)
        np.testing.assert_allclose(Z1, Z2)


class TestPurity:
    def test_pure_clusters(self):
        labels = np.array(["a", "a", "b", "b"], dtype=object)
        assignments = np.array([0, 0, 1, 1])
        assert cluster_purity(labels, assignments) == 1.0

    def test_mixed_cluster(self):
        labels = np.array(["a", "a", "b", "b"], dtype=object)
        assignments = np.array([0, 0, 0, 1])
        # Cluster 0: majority a (2/3); cluster 1: pure. (2+1)/4.
        assert cluster_purity(labels, assignments) == pytest.approx(0.75)

    def test_single_cluster_equals_majority_fraction(self):
        labels = np.array(["csr"] * 7 + ["ell"] * 3, dtype=object)
        assignments = np.zeros(10, dtype=int)
        assert cluster_purity(labels, assignments) == pytest.approx(0.7)

    def test_purity_is_vote_upper_bound(self, tiny_data):
        from repro.core.semisupervised import ClusterFormatSelector
        from repro.ml.metrics import accuracy_score

        ds = tiny_data.datasets["volta"]
        sel = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
        sel.fit(ds.X, ds.labels)
        train_acc = accuracy_score(ds.labels, sel.predict(ds.X))
        purity = cluster_purity(ds.labels, sel.train_assignments_)
        assert train_acc <= purity + 1e-9

    def test_report_sorted_by_size(self):
        labels = np.array(["a"] * 5 + ["b"] * 2, dtype=object)
        assignments = np.array([0, 0, 0, 1, 1, 2, 2])
        report = purity_report(labels, assignments)
        assert [s.size for s in report] == [3, 2, 2]
        assert report[0].majority_format == "a"
        assert report[0].purity == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_purity(np.array(["a"]), np.array([0, 1]))
        with pytest.raises(ValueError):
            cluster_purity(np.array([]), np.array([]))


class TestSpeedupMetrics:
    def _times(self):
        return [
            {"csr": 1.0, "ell": 0.5, "coo": 2.0},  # ell best
            {"csr": 1.0, "ell": 2.0, "coo": 3.0},  # csr best
        ]

    def test_oracle_predictions(self):
        m = speedup_metrics(np.array(["ell", "csr"], dtype=object), self._times())
        assert m.gt_speedup == pytest.approx(1.0)
        # csr/pred: 1/0.5=2 and 1/1=1 -> geomean sqrt(2)
        assert m.csr_speedup == pytest.approx(np.sqrt(2.0))
        assert m.threshold_count == 0

    def test_always_csr(self):
        m = speedup_metrics(np.array(["csr", "csr"], dtype=object), self._times())
        assert m.csr_speedup == pytest.approx(1.0)
        assert m.gt_speedup == pytest.approx(np.sqrt(0.5))

    def test_bad_prediction_counts_threshold(self):
        m = speedup_metrics(np.array(["coo", "coo"], dtype=object), self._times())
        # coo is 2x and 3x slower than csr: both >= 1.5 slowdowns.
        assert m.threshold_count == 2
        assert m.gt_speedup < 1.0

    def test_infeasible_prediction_charged_worst(self):
        times = [{"csr": 1.0, "coo": 4.0}]
        m = speedup_metrics(np.array(["ell"], dtype=object), times)
        assert m.csr_speedup == pytest.approx(0.25)

    def test_gt_never_exceeds_one(self, tiny_data):
        ds = tiny_data.datasets["pascal"]
        rng = np.random.default_rng(0)
        random_pred = rng.choice(
            np.array(["csr", "ell", "coo", "hyb"], dtype=object), len(ds)
        )
        m = speedup_metrics(random_pred, ds.times)
        assert m.gt_speedup <= 1.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_metrics(np.array(["csr"], dtype=object), [])
