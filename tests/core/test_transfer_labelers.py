"""Transfer with the model-based cluster labelers (LR / RF)."""

import numpy as np
import pytest

from repro.core.semisupervised import ClusterFormatSelector
from repro.core.transfer import transfer_semisupervised
from repro.ml.model_selection import train_test_split


@pytest.mark.parametrize("labeler", ["lr", "rf"])
def test_model_labelers_in_transfer(labeler, tiny_data):
    src = tiny_data.common["pascal"]
    tgt = tiny_data.common["turing"]
    train, test = train_test_split(len(src), 0.3, y=src.labels, seed=0)
    sel = ClusterFormatSelector("kmeans", labeler, 10, seed=0)
    scores = transfer_semisupervised(sel, src, tgt, train, test, 0.25)
    assert 0.0 <= scores.accuracy <= 1.0
    assert -1.0 <= scores.mcc <= 1.0


@pytest.mark.parametrize("labeler", ["lr", "rf"])
def test_model_labeler_uses_combined_evidence(labeler, tiny_data):
    """With source_y, the model labeler trains on source + target labels."""
    ds = tiny_data.common["volta"]
    other = tiny_data.common["pascal"]
    sel = ClusterFormatSelector("kmeans", labeler, 10, seed=0)
    sel.fit_clusters(ds.X)
    mask = np.zeros(len(ds), dtype=bool)
    mask[:10] = True
    sel.label_clusters(ds.labels, benchmarked=mask, source_y=other.labels)
    assert len(sel.cluster_labels_) == sel.n_clusters_
    assert set(sel.cluster_labels_) <= {"csr", "ell", "coo", "hyb"}


def test_zero_fraction_equals_source_only_vote(tiny_data):
    """At 0% retraining the VOTE transfer must reproduce pure source labels."""
    src = tiny_data.common["turing"]
    tgt = tiny_data.common["volta"]
    train, test = train_test_split(len(src), 0.3, y=src.labels, seed=0)

    sel_a = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
    scores_a = transfer_semisupervised(sel_a, src, tgt, train, test, 0.0)

    sel_b = ClusterFormatSelector("kmeans", "vote", 10, seed=0)
    sel_b.fit_clusters(src.X[train])
    sel_b.label_clusters(src.labels[train])
    pred_b = sel_b.predict(tgt.X[test])
    from repro.ml.metrics import accuracy_score

    assert scores_a.accuracy == pytest.approx(
        accuracy_score(tgt.labels[test], pred_b)
    )
