"""Frozen-selector artifact validation and fallback cause accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deploy import (
    FallbackSelector,
    FrozenSelector,
    ModelFormatError,
)
from repro.obs import TELEMETRY
from repro.serving.drill import synthetic_frozen_selector


@pytest.fixture
def saved_model(tmp_path):
    path = tmp_path / "model.npz"
    synthetic_frozen_selector(seed=1, n_centroids=5).save(path)
    return path


def _arrays(path) -> dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k] for k in data.files}


def _resave(path, arrays: dict) -> None:
    np.savez(path, **arrays)


def test_roundtrip_loads(saved_model):
    selector = FrozenSelector.load(saved_model)
    assert selector.n_centroids == 5
    assert all(isinstance(lbl, str) for lbl in selector.centroid_labels)


def test_missing_file_stays_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        FrozenSelector.load(tmp_path / "absent.npz")


def test_unreadable_bytes(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an npz archive at all")
    with pytest.raises(ModelFormatError, match="unreadable"):
        FrozenSelector.load(path)


def test_missing_version_marker(saved_model):
    arrays = _arrays(saved_model)
    del arrays["version"]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="version"):
        FrozenSelector.load(saved_model)


def test_unsupported_version(saved_model):
    arrays = _arrays(saved_model)
    arrays["version"] = np.array([999])
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="version 999"):
        FrozenSelector.load(saved_model)


def test_missing_required_array(saved_model):
    arrays = _arrays(saved_model)
    del arrays["centroids"]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="centroids"):
        FrozenSelector.load(saved_model)


def test_wrong_rank(saved_model):
    arrays = _arrays(saved_model)
    arrays["scaler_min"] = arrays["scaler_min"][None, :]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="1-D"):
        FrozenSelector.load(saved_model)


def test_wrong_dtype(saved_model):
    arrays = _arrays(saved_model)
    arrays["centroids"] = arrays["centroids"].astype("U8")
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="numeric"):
        FrozenSelector.load(saved_model)


def test_non_finite_arrays(saved_model):
    arrays = _arrays(saved_model)
    arrays["centroids"][0, 0] = np.nan
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="non-finite"):
        FrozenSelector.load(saved_model)


def test_label_count_mismatch(saved_model):
    arrays = _arrays(saved_model)
    arrays["centroid_labels"] = arrays["centroid_labels"][:-1]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="labels"):
        FrozenSelector.load(saved_model)


def test_scaler_shape_mismatch(saved_model):
    arrays = _arrays(saved_model)
    arrays["scaler_span"] = arrays["scaler_span"][:-1]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="shapes differ"):
        FrozenSelector.load(saved_model)


def test_centroid_dim_mismatch(saved_model):
    arrays = _arrays(saved_model)
    arrays["centroids"] = arrays["centroids"][:, :-1]
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="centroids"):
        FrozenSelector.load(saved_model)


def test_bad_transform_kind(saved_model):
    arrays = _arrays(saved_model)
    n = arrays["scaler_min"].shape[0]
    arrays["transform_kind"] = np.array(["exp"])
    arrays["transform_shift"] = np.zeros(n)
    arrays["transform_apply"] = np.ones(n, dtype=bool)
    _resave(saved_model, arrays)
    with pytest.raises(ModelFormatError, match="transform kind"):
        FrozenSelector.load(saved_model)


# -- FallbackSelector cause accounting --------------------------------------


@pytest.fixture
def telemetry():
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield TELEMETRY
    TELEMETRY.disable()
    TELEMETRY.reset()


def _counter(telemetry, name: str) -> int:
    counter = telemetry.registry.get(name)
    return 0 if counter is None else counter.value


def test_fallback_cause_missing_model(tmp_path, telemetry):
    fallback = FallbackSelector.load(tmp_path / "absent.npz")
    assert fallback.degraded and fallback.cause == "missing_model"
    out = fallback.predict(np.zeros((3, 21)))
    assert list(out) == ["csr"] * 3
    assert _counter(telemetry, "deploy.fallback_loads") == 1
    assert _counter(telemetry, "deploy.fallback_cause.missing_model") == 4


def test_fallback_cause_model_format(tmp_path, telemetry):
    path = tmp_path / "corrupt.npz"
    path.write_bytes(b"garbage")
    fallback = FallbackSelector.load(path)
    assert fallback.cause == "model_format"
    fallback.predict(np.zeros((2, 21)))
    assert _counter(telemetry, "deploy.fallback_cause.model_format") == 3


def test_fallback_cause_predict_error(saved_model, telemetry):
    fallback = FallbackSelector.load(saved_model)
    assert not fallback.degraded and fallback.cause is None
    out = fallback.predict(np.zeros((2, 5)))  # wrong feature count
    assert list(out) == ["csr"] * 2
    assert fallback.cause == "predict_error"
    assert _counter(telemetry, "deploy.fallback_cause.predict_error") == 2


def test_healthy_load_counts_nothing(saved_model, telemetry):
    fallback = FallbackSelector.load(saved_model)
    fallback.predict(np.zeros((2, 21)))
    assert _counter(telemetry, "deploy.fallback_loads") == 0
    assert _counter(telemetry, "deploy.fallback_predictions") == 0
