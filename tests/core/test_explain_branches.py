"""Branch coverage for the explainability module.

``test_explain_online_overhead.py`` exercises the happy path on the full
mini-campaign; these tests pin the less-travelled branches — unlabeled
selectors, missing training labels, empty neighbour lists — on a small
synthetic fit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explain import (
    PredictionExplanation,
    cluster_profile,
    explain_prediction,
    format_explanation,
)
from repro.core.semisupervised import ClusterFormatSelector
from repro.features.extract import FEATURE_NAMES

N_FEATURES = len(FEATURE_NAMES)


@pytest.fixture(scope="module")
def synth():
    rng = np.random.default_rng(42)
    X = np.abs(rng.normal(size=(60, N_FEATURES))) * 10.0
    labels = np.array(
        ["csr" if x else "ell" for x in X[:, 0] > np.median(X[:, 0])],
        dtype=object,
    )
    names = [f"m{i:03d}" for i in range(X.shape[0])]
    return X, labels, names


@pytest.fixture(scope="module")
def labeled_selector(synth):
    X, labels, _ = synth
    return ClusterFormatSelector("kmeans", "vote", 4, seed=0).fit(X, labels)


def test_cluster_profile_unlabeled_selector(synth):
    X, _, _ = synth
    sel = ClusterFormatSelector("kmeans", "vote", 4, seed=0)
    sel.fit_clusters(X)  # clusters exist, labels never assigned
    cluster = int(sel.train_assignments_[0])
    prof = cluster_profile(sel, cluster, X, list(FEATURE_NAMES))
    assert prof.label == "<unlabeled>"
    assert prof.size >= 1


def test_cluster_profile_top_k_clamps(labeled_selector, synth):
    X, _, _ = synth
    cluster = int(labeled_selector.train_assignments_[0])
    prof = cluster_profile(
        labeled_selector, cluster, X, list(FEATURE_NAMES), top_k=3
    )
    assert len(prof.distinguishing_features) == 3
    assert set(prof.feature_ranges) == set(FEATURE_NAMES)


def test_explain_prediction_requires_labels(synth):
    X, _, names = synth
    sel = ClusterFormatSelector("kmeans", "vote", 4, seed=0)
    sel.fit_clusters(X)
    with pytest.raises(ValueError, match="labeled"):
        explain_prediction(sel, X[0], names)


def test_explain_prediction_without_training_labels(labeled_selector, synth):
    X, _, names = synth
    expl = explain_prediction(labeled_selector, X[0], names, None)
    assert expl.cluster_purity_hint == "no labeled members available"
    assert expl.cluster_size >= 1


def test_explain_prediction_with_labels_reports_purity(
    labeled_selector, synth
):
    X, labels, names = synth
    expl = explain_prediction(labeled_selector, X[0], names, labels)
    assert "training members agree" in expl.cluster_purity_hint
    assert expl.label == labeled_selector.predict(X[:1])[0]
    assert 1 <= len(expl.nearest_training_names) <= 3


def test_format_explanation_with_neighbours(labeled_selector, synth):
    X, labels, names = synth
    expl = explain_prediction(labeled_selector, X[0], names, labels)
    text = format_explanation(expl)
    assert f"predicted format: {expl.label}" in text
    assert "most similar training matrices:" in text
    assert "distance to centroid:" in text


def test_format_explanation_without_neighbours():
    expl = PredictionExplanation(
        cluster=2,
        label="hyb",
        distance_to_centroid=1.25,
        cluster_size=0,
        cluster_purity_hint="no labeled members available",
        nearest_training_names=[],
    )
    text = format_explanation(expl)
    assert "predicted format: hyb" in text
    assert "most similar" not in text
    assert "1.2500" in text
