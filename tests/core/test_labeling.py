"""Labeled-dataset assembly and common subsets."""

import numpy as np
import pytest

from repro.core.labeling import (
    LabeledDataset,
    build_labeled_dataset,
    common_subset,
)
from repro.gpu.simulator import BenchmarkResult


def test_datasets_only_contain_runnable(tiny_data):
    for arch, ds in tiny_data.datasets.items():
        by_name = {r.name: r for r in tiny_data.results[arch]}
        for name in ds.names:
            assert by_name[name].runnable


def test_labels_are_argmin_of_times(tiny_data):
    ds = tiny_data.datasets["pascal"]
    for label, times in zip(ds.labels, ds.times):
        assert label == min(times, key=times.get)


def test_class_distribution_sums_to_len(tiny_data):
    ds = tiny_data.datasets["volta"]
    assert sum(ds.class_distribution().values()) == len(ds)


def test_subset_by_names(tiny_data):
    ds = tiny_data.datasets["turing"]
    picked = ds.names[2:5]
    sub = ds.subset_by_names(picked)
    assert sub.names == picked
    np.testing.assert_array_equal(sub.labels, ds.labels[2:5])


def test_common_subset_alignment(tiny_data):
    names = None
    for arch, ds in tiny_data.common.items():
        if names is None:
            names = ds.names
        assert ds.names == names


def test_common_subset_is_intersection(tiny_data):
    shared = set.intersection(
        *(set(ds.names) for ds in tiny_data.datasets.values())
    )
    assert set(tiny_data.common["pascal"].names) == shared


def test_common_no_shared_matrices_raises(tiny_data):
    a = tiny_data.datasets["pascal"].subset([0, 1])
    b = tiny_data.datasets["volta"]
    b_disjoint = b.subset_by_names(
        [n for n in b.names if n not in a.names][:2]
    )
    with pytest.raises(ValueError):
        common_subset({"a": a, "b": b_disjoint})


def test_build_rejects_all_excluded(tiny_data):
    results = [
        BenchmarkResult(n, "x", {"csr": 1.0}, excluded={"ell": "nope"})
        for n in tiny_data.features.names
    ]
    with pytest.raises(ValueError):
        build_labeled_dataset("x", tiny_data.features, results)


def test_labeled_dataset_validation(tiny_data):
    ds = tiny_data.datasets["pascal"]
    with pytest.raises(ValueError):
        LabeledDataset(
            arch="x",
            features=ds.features,
            labels=ds.labels[:-1],
            times=ds.times,
        )
    with pytest.raises(ValueError):
        LabeledDataset(
            arch="x",
            features=ds.features,
            labels=ds.labels,
            times=ds.times[:-1],
        )
