"""Batch ≡ single equivalence harness (DESIGN §11).

The headline guarantee of the inference engine is bit-identity:
``predict_batch(X)[i] == predict(X[i:i+1])[0]`` for every model family,
every input dtype, and every shard count.  Hypothesis drives batches of
arbitrary size — including empty, singleton, and duplicate-row batches —
drawn from a fixed vector pool so fitted models are reused across
examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import HYPOTHESIS_SCALE

from repro.inference import BatchPredictor, plan_shards
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.cluster.birch import Birch
from repro.ml.cluster.kmeans import KMeans
from repro.ml.cluster.meanshift import MeanShift
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linalg import pairwise_sq_dists, rs_matmul_t
from repro.ml.logistic import LogisticRegression
from repro.ml.pca import PCA
from repro.ml.preprocessing import (
    MinMaxScaler,
    SparseDistributionTransformer,
    StandardScaler,
)
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier
from repro.serving import synthetic_frozen_selector

POOL_SIZE = 48
N_FEATURES = 6
SHARD_COUNTS = (1, 2, 7)

# Batches are index lists into a fixed pool: duplicates and empties fall
# out of the strategy naturally, and fitted models are built only once.
batch_indices = st.lists(
    st.integers(min_value=0, max_value=POOL_SIZE - 1),
    min_size=0,
    max_size=24,
)


@pytest.fixture(scope="module")
def pool() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.normal(size=(POOL_SIZE, N_FEATURES)) * 2.0 + 0.5


@pytest.fixture(scope="module")
def train(pool) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    X = rng.normal(size=(60, N_FEATURES)) * 2.0 + 0.5
    formats = np.array(["coo", "csr", "ell"], dtype=object)
    y = formats[(X[:, 0] + X[:, 1] > 1.0).astype(int) + (X[:, 2] > 0.5)]
    return X, y


@pytest.fixture(scope="module")
def cluster_models(train):
    X, _ = train
    return {
        "kmeans": KMeans(n_clusters=5, n_init=2, seed=0).fit(X),
        "meanshift": MeanShift(bandwidth=3.0, seed=0).fit(X),
        "birch": Birch(n_clusters=4, threshold=0.5, seed=0).fit(X),
    }


@pytest.fixture(scope="module")
def supervised_models(train):
    X, y = train
    return {
        "knn": KNeighborsClassifier(n_neighbors=3).fit(X, y),
        "svc_linear": SVC(kernel="linear", seed=0).fit(X, y),
        "svc_rbf": SVC(kernel="rbf", seed=0).fit(X, y),
        "logistic": LogisticRegression(max_iter=50).fit(X, y),
        "tree": DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y),
        "forest": RandomForestClassifier(
            n_estimators=8, max_depth=4, seed=0
        ).fit(X, y),
        "boosting": GradientBoostingClassifier(
            n_rounds=8, max_depth=3, seed=0
        ).fit(X, y),
    }


def assert_batch_equals_single(model, X: np.ndarray) -> None:
    batch = model.predict_batch(X)
    assert batch.shape[0] == X.shape[0]
    for i in range(X.shape[0]):
        single = model.predict(X[i : i + 1])[0]
        assert batch[i] == single, (
            f"row {i}: batch={batch[i]!r} single={single!r}"
        )


# -- model families ------------------------------------------------------


@pytest.mark.parametrize("name", ["kmeans", "meanshift", "birch"])
@settings(max_examples=30 * HYPOTHESIS_SCALE, deadline=None)
@given(idx=batch_indices)
def test_cluster_batch_equals_single(cluster_models, pool, name, idx):
    assert_batch_equals_single(cluster_models[name], pool[idx])


@pytest.mark.parametrize(
    "name",
    [
        "knn",
        "svc_linear",
        "svc_rbf",
        "logistic",
        "tree",
        "forest",
        "boosting",
    ],
)
@settings(max_examples=30 * HYPOTHESIS_SCALE, deadline=None)
@given(idx=batch_indices)
def test_supervised_batch_equals_single(supervised_models, pool, name, idx):
    assert_batch_equals_single(supervised_models[name], pool[idx])


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_batch_equivalence_across_dtypes(
    cluster_models, supervised_models, pool, dtype
):
    X = pool[:9].astype(dtype)
    for model in (*cluster_models.values(), *supervised_models.values()):
        assert_batch_equals_single(model, X)


def test_empty_batch_returns_empty(cluster_models, supervised_models, pool):
    empty = np.empty((0, N_FEATURES))
    for model in (*cluster_models.values(), *supervised_models.values()):
        out = model.predict_batch(empty)
        assert out.shape == (0,)


def test_duplicate_rows_get_identical_answers(supervised_models, pool):
    X = np.repeat(pool[3:4], 5, axis=0)
    for model in supervised_models.values():
        out = model.predict_batch(X)
        assert all(v == out[0] for v in out)


def test_batch_rejects_non_finite(supervised_models):
    X = np.full((2, N_FEATURES), np.nan)
    with pytest.raises(ValueError, match="non-finite"):
        supervised_models["knn"].predict_batch(X)


# -- preprocessing / PCA -------------------------------------------------


def test_transform_batch_matches_transform(train, pool):
    X, _ = train
    stages = [
        SparseDistributionTransformer().fit(X),
        MinMaxScaler().fit(X),
        StandardScaler().fit(X),
        PCA(n_components=3).fit(X),
    ]
    for stage in stages:
        got = stage.transform_batch(pool)
        want = np.vstack([stage.transform(pool[i : i + 1]) for i in range(len(pool))])
        np.testing.assert_array_equal(got, want)
        assert stage.transform_batch(np.empty((0, N_FEATURES))).shape[0] == 0


# -- row-stable kernels --------------------------------------------------


@settings(max_examples=30 * HYPOTHESIS_SCALE, deadline=None)
@given(idx=st.lists(st.integers(0, POOL_SIZE - 1), min_size=1, max_size=16))
def test_rs_matmul_t_is_row_stable(pool, idx):
    B = pool[:10]
    full = rs_matmul_t(pool[idx], B)
    for k, i in enumerate(idx):
        row = rs_matmul_t(pool[i : i + 1], B)[0]
        np.testing.assert_array_equal(full[k], row)


@settings(max_examples=30 * HYPOTHESIS_SCALE, deadline=None)
@given(idx=st.lists(st.integers(0, POOL_SIZE - 1), min_size=1, max_size=16))
def test_pairwise_sq_dists_is_row_stable(pool, idx):
    B = pool[:10]
    full = pairwise_sq_dists(pool[idx], B)
    for k, i in enumerate(idx):
        row = pairwise_sq_dists(pool[i : i + 1], B)[0]
        np.testing.assert_array_equal(full[k], row)


# -- shard planner -------------------------------------------------------


@pytest.mark.parametrize("n_items", [0, 1, 5, 53])
@pytest.mark.parametrize("shard_size", [None, 1, 3, 8])
def test_plan_shards_covers_batch_in_order(n_items, shard_size):
    plan = plan_shards(n_items, jobs=1, shard_size=shard_size)
    assert plan.n_items == n_items
    covered = [i for shard in plan for i in range(shard.start, shard.stop)]
    assert covered == list(range(n_items))
    assert all(shard.size > 0 for shard in plan)
    assert [shard.index for shard in plan] == list(range(plan.n_shards))


def test_plan_shards_zero_items_is_empty():
    plan = plan_shards(0, jobs=4)
    assert plan.n_shards == 0


def test_plan_shards_rejects_negative():
    with pytest.raises(ValueError):
        plan_shards(-1)


def test_plan_shards_hits_target_shard_counts():
    # shard_size chosen so n=53 splits into exactly 1, 2, and 7 shards.
    for count, size in [(1, 53), (2, 27), (7, 8)]:
        assert plan_shards(53, jobs=1, shard_size=size).n_shards == count


# -- BatchPredictor over a frozen selector -------------------------------


@pytest.fixture(scope="module")
def frozen():
    return synthetic_frozen_selector(seed=3)


@pytest.fixture(scope="module")
def frozen_pool(frozen):
    rng = np.random.default_rng(5)
    return np.abs(
        rng.normal(size=(POOL_SIZE, frozen.scaler_min.shape[0]))
    )


@settings(max_examples=25 * HYPOTHESIS_SCALE, deadline=None)
@given(
    idx=st.lists(st.integers(0, POOL_SIZE - 1), min_size=0, max_size=24),
    shard_size=st.sampled_from([None, 1, 3, 8]),
)
def test_batch_predictor_matches_single_path(
    frozen, frozen_pool, idx, shard_size
):
    X = frozen_pool[idx]
    predictor = BatchPredictor(frozen)
    report = predictor.predict_sharded(X, jobs=1, shard_size=shard_size)
    assert len(report.items) == len(idx)
    for item, i in zip(report.items, range(len(idx))):
        assert item.index == i
        assert item.source == "model"
        row = X[i : i + 1]
        assert item.label == frozen.predict(row)[0]
        assert item.centroid == frozen.assign(row)[0]
        assert item.distance == frozen.nearest_distance(row)[0]


@pytest.mark.parametrize("size,count", [(53, 1), (27, 2), (8, 7)])
def test_batch_predictor_shard_count_invariance(
    frozen, frozen_pool, size, count
):
    X = np.vstack([frozen_pool, frozen_pool[:5]])  # 53 rows
    baseline = BatchPredictor(frozen).predict_sharded(X, jobs=1)
    report = BatchPredictor(frozen).predict_sharded(
        X, jobs=1, shard_size=size
    )
    assert report.plan.n_shards == count
    assert [i.label for i in report.items] == [
        i.label for i in baseline.items
    ]
    assert [i.distance for i in report.items] == [
        i.distance for i in baseline.items
    ]


def test_batch_predictor_empty_batch(frozen):
    report = BatchPredictor(frozen).predict_sharded(
        np.empty((0, frozen.scaler_min.shape[0]))
    )
    assert report.items == []
    assert report.plan.n_shards == 0


def test_degraded_predictor_answers_with_fallback(frozen_pool):
    from repro.core.deploy import FallbackSelector

    degraded = FallbackSelector(
        selector=None, fallback_format="csr", cause="load_error"
    )
    report = BatchPredictor(degraded).predict_sharded(frozen_pool[:4])
    assert [i.label for i in report.items] == ["csr"] * 4
    assert all(i.source == "fallback" for i in report.items)
    assert report.n_fallback == 4
