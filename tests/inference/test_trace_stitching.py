"""Stitched request traces across the sharded inference pool.

The acceptance contract for end-to-end tracing: one
``inference.request`` root per batch, worker shard spans adopted under
it regardless of worker count, and — critically — predictions that are
byte-identical with telemetry on or off and for any ``jobs`` value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import BatchPredictor
from repro.obs import TELEMETRY
from repro.serving import synthetic_frozen_selector


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


@pytest.fixture(scope="module")
def predictor():
    return BatchPredictor(synthetic_frozen_selector(seed=3))


@pytest.fixture(scope="module")
def X(predictor):
    rng = np.random.default_rng(5)
    n_features = predictor.frozen.centroids.shape[1]
    return rng.random((24, n_features))


def _spans_by_name(name):
    return [s for s in TELEMETRY.tracer.walk() if s.name == name]


def test_single_stitched_trace_with_shard_spans(predictor, X):
    TELEMETRY.enable()
    report = predictor.predict_sharded(X, jobs=4, shard_size=6)
    assert report.plan.n_shards == 4

    roots = TELEMETRY.tracer.roots
    assert [r.name for r in roots] == ["inference.request"]
    root = roots[0]
    trace_id = root.attrs["trace"]

    shards = _spans_by_name("inference.shard")
    assert sorted(s.attrs["shard"] for s in shards) == [0, 1, 2, 3]
    # Every shard span descends from the request root, not a sibling
    # trace: walk up via the children lists.
    under_root = set()
    pending = list(root.children)
    while pending:
        s = pending.pop()
        under_root.add(id(s))
        pending.extend(s.children)
    assert all(id(s) in under_root for s in shards)
    # Worker chunks carry the propagated trace id.
    chunks = _spans_by_name("runtime.worker_chunk")
    assert chunks and all(c.attrs["trace"] == trace_id for c in chunks)


def test_inline_jobs1_traces_without_workers(predictor, X):
    TELEMETRY.enable()
    predictor.predict_sharded(X, jobs=1)
    roots = TELEMETRY.tracer.roots
    assert [r.name for r in roots] == ["inference.request"]
    assert _spans_by_name("inference.shard")  # recorded inline


def test_predictions_identical_any_jobs_any_telemetry(predictor, X):
    baseline = predictor.predict_sharded(X, jobs=1)
    base_json = [item.to_json() for item in baseline.items]
    for jobs in (1, 4):
        for enabled in (False, True):
            TELEMETRY.reset()
            TELEMETRY.enable() if enabled else TELEMETRY.disable()
            report = predictor.predict_sharded(X, jobs=jobs, shard_size=6)
            got = [item.to_json() for item in report.items]
            assert got == base_json, (
                f"divergence at jobs={jobs} telemetry={enabled}"
            )
