"""Table generators: every table produces well-formed, in-range rows."""

import pytest

from repro.experiments import table2, table3, table4, table5, table6, table7, table8, table9
from repro.experiments.common import TableResult
from repro.experiments.table4 import COMBO_NAMES, best_nc, evaluate_combo
from repro.experiments.table5 import transfer_pairs
from repro.experiments.table7 import transfer_scenarios


class TestTableResult:
    def test_add_row_validates_width(self):
        t = TableResult("T", "title", ["a", "b"])
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_access(self):
        t = TableResult("T", "title", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_renderings(self):
        t = TableResult("T", "title", ["a"])
        t.add_row(0.123456)
        assert "0.123" in t.format_text()
        md = t.to_markdown()
        assert md.startswith("### T: title")
        assert "| a |" in md


class TestTable2:
    def test_three_rows(self):
        result = table2.generate()
        assert len(result.rows) == 3
        models = result.column("Model")
        assert "GeForce GTX 1080" in models


class TestTable3:
    def test_totals_consistent(self, tiny_data):
        result = table3.generate(tiny_data)
        total_row = result.rows[-1]
        assert total_row[0] == "Total"
        for j, arch in enumerate(tiny_data.arch_names, start=1):
            col_sum = sum(r[j] for r in result.rows[:-1])
            assert col_sum == total_row[j] == len(tiny_data.datasets[arch])

    def test_common_columns_equal_across_archs(self, tiny_data):
        result = table3.generate(tiny_data)
        n_arch = len(tiny_data.arch_names)
        totals = result.rows[-1][1 + n_arch :]
        assert len(set(totals)) == 1  # same common-subset size everywhere


class TestTable4Helpers:
    def test_evaluate_combo_ranges(self, tiny_data):
        ds = tiny_data.datasets["volta"]
        scores = evaluate_combo(ds, "kmeans", "vote", 10, 3, seed=0)
        assert 0 <= scores["ACC"] <= 1
        assert -1 <= scores["MCC"] <= 1
        assert scores["NC"] == 10

    def test_best_nc_picks_from_grid(self, tiny_data):
        ds = tiny_data.datasets["volta"]
        nc, scores = best_nc(ds, "kmeans", "vote", (5, 10), 3)
        assert nc in (5, 10)
        assert scores["MCC"] >= -1

    def test_meanshift_ignores_grid(self, tiny_data):
        ds = tiny_data.datasets["volta"]
        nc, scores = best_nc(ds, "meanshift", "vote", (5, 10), 3)
        assert nc is None

    def test_combo_names_cover_nine(self):
        assert len(COMBO_NAMES) == 9


class TestTable4:
    def test_full_generation(self, tiny_data):
        result = table4.generate(tiny_data)
        assert len(result.rows) == 9 * len(tiny_data.arch_names)
        for mcc in result.column("MCC"):
            assert -1 <= mcc <= 1
        for acc in result.column("ACC"):
            assert 0 <= acc <= 1


class TestTable5:
    def test_pairs(self):
        pairs = transfer_pairs(["a", "b", "c"])
        assert len(pairs) == 6
        assert ("a", "a") not in pairs

    def test_generation_shape(self, tiny_data):
        result = table5.generate(tiny_data)
        assert len(result.rows) == 6 * 9
        for col in ("MCC@0%", "MCC@25%", "MCC@50%"):
            for v in result.column(col):
                assert -1 <= v <= 1


class TestTable6:
    def test_generation(self, tiny_data):
        result = table6.generate(tiny_data, models=("DT", "KNN", "CNN"))
        assert len(result.rows) == 3 * len(tiny_data.arch_names)
        for gt in result.column("GT"):
            assert gt <= 1.0 + 1e-9
        for acc in result.column("ACC"):
            assert 0 <= acc <= 100


class TestTable7:
    def test_scenarios_omit_volta_to_pascal(self):
        scen = transfer_scenarios(["pascal", "volta", "turing"])
        assert ("volta", "pascal") not in scen
        assert len(scen) == 5

    def test_generation(self, tiny_data):
        result = table7.generate(tiny_data, models=("DT",))
        assert len(result.rows) == 5
        for v in result.column("GT@0%"):
            assert v <= 1.0 + 1e-9


class TestTable8:
    def test_rows(self, tiny_data):
        result = table8.generate(tiny_data)
        values = dict(zip(result.column("Row"), result.column("Value")))
        assert values["conversion cost ELL (x CSR SpMV)"] == 102.0
        hours = [
            v for k, v in values.items() if k.startswith("benchmarking time")
        ]
        assert len(hours) == 3
        assert all(h > 0 for h in hours)


class TestTable9:
    def test_generation(self, tiny_data):
        result = table9.generate(
            tiny_data, models=("DT", "K-Means-VOTE", "K-Means-RF")
        )
        assert len(result.rows) == 3
        for row in result.rows:
            assert all(v >= 0 for v in row[1:])

    def test_kmeans_vote_cheaper_than_rf_variant(self, tiny_data):
        result = table9.generate(
            tiny_data, models=("K-Means-VOTE", "K-Means-RF")
        )
        vote = result.rows[0][1]
        rf = result.rows[1][1]
        assert vote <= rf
