"""Graceful degradation of the campaign under injected faults, plus
checkpoint/resume: the campaign completes with quarantined records
excluded, survivors byte-identical to a fault-free run, and a killed
campaign resumes without redoing completed benchmarks."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import (
    DegradationReport,
    build_experiment_data,
    checkpoint_key,
)
from repro.obs import TELEMETRY
from repro.runtime import ArtifactCache, FaultSpec, RetryPolicy
from repro.runtime.faults import CampaignAbort

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0)


@pytest.fixture(scope="module")
def chaos_config():
    return ExperimentConfig.small(
        collection_size=40,
        trials=3,
        faults=FaultSpec(failure_rate=0.3, corruption_rate=0.05, seed=11),
        retry=FAST_RETRY,
    )


@pytest.fixture(scope="module")
def clean_data(chaos_config):
    clean = dataclasses.replace(chaos_config, faults=None, retry=None)
    return build_experiment_data(clean, use_cache=False)


@pytest.fixture(scope="module")
def chaotic_data(chaos_config):
    return build_experiment_data(chaos_config, use_cache=False)


def _counter(name):
    c = TELEMETRY.registry.get(name)
    return 0 if c is None else c.value


class TestGracefulDegradation:
    def test_campaign_completes_with_quarantine(self, chaotic_data):
        report = chaotic_data.degradation
        assert isinstance(report, DegradationReport)
        assert report.n_records == 40
        assert report.n_quarantined > 0
        assert report.n_survivors == 40 - report.n_quarantined
        assert len(chaotic_data.features) == report.n_survivors
        assert "quarantine:" in report.to_text()

    def test_quarantined_names_excluded_everywhere(self, chaotic_data):
        bad = set(chaotic_data.degradation.quarantine.names)
        assert bad
        names = chaotic_data.features.names
        assert not bad & set(names)
        assert [s for s in chaotic_data.stats] and \
            len(chaotic_data.stats) == len(names)
        for arch in chaotic_data.arch_names:
            results = chaotic_data.results[arch]
            assert [r.name for r in results] == names

    def test_survivors_byte_identical_to_clean_run(
        self, clean_data, chaotic_data
    ):
        clean_index = {
            name: i for i, name in enumerate(clean_data.features.names)
        }
        rows = [clean_index[n] for n in chaotic_data.features.names]
        np.testing.assert_array_equal(
            clean_data.features.values[rows], chaotic_data.features.values
        )
        for arch in clean_data.arch_names:
            clean_by_name = dict(
                zip(clean_data.features.names, clean_data.results[arch])
            )
            for name, result in zip(
                chaotic_data.features.names, chaotic_data.results[arch]
            ):
                reference = clean_by_name[name]
                assert result.times == reference.times
                assert result.best_format == reference.best_format
                assert result.excluded == reference.excluded

    def test_labels_identical_for_surviving_matrices(
        self, clean_data, chaotic_data
    ):
        for arch in clean_data.arch_names:
            clean_ds = clean_data.datasets[arch]
            chaos_ds = chaotic_data.datasets[arch]
            clean_labels = dict(
                zip(clean_ds.features.names, clean_ds.labels)
            )
            assert set(chaos_ds.features.names) <= set(clean_labels)
            for name, label in zip(chaos_ds.features.names, chaos_ds.labels):
                assert label == clean_labels[name]

    def test_records_property_excludes_quarantined(self, chaotic_data):
        fresh = dataclasses.replace(chaotic_data, _records=None)
        rebuilt = fresh.records
        assert [r.name for r in rebuilt] == chaotic_data.features.names

    def test_degraded_campaign_never_persisted(self, chaos_config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        data = build_experiment_data(
            chaos_config, use_cache=False, cache_dir=cache_dir
        )
        assert data.degradation.n_quarantined > 0
        cache = ArtifactCache(cache_dir)
        assert list(cache.entries()) == []  # no artifact, no checkpoint

    def test_env_var_injects_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail=0.3,seed=11")
        config = ExperimentConfig.small(
            collection_size=30, trials=2, retry=FAST_RETRY
        )
        data = build_experiment_data(config, use_cache=False)
        assert data.degradation is not None
        assert data.degradation.n_quarantined > 0

    def test_retry_only_config_reports_clean_run(self):
        config = ExperimentConfig.small(
            collection_size=20, trials=2, retry=FAST_RETRY
        )
        data = build_experiment_data(config, use_cache=False)
        assert data.degradation is not None
        assert data.degradation.n_quarantined == 0
        assert data.degradation.n_survivors == 20


class TestCheckpointResume:
    def test_abort_leaves_checkpoint_and_resume_completes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = ExperimentConfig.small(collection_size=25, trials=2)
        # 25 stats tasks and one 10-task benchmark batch complete (and
        # checkpoint), then the abort fires mid-way through the second
        # benchmark batch of the 75-task stage.
        killed = dataclasses.replace(
            base,
            faults=FaultSpec(abort_after=40),
            retry=FAST_RETRY,
            checkpoint_every=10,
        )
        with pytest.raises(CampaignAbort):
            build_experiment_data(
                killed, use_cache=False, cache_dir=cache_dir
            )
        cache = ArtifactCache(cache_dir)
        assert cache.contains(checkpoint_key(base))

        clean = build_experiment_data(base, use_cache=False)

        resumed_config = dataclasses.replace(base, resume=True)
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            resumed = build_experiment_data(
                resumed_config, use_cache=False, cache_dir=cache_dir
            )
            benchmark_calls = _counter("gpu.benchmark_calls")
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

        report = resumed.degradation
        assert report.resumed_stats == 25
        assert report.resumed_benchmarks > 0
        # The resumed run re-executed only the missing benchmark tasks.
        assert benchmark_calls == 75 - report.resumed_benchmarks
        assert benchmark_calls < 75

        # Checkpoint retired; the canonical artifact took its place.
        assert not cache.contains(checkpoint_key(base))
        assert list(cache.entries()) != []

        # And the stitched-together results are byte-identical.
        np.testing.assert_array_equal(
            clean.features.values, resumed.features.values
        )
        assert clean.features.names == resumed.features.names
        for arch in clean.arch_names:
            np.testing.assert_array_equal(
                clean.datasets[arch].labels, resumed.datasets[arch].labels
            )
            for a, b in zip(clean.results[arch], resumed.results[arch]):
                assert a.times == b.times

    def test_resume_without_checkpoint_is_a_full_run(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = ExperimentConfig.small(
            collection_size=15, trials=2, resume=True
        )
        data = build_experiment_data(
            config, use_cache=False, cache_dir=cache_dir
        )
        assert data.degradation.resumed_stats == 0
        assert data.degradation.resumed_benchmarks == 0
        assert len(data.features) == 15

    def test_stale_checkpoint_schema_ignored(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = ExperimentConfig.small(collection_size=12, trials=2)
        cache = ArtifactCache(cache_dir)
        cache.store(checkpoint_key(base), {"schema": -1, "stats": {}})
        config = dataclasses.replace(base, resume=True)
        data = build_experiment_data(
            config, use_cache=False, cache_dir=cache_dir
        )
        assert data.degradation.resumed_stats == 0
        assert len(data.features) == 12
