"""Golden regression snapshot of the paper's headline tables.

The seeded mini-campaign (the session-scoped ``tiny_data`` fixture) is
fully deterministic, so Tables 4–7 — the ACC/F1/MCC and GT/CSR speedup
numbers the paper's conclusions rest on — can be pinned exactly.  Any
change to feature extraction, clustering, model training, or evaluation
that shifts a metric shows up here as a cell-level diff.

Floats are rounded to 6 decimals before comparison, which survives the
JSON round-trip bit-exactly while leaving headroom below the metrics'
meaningful precision.

To regenerate after an *intentional* change:

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_tables.py

then review the golden diff like any other code change (see TESTING.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    spmm,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.config import ExperimentConfig

GOLDEN_PATH = Path(__file__).parent / "goldens" / "tables_4_7.json"
SPMV_GOLDEN_PATH = Path(__file__).parent / "goldens" / "tables_2_9_spmv.json"
TABLE10_GOLDEN_PATH = Path(__file__).parent / "goldens" / "table10.json"

GENERATORS = {
    "table4": table4.generate,
    "table5": table5.generate,
    "table6": table6.generate,
    "table7": table7.generate,
}


def _cell(value):
    """JSON-stable cell: rounded builtin float / builtin int / str."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (float, np.floating)):
        return round(float(value), 6)
    if isinstance(value, (int, np.integer)):
        return int(value)
    return str(value)


def snapshot(data) -> dict:
    out = {}
    for key, generate in GENERATORS.items():
        table = generate(data)
        out[key] = {
            "headers": list(table.headers),
            "rows": [[_cell(v) for v in row] for row in table.rows],
        }
    return out


def test_tables_4_to_7_match_goldens(tiny_data):
    snap = snapshot(tiny_data)
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"goldens rewritten at {GOLDEN_PATH}")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"no golden file at {GOLDEN_PATH}; generate one with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(snap) == sorted(golden), "table set changed"
    for key in GENERATORS:
        assert snap[key]["headers"] == golden[key]["headers"], (
            f"{key}: headers changed"
        )
        got_rows, want_rows = snap[key]["rows"], golden[key]["rows"]
        assert len(got_rows) == len(want_rows), (
            f"{key}: {len(got_rows)} rows, golden has {len(want_rows)}"
        )
        for i, (got, want) in enumerate(zip(got_rows, want_rows)):
            for header, g, w in zip(snap[key]["headers"], got, want):
                assert g == w, (
                    f"{key} row {i} [{header}]: got {g!r}, golden {w!r} "
                    "(REPRO_UPDATE_GOLDENS=1 regenerates after an "
                    "intentional change)"
                )


def _table_snap(table) -> dict:
    return {
        "headers": list(table.headers),
        "rows": [[_cell(v) for v in row] for row in table.rows],
    }


def spmv_snapshot(data) -> dict:
    """Tables 2/3/8 cell-exact plus Table 9's structure (cells are wall-clock)."""
    out = {
        "table2": _table_snap(table2.generate(data)),
        "table3": _table_snap(table3.generate(data)),
        "table8": _table_snap(table8.generate(data)),
    }
    t9 = table9.generate(data)
    out["table9"] = {
        "headers": list(t9.headers),
        "rows": [[_cell(row[0])] for row in t9.rows],
    }
    return out


def test_tables_2_9_spmv_identity(tiny_data):
    """The op-aware layer leaves the SpMV campaign byte-identical.

    The golden was snapshotted from the pre-SpMM tree on the same seeded
    tiny campaign; ``op="spmv"`` defaults everywhere must keep every
    Table 2/3/8 cell (and Table 9's structure) exactly as it was.
    """
    snap = spmv_snapshot(tiny_data)
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        SPMV_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        SPMV_GOLDEN_PATH.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"goldens rewritten at {SPMV_GOLDEN_PATH}")
    if not SPMV_GOLDEN_PATH.exists():
        pytest.fail(
            f"no golden file at {SPMV_GOLDEN_PATH}; generate one with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    golden = json.loads(SPMV_GOLDEN_PATH.read_text())
    assert snap == golden, (
        "SpMV-path outputs changed — the op extension must be inert at "
        "op='spmv' (REPRO_UPDATE_GOLDENS=1 regenerates only after an "
        "intentional change)"
    )


#: Table 10's own seeded mini-campaign: smaller than ``tiny_config``
#: because it benchmarks every matrix under three ops.
TABLE10_CONFIG = ExperimentConfig(
    collection_size=96,
    augment_copies=0,
    trials=5,
    n_folds=3,
    nc_grid=(10, 25),
)


def test_table10_matches_golden():
    snap = {"table10": _table_snap(spmm.generate(config=TABLE10_CONFIG))}
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        TABLE10_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        TABLE10_GOLDEN_PATH.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"goldens rewritten at {TABLE10_GOLDEN_PATH}")
    if not TABLE10_GOLDEN_PATH.exists():
        pytest.fail(
            f"no golden file at {TABLE10_GOLDEN_PATH}; generate one with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    golden = json.loads(TABLE10_GOLDEN_PATH.read_text())
    assert snap == golden, (
        "Table 10 changed (REPRO_UPDATE_GOLDENS=1 regenerates after an "
        "intentional change)"
    )
    # The golden itself must encode the acceptance criterion.
    quantities = [row[0] for row in golden["table10"]["rows"]]
    beats = golden["table10"]["rows"][
        quantities.index("selector beats best static")
    ][1]
    assert beats == "yes"


def test_golden_metrics_are_in_range():
    """The committed golden itself stays sane (metrics in [-1, 1])."""
    if not GOLDEN_PATH.exists():
        pytest.skip("goldens not generated yet")
    golden = json.loads(GOLDEN_PATH.read_text())
    for key, table in golden.items():
        for header, column in zip(
            table["headers"], zip(*table["rows"]) if table["rows"] else []
        ):
            if header.startswith(("F1", "MCC")):
                for v in column:
                    assert -1.0 <= v <= 1.0, f"{key} {header}: {v}"
            elif header.startswith("ACC"):
                # Tables 4–5 report fractions, 6–7 the paper's percents.
                for v in column:
                    assert 0.0 <= v <= 100.0, f"{key} {header}: {v}"
