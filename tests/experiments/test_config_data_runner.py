"""Experiment configuration, data caching, and the CLI runner."""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import _CACHE, build_experiment_data, campaign_key
from repro.experiments.runner import TABLE_MODULES, main, run_all


class TestConfig:
    def test_presets(self):
        small = ExperimentConfig.small()
        paper = ExperimentConfig.paper()
        assert small.collection_size < paper.collection_size
        assert small.n_folds <= paper.n_folds

    def test_hashable_for_caching(self):
        a = ExperimentConfig.small()
        b = ExperimentConfig.small()
        assert a == b
        assert hash(a) == hash(b)


class TestDataBuilder:
    def test_cache_hit_returns_same_object(self, tiny_config, tiny_data):
        again = build_experiment_data(tiny_config)
        assert again is tiny_data

    def test_cache_bypass(self, tiny_config):
        fresh = build_experiment_data(tiny_config, use_cache=False)
        cached = _CACHE[campaign_key(tiny_config)]
        assert fresh is not cached
        np.testing.assert_array_equal(
            fresh.datasets["volta"].labels,
            cached.datasets["volta"].labels,
        )

    def test_augmentation_grows_records(self):
        cfg = ExperimentConfig(
            collection_size=10, augment_copies=2, trials=2, n_folds=2,
            nc_grid=(4,),
        )
        data = build_experiment_data(cfg, use_cache=False)
        assert len(data.records) == 30

    def test_arch_names(self, tiny_data):
        assert tiny_data.arch_names == ["pascal", "volta", "turing"]


class TestRunner:
    def test_table_modules_complete(self):
        assert sorted(TABLE_MODULES) == sorted(
            f"table{i}" for i in range(2, 11)
        )

    def test_run_subset_and_markdown(self, tmp_path, capsys):
        cfg = ExperimentConfig(
            collection_size=40, augment_copies=0, trials=2, n_folds=2,
            nc_grid=(5,),
        )
        md = tmp_path / "report.md"
        results = run_all(cfg, only=["table2", "table3"], markdown_path=str(md))
        assert set(results) == {"table2", "table3"}
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        text = md.read_text()
        assert text.startswith("### Table 2")

    def test_cli_main(self, capsys):
        code = main(["--small", "--only", "table2"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out
