"""The paper-shape claims validator."""

import numpy as np

from repro.experiments.validate import ClaimResult, check_claims, render


def test_claims_evaluate(tiny_data):
    claims = check_claims(tiny_data)
    assert len(claims) >= 10
    for c in claims:
        assert isinstance(c, ClaimResult)
        assert c.measured  # every claim carries evidence strings
        assert c.paper_evidence


def test_core_claims_hold_on_tiny_data(tiny_data):
    claims = {c.claim: c.holds for c in check_claims(tiny_data)}
    # The most robust shape claims must hold even at test scale.
    assert claims["CSR is the majority class on every architecture"]
    assert claims["no model beats the oracle (GT <= 1)"]
    assert claims[
        "every Mean-Shift variant loses to the best K-Means variant"
    ]
    # Overall, the vast majority of shape claims hold.
    assert np.mean(list(claims.values())) >= 0.8


def test_render(tiny_data):
    claims = check_claims(tiny_data)
    text = render(claims)
    assert "claims hold" in text
    assert text.count("paper:") == len(claims)
