"""The campaign's hard requirements: worker-count-independent results and
a warm cache that re-executes zero generator/simulator work."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_experiment_data, campaign_key
from repro.obs import TELEMETRY


@pytest.fixture(scope="module")
def mini_config():
    return ExperimentConfig(
        collection_size=30, augment_copies=1, trials=3, n_folds=2,
        nc_grid=(4,),
    )


@pytest.fixture(scope="module")
def serial_data(mini_config):
    return build_experiment_data(mini_config, use_cache=False, jobs=1)


def _counter(name):
    c = TELEMETRY.registry.get(name)
    return 0 if c is None else c.value


class TestJobsIdentity:
    def test_features_byte_identical(self, mini_config, serial_data):
        parallel = build_experiment_data(mini_config, use_cache=False, jobs=2)
        assert serial_data.features.values.tobytes() == \
            parallel.features.values.tobytes()
        assert serial_data.features.names == parallel.features.names

    def test_labels_and_times_identical(self, mini_config, serial_data):
        parallel = build_experiment_data(mini_config, use_cache=False, jobs=2)
        for arch in serial_data.arch_names:
            np.testing.assert_array_equal(
                serial_data.datasets[arch].labels,
                parallel.datasets[arch].labels,
            )
            for a, b in zip(serial_data.results[arch], parallel.results[arch]):
                assert a.name == b.name
                assert a.times == b.times
                assert a.excluded == b.excluded

    def test_config_jobs_field_used_as_default(self, mini_config, serial_data):
        import dataclasses

        cfg = dataclasses.replace(mini_config, jobs=2)
        parallel = build_experiment_data(cfg, use_cache=False)
        assert serial_data.features.values.tobytes() == \
            parallel.features.values.tobytes()


class TestDiskCache:
    def test_warm_run_identical_and_campaign_free(self, mini_config, tmp_path):
        cache_dir = str(tmp_path / "artifacts")
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            cold = build_experiment_data(
                mini_config, use_cache=False, cache_dir=cache_dir
            )
            assert _counter("runtime.cache.misses") == 1
            assert _counter("runtime.cache.stores") == 1
            assert _counter("datasets.matrices_generated") > 0
            assert _counter("gpu.benchmark_calls") > 0

            TELEMETRY.reset()
            warm = build_experiment_data(
                mini_config, use_cache=False, cache_dir=cache_dir
            )
            # Zero generator/simulator work on the warm path.
            assert _counter("runtime.cache.hits") == 1
            assert _counter("datasets.matrices_generated") == 0
            assert _counter("gpu.benchmark_calls") == 0
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

        assert cold.features.values.tobytes() == warm.features.values.tobytes()
        for arch in cold.arch_names:
            np.testing.assert_array_equal(
                cold.datasets[arch].labels, warm.datasets[arch].labels
            )
            np.testing.assert_array_equal(
                cold.common[arch].labels, warm.common[arch].labels
            )
        assert [s.nnz for s in warm.stats] == [s.nnz for s in cold.stats]

    def test_warm_records_rebuild_lazily(self, mini_config, tmp_path):
        cache_dir = str(tmp_path / "artifacts")
        cold = build_experiment_data(
            mini_config, use_cache=False, cache_dir=cache_dir
        )
        warm = build_experiment_data(
            mini_config, use_cache=False, cache_dir=cache_dir
        )
        assert warm._records is None  # matrices are not persisted
        rebuilt = warm.records  # triggers generation-only rebuild
        assert [r.name for r in rebuilt] == [r.name for r in cold.records]
        assert all(
            a.matrix.nnz == b.matrix.nnz
            for a, b in zip(rebuilt, cold.records)
        )

    def test_corrupt_artifact_falls_back_to_rebuild(
        self, mini_config, tmp_path
    ):
        from repro.runtime import ArtifactCache

        cache_dir = str(tmp_path / "artifacts")
        build_experiment_data(mini_config, use_cache=False, cache_dir=cache_dir)
        key = campaign_key(mini_config)
        cache = ArtifactCache(cache_dir)
        (cache.entry_dir(key) / "artifact.pkl").write_bytes(b"garbage")
        data = build_experiment_data(
            mini_config, use_cache=False, cache_dir=cache_dir
        )
        assert len(data.features) > 0
        # The rebuild repaired the entry.
        assert cache.load(key) is not None


class TestCampaignKey:
    def test_analysis_and_execution_knobs_share_key(self, mini_config):
        import dataclasses

        variants = [
            dataclasses.replace(mini_config, n_folds=5),
            dataclasses.replace(mini_config, nc_grid=(8, 16)),
            dataclasses.replace(mini_config, jobs=4),
            dataclasses.replace(mini_config, cache_dir="/elsewhere"),
            dataclasses.replace(mini_config, transfer_test_fraction=0.5),
        ]
        base = campaign_key(mini_config)
        assert all(campaign_key(v) == base for v in variants)

    def test_campaign_knobs_change_key(self, mini_config):
        import dataclasses

        base = campaign_key(mini_config)
        assert campaign_key(dataclasses.replace(mini_config, seed=1)) != base
        assert campaign_key(
            dataclasses.replace(mini_config, collection_size=31)
        ) != base
        assert campaign_key(dataclasses.replace(mini_config, trials=4)) != base
        assert campaign_key(
            dataclasses.replace(mini_config, augment_copies=0)
        ) != base

    def test_memo_shared_across_analysis_knobs(self, mini_config):
        import dataclasses

        first = build_experiment_data(mini_config)
        other = dataclasses.replace(mini_config, n_folds=5)
        second = build_experiment_data(other)
        assert second.config == other  # config rebound to the caller's
        assert second.features is first.features  # campaign shared
