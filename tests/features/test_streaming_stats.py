"""StreamingStats ≡ compute_stats, bit for bit, on generator families.

The accumulator must produce *exactly* the :class:`MatrixStats` the
two-array in-memory pass produces — every scalar equal under ``==``
(no tolerances) and ``row_lengths`` identical in dtype and bytes —
regardless of how the coordinate stream is chunked.  The same holds one
level up: :func:`stats_from_stream` and
:func:`extract_features_streaming` against their in-memory
counterparts, across symmetries, duplicate policies, and chunk sizes.
"""

import io

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, extract_features
from repro.features.extract import (
    CHEAP_FEATURE_INDICES,
    CHEAP_FEATURE_NAMES,
    cheap_features_from_lengths,
    extract_features_streaming,
    stats_from_stream,
)
from repro.features.stats import MatrixStats, StreamingStats, compute_stats
from repro.formats import COOMatrix, ReadPolicy, read_matrix_market
from repro.formats.io import matrix_market_string

CHUNK_SIZES = (1, 3, 17, 100_000)


# -- coordinate generator families -----------------------------------------


def _uniform(rng, nrows, ncols):
    """Uniform scatter: the collection generator's default texture."""
    nnz = int(rng.integers(1, nrows * ncols // 2 + 2))
    flat = rng.choice(nrows * ncols, size=min(nnz, nrows * ncols),
                      replace=False)
    return np.divmod(flat, ncols)


def _banded(rng, nrows, ncols):
    """Entries hugging the main diagonal: exercises band/offset stats."""
    rows = rng.integers(0, nrows, size=3 * max(nrows, 1))
    offsets = rng.integers(-3, 4, size=rows.size)
    cols = np.clip(rows + offsets, 0, ncols - 1)
    keys = np.unique(rows * ncols + cols)
    return keys // ncols, keys % ncols

def _skewed(rng, nrows, ncols):
    """A few hot rows hold most entries: exercises sig_* and warp stats."""
    hot = rng.integers(0, nrows)
    rows = np.where(
        rng.random(4 * max(ncols, 1)) < 0.7,
        hot,
        rng.integers(0, nrows, size=4 * max(ncols, 1)),
    )
    cols = rng.integers(0, ncols, size=rows.size)
    keys = np.unique(rows * ncols + cols)
    return keys // ncols, keys % ncols


def _single_column(rng, nrows, ncols):
    c = int(rng.integers(0, ncols))
    rows = np.arange(nrows, dtype=np.int64)
    return rows, np.full(nrows, c, dtype=np.int64)


def _empty(rng, nrows, ncols):
    return (np.array([], dtype=np.int64), np.array([], dtype=np.int64))


FAMILIES = {
    "uniform": _uniform,
    "banded": _banded,
    "skewed": _skewed,
    "single_column": _single_column,
    "empty": _empty,
}


def _assert_stats_identical(got: MatrixStats, want: MatrixStats):
    assert got.nrows == want.nrows
    assert got.ncols == want.ncols
    assert got.nnz == want.nnz
    assert got.row_lengths.dtype == want.row_lengths.dtype
    assert got.row_lengths.tobytes() == want.row_lengths.tobytes()
    assert got.n_diagonals == want.n_diagonals
    assert got.band_fraction == want.band_fraction
    assert got.mean_abs_offset == want.mean_abs_offset
    assert got.warp_divergence_slots == want.warp_divergence_slots
    assert got.csr_max == want.csr_max
    assert got.hyb_width == want.hyb_width
    assert got.hyb_ell_entries == want.hyb_ell_entries
    assert got.hyb_coo_entries == want.hyb_coo_entries


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", range(5))
def test_streaming_stats_bit_identical_to_compute_stats(family, seed):
    rng = np.random.default_rng(seed * 101 + 7)
    nrows = int(rng.integers(1, 80))
    ncols = int(rng.integers(1, 80))
    rows, cols = FAMILIES[family](rng, nrows, ncols)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    matrix = COOMatrix((nrows, ncols), rows, cols, np.ones(rows.size))
    want = compute_stats(matrix)
    for chunk in CHUNK_SIZES:
        acc = StreamingStats(nrows, ncols)
        for lo in range(0, rows.size, chunk):
            acc.update(rows[lo:lo + chunk], cols[lo:lo + chunk])
        _assert_stats_identical(acc.finalize(), want)


def test_streaming_stats_rejects_out_of_range_coordinates():
    acc = StreamingStats(4, 4)
    with pytest.raises(ValueError):
        acc.update([4], [0])
    with pytest.raises(ValueError):
        acc.update([0], [-1])


def test_streaming_stats_requires_positive_shape():
    with pytest.raises(ValueError):
        StreamingStats(0, 3)


# -- one level up: stats/features straight from MatrixMarket text ----------


def _matrix_text(seed: int, symmetry: str) -> str:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 20))
    nrows, ncols = (n, n) if symmetry != "general" else (
        n, int(rng.integers(2, 20))
    )
    rows, cols = _uniform(rng, nrows, ncols)
    if symmetry == "symmetric":
        keep = rows >= cols
        rows, cols = rows[keep], cols[keep]
    elif symmetry == "skew-symmetric":
        keep = rows > cols
        rows, cols = rows[keep], cols[keep]
    vals = rng.uniform(0.5, 2.0, size=rows.size)
    text = matrix_market_string(
        COOMatrix((nrows, ncols), rows, cols, vals)
    )
    if symmetry != "general":
        text = text.replace("general", symmetry)
        # Drop the mirrored upper triangle the writer materialized; a
        # symmetric file stores the lower triangle only.
        lines = text.splitlines()
        body = [ln for ln in lines[2:]
                if int(ln.split()[0]) >= int(ln.split()[1])]
        header = lines[1].split()
        header[2] = str(len(body))
        text = "\n".join([lines[0], " ".join(header)] + body) + "\n"
    return text


@pytest.mark.parametrize("symmetry", ["general", "symmetric"])
@pytest.mark.parametrize("duplicates", ["sum", "reject"])
@pytest.mark.parametrize("seed", range(4))
def test_stats_from_stream_matches_in_memory(symmetry, duplicates, seed):
    text = _matrix_text(seed * 13 + 1, symmetry)
    policy = ReadPolicy(duplicates=duplicates)
    matrix = read_matrix_market(io.StringIO(text), policy)
    want = compute_stats(matrix)
    for chunk in CHUNK_SIZES:
        got = stats_from_stream(
            io.StringIO(text), policy, chunk_nnz=chunk
        )
        _assert_stats_identical(got, want)


@pytest.mark.parametrize("symmetry", ["general", "symmetric"])
@pytest.mark.parametrize("seed", range(4))
def test_extract_features_streaming_bit_identical(symmetry, seed, tmp_path):
    text = _matrix_text(seed * 7 + 3, symmetry)
    want = extract_features(read_matrix_market(io.StringIO(text)))
    got = extract_features_streaming(io.StringIO(text))
    assert got.tobytes() == want.tobytes()
    # And via the file-path (mmap) route.
    path = tmp_path / "m.mtx"
    path.write_text(text)
    assert extract_features_streaming(str(path)).tobytes() == want.tobytes()


def test_duplicate_heavy_stream_matches_in_memory():
    """Duplicate and mirror-colliding entries: the dedup replay path."""
    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "4 4 6\n"
        "2 1 1.0\n"
        "2 1 2.0\n"
        "3 3 1.0\n"
        "4 1 1.0\n"
        "4 1 3.0\n"
        "2 2 1.0\n"
    )
    matrix = read_matrix_market(io.StringIO(text))
    want = compute_stats(matrix)
    for chunk in CHUNK_SIZES:
        got = stats_from_stream(io.StringIO(text), chunk_nnz=chunk)
        _assert_stats_identical(got, want)


# -- the cheap feature head -------------------------------------------------


def test_cheap_features_are_a_prefix_view_of_the_full_vector():
    assert len(CHEAP_FEATURE_NAMES) == len(CHEAP_FEATURE_INDICES)
    for name, idx in zip(CHEAP_FEATURE_NAMES, CHEAP_FEATURE_INDICES):
        assert FEATURE_NAMES[idx] == name


@pytest.mark.parametrize("seed", range(8))
def test_cheap_features_bit_identical_to_full_vector_slice(seed):
    rng = np.random.default_rng(seed + 40)
    nrows = int(rng.integers(1, 60))
    ncols = int(rng.integers(1, 60))
    rows, cols = _uniform(rng, nrows, ncols)
    matrix = COOMatrix(
        (nrows, ncols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.ones(len(rows)),
    )
    full = extract_features(matrix)
    cheap = cheap_features_from_lengths(
        nrows, ncols, matrix.nnz, matrix.row_lengths()
    )
    assert cheap.tobytes() == full[list(CHEAP_FEATURE_INDICES)].tobytes()
