"""Table-1 feature extraction."""

import numpy as np
import pytest

from repro.datasets.generators import banded
from repro.features import FEATURE_NAMES, extract_features, extract_features_collection
from repro.features.extract import features_from_stats, features_from_stats_batch
from repro.features.stats import compute_stats
from repro.formats import COOMatrix


def _f(vec, name):
    return vec[FEATURE_NAMES.index(name)]


def test_twenty_one_features(small_coo):
    vec = extract_features(small_coo)
    assert vec.shape == (21,)
    assert len(FEATURE_NAMES) == 21


def test_simple_counts(small_dense, small_coo):
    vec = extract_features(small_coo)
    nnz = np.count_nonzero(small_dense)
    assert _f(vec, "nrows") == small_dense.shape[0]
    assert _f(vec, "ncols") == small_dense.shape[1]
    assert _f(vec, "nnz") == nnz
    assert _f(vec, "nnz_frac") == pytest.approx(nnz / small_dense.size)
    lengths = (small_dense != 0).sum(axis=1)
    assert _f(vec, "nnz_mu") == pytest.approx(lengths.mean())
    assert _f(vec, "nnz_min") == lengths.min()
    assert _f(vec, "nnz_max") == lengths.max()
    assert _f(vec, "nnz_sig") == pytest.approx(lengths.std())


def test_derived_differences(small_coo):
    vec = extract_features(small_coo)
    assert _f(vec, "max_mu") == pytest.approx(
        _f(vec, "nnz_max") - _f(vec, "nnz_mu")
    )
    assert _f(vec, "mu_min") == pytest.approx(
        _f(vec, "nnz_mu") - _f(vec, "nnz_min")
    )


def test_sig_lower_higher(small_dense, small_coo):
    vec = extract_features(small_coo)
    lengths = (small_dense != 0).sum(axis=1).astype(float)
    mu = lengths.mean()
    lower = lengths[lengths < mu]
    higher = lengths[lengths > mu]
    assert _f(vec, "sig_lower") == pytest.approx(
        np.sqrt(np.mean((mu - lower) ** 2))
    )
    assert _f(vec, "sig_higher") == pytest.approx(
        np.sqrt(np.mean((higher - mu) ** 2))
    )


def test_structure_sizes_consistent(small_coo):
    vec = extract_features(small_coo)
    s = compute_stats(small_coo)
    assert _f(vec, "ell_size") == s.ell_padded
    assert _f(vec, "ell_frac") == pytest.approx(s.nnz / s.ell_padded)
    assert _f(vec, "dia_size") == s.n_diagonals * s.nrows
    assert _f(vec, "dia_frac") == pytest.approx(s.nnz / s.dia_size)
    assert _f(vec, "hyb_ell_size") == s.hyb_ell_slots
    assert _f(vec, "hyb_coo") == s.hyb_coo_entries
    assert _f(vec, "hyb_ell_frac") == s.hyb_ell_entries


def test_features_architecture_invariant_wrt_values(rng):
    # Features depend on structure only: rescaling values changes nothing.
    m = banded(rng, n=100, bandwidth=3)
    m2 = COOMatrix(m.shape, m.rows, m.cols, m.vals * 1000.0)
    np.testing.assert_allclose(extract_features(m), extract_features(m2))


def test_row_permutation_invariance_of_row_stats(rng):
    m = banded(rng, n=128, bandwidth=4)
    perm = rng.permutation(128)
    mp = m.permute(row_perm=perm)
    v1 = extract_features(m)
    v2 = extract_features(mp)
    # Row-length-derived features are invariant under row permutation.
    for name in ("nnz", "nnz_mu", "nnz_min", "nnz_max", "nnz_sig",
                 "ell_size", "ell_frac"):
        assert _f(v1, name) == pytest.approx(_f(v2, name)), name


def test_collection_extraction(tiny_collection):
    table = extract_features_collection(tiny_collection.records)
    assert table.values.shape == (len(tiny_collection), 21)
    assert table.names == tiny_collection.names
    assert np.all(np.isfinite(table.values))


def test_empty_matrix_features():
    vec = features_from_stats(compute_stats(COOMatrix.empty((4, 4))))
    assert np.all(np.isfinite(vec))
    assert _f(vec, "nnz") == 0


class TestBatchedDerivation:
    """features_from_stats_batch must equal row-stacked features_from_stats."""

    def test_bit_identical_to_per_matrix_path(self, tiny_collection):
        stats = [compute_stats(r.matrix) for r in tiny_collection.records]
        batch = features_from_stats_batch(stats)
        stacked = np.vstack([features_from_stats(s) for s in stats])
        assert batch.dtype == stacked.dtype
        assert batch.tobytes() == stacked.tobytes()

    def test_empty_batch(self):
        out = features_from_stats_batch([])
        assert out.shape == (0, len(FEATURE_NAMES))

    def test_guarded_ratios_for_empty_matrix(self):
        from repro.formats import COOMatrix

        empty = COOMatrix((3, 3), np.array([]), np.array([]), np.array([]))
        stats = [compute_stats(empty)]
        batch = features_from_stats_batch(stats)
        single = features_from_stats(stats[0])
        np.testing.assert_array_equal(batch[0], single)

    def test_parallel_stats_pass_identical(self, tiny_collection):
        serial = extract_features_collection(tiny_collection.records, jobs=1)
        parallel = extract_features_collection(tiny_collection.records, jobs=2)
        assert serial.values.tobytes() == parallel.values.tobytes()
        assert serial.names == parallel.names
