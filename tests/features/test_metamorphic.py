"""Metamorphic tests for the Table-1 feature extractor.

Structural transformations with known effects on the features:

- **Row permutation** reshuffles the row-length distribution without
  changing it as a multiset, so every feature derived from that multiset
  (counts, moments, ELL/HYB geometry) is invariant.  ``csr_max`` scans
  nonzeros in row order and the diagonal features read ``col - row``
  offsets, so those three may legitimately move.
- **Column permutation** leaves each row's length untouched, so on top
  of the row-permutation set ``csr_max`` is also invariant; only the
  diagonal features may move.
- **Transpose** swaps ``nrows``/``ncols``, preserves ``nnz`` and the
  number of occupied diagonals (offsets negate bijectively), and a
  double transpose restores the exact feature vector.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import HYPOTHESIS_SCALE

from repro.features.extract import (
    FEATURE_NAMES,
    extract_features,
    features_from_stats,
    features_from_stats_batch,
)
from repro.features.stats import compute_stats
from repro.formats.coo import COOMatrix

F = {name: i for i, name in enumerate(FEATURE_NAMES)}

#: Features that read diagonal structure (change under any permutation).
DIAGONAL_FEATURES = ("diagonals", "dia_size", "dia_frac")

#: Mathematically permutation-invariant, but computed by reductions that
#: accumulate in row order (np.std, RMS over a boolean selection), so a
#: permutation may shift the last ulp.  Compared with a tight relative
#: tolerance instead of bitwise.
ORDER_SENSITIVE_REDUCTIONS = ("nnz_sig", "sig_lower", "sig_higher")

#: Invariant under row permutation: everything derived from the
#: row-length multiset.  csr_max depends on row *order*; the diagonal
#: features depend on col - row offsets.
ROW_PERM_INVARIANT = tuple(
    name
    for name in FEATURE_NAMES
    if name not in (*DIAGONAL_FEATURES, "csr_max")
)

#: Invariant under column permutation: row lengths are untouched, so
#: csr_max joins the invariant set.
COL_PERM_INVARIANT = tuple(
    name for name in FEATURE_NAMES if name not in DIAGONAL_FEATURES
)


def random_matrix(seed: int, nrows: int, ncols: int, density: float) -> COOMatrix:
    rng = np.random.default_rng(seed)
    nnz = max(1, int(nrows * ncols * density))
    flat = rng.choice(nrows * ncols, size=min(nnz, nrows * ncols), replace=False)
    rows, cols = np.divmod(flat, ncols)
    vals = rng.normal(size=flat.shape[0])
    return COOMatrix((nrows, ncols), rows.astype(np.int64), cols.astype(np.int64), vals)


matrix_params = st.tuples(
    st.integers(0, 2**31 - 1),  # seed
    st.integers(2, 40),  # nrows
    st.integers(2, 40),  # ncols
    st.floats(0.02, 0.6),  # density
)


def check_invariant(base: COOMatrix, transformed: COOMatrix, names) -> None:
    fa = extract_features(base)
    fb = extract_features(transformed)
    for name in names:
        a, b = fa[F[name]], fb[F[name]]
        if name in ORDER_SENSITIVE_REDUCTIONS:
            assert a == pytest.approx(b, rel=1e-9, abs=1e-12), (
                f"{name}: {a} !~ {b}"
            )
        else:
            assert a == b, f"{name}: {a} != {b}"


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_row_permutation_preserves_distribution_features(params):
    seed, nrows, ncols, density = params
    m = random_matrix(seed, nrows, ncols, density)
    perm = np.random.default_rng(seed + 1).permutation(nrows)
    check_invariant(m, m.permute(row_perm=perm), ROW_PERM_INVARIANT)


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_column_permutation_preserves_row_features(params):
    seed, nrows, ncols, density = params
    m = random_matrix(seed, nrows, ncols, density)
    perm = np.random.default_rng(seed + 2).permutation(ncols)
    check_invariant(m, m.permute(col_perm=perm), COL_PERM_INVARIANT)


@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_transpose_swaps_dims_preserves_mass(params):
    seed, nrows, ncols, density = params
    m = random_matrix(seed, nrows, ncols, density)
    fa = extract_features(m)
    fb = extract_features(m.transpose())
    assert fb[F["nrows"]] == fa[F["ncols"]]
    assert fb[F["ncols"]] == fa[F["nrows"]]
    assert fb[F["nnz"]] == fa[F["nnz"]]
    assert fb[F["nnz_frac"]] == fa[F["nnz_frac"]]
    # col - row offsets negate bijectively: diagonal count is preserved.
    assert fb[F["diagonals"]] == fa[F["diagonals"]]


@settings(max_examples=40 * HYPOTHESIS_SCALE, deadline=None)
@given(params=matrix_params)
def test_transpose_round_trip_restores_features(params):
    seed, nrows, ncols, density = params
    m = random_matrix(seed, nrows, ncols, density)
    back = m.transpose().transpose()
    np.testing.assert_array_equal(
        extract_features(m), extract_features(back)
    )


def test_batch_features_match_per_matrix_rows():
    matrices = [
        random_matrix(seed, 10 + seed, 8 + seed, 0.2) for seed in range(6)
    ]
    stats = [compute_stats(m) for m in matrices]
    batch = features_from_stats_batch(stats)
    stacked = np.vstack([features_from_stats(s) for s in stats])
    np.testing.assert_array_equal(batch, stacked)


def test_batch_features_transpose_round_trip():
    matrices = [random_matrix(seed, 12, 9, 0.25) for seed in range(5)]
    round_tripped = [m.transpose().transpose() for m in matrices]
    a = features_from_stats_batch([compute_stats(m) for m in matrices])
    b = features_from_stats_batch([compute_stats(m) for m in round_tripped])
    np.testing.assert_array_equal(a, b)


def test_identity_permutation_is_exact():
    m = random_matrix(3, 15, 11, 0.3)
    same = m.permute(
        row_perm=np.arange(m.nrows), col_perm=np.arange(m.ncols)
    )
    np.testing.assert_array_equal(
        extract_features(m), extract_features(same)
    )


@pytest.mark.parametrize("name", DIAGONAL_FEATURES)
def test_documented_noninvariants_can_move(name):
    # A row shift of a diagonal matrix moves mass off the main diagonal:
    # the diagonal features MUST see it (guards against the invariant
    # lists silently covering everything).
    n = 12
    eye = COOMatrix(
        (n, n),
        np.arange(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        np.ones(n),
    )
    shifted = eye.permute(row_perm=np.roll(np.arange(n), 1))
    fa = extract_features(eye)
    fb = extract_features(shifted)
    assert fa[F[name]] != fb[F[name]]
