"""FeatureTable container."""

import numpy as np
import pytest

from repro.features.table import FeatureTable


@pytest.fixture
def table():
    return FeatureTable(
        names=["a", "b", "c"],
        feature_names=["f1", "f2"],
        values=np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
    )


def test_shape_validation():
    with pytest.raises(ValueError):
        FeatureTable(["a"], ["f1"], np.zeros((2, 1)))
    with pytest.raises(ValueError):
        FeatureTable(["a"], ["f1"], np.zeros(3))


def test_column(table):
    np.testing.assert_array_equal(table.column("f2"), [2.0, 4.0, 6.0])
    with pytest.raises(KeyError):
        table.column("missing")


def test_select(table):
    sub = table.select(["f2"])
    assert sub.feature_names == ["f2"]
    np.testing.assert_array_equal(sub.values, [[2.0], [4.0], [6.0]])
    # Projection copies: mutating the subset must not touch the original.
    sub.values[0, 0] = 99.0
    assert table.values[0, 1] == 2.0


def test_subset(table):
    sub = table.subset([2, 0])
    assert sub.names == ["c", "a"]
    np.testing.assert_array_equal(sub.values, [[5.0, 6.0], [1.0, 2.0]])


def test_row(table):
    np.testing.assert_array_equal(table.row("b"), [3.0, 4.0])
    with pytest.raises(KeyError):
        table.row("zzz")


def test_len_and_n_features(table):
    assert len(table) == 3
    assert table.n_features == 2
