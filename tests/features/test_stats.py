"""Structural statistics shared by features and the GPU model."""

import numpy as np
import pytest

from repro.datasets.generators import arrow, banded, power_law_rows
from repro.features.stats import WARP_SIZE, compute_stats
from repro.formats import COOMatrix, ELLMatrix, HYBMatrix


def test_basic_counts(small_dense, small_coo):
    s = compute_stats(small_coo)
    assert s.nrows, s.ncols == small_dense.shape
    assert s.nnz == np.count_nonzero(small_dense)
    np.testing.assert_array_equal(
        s.row_lengths, (small_dense != 0).sum(axis=1)
    )
    assert s.max_row == s.row_lengths.max()
    assert s.min_row == s.row_lengths.min()
    assert s.mean_row == pytest.approx(s.nnz / s.nrows)
    assert s.std_row == pytest.approx(s.row_lengths.std())


def test_diagonal_and_band_stats(rng):
    m = banded(rng, n=64, bandwidth=2, density=1.0)
    s = compute_stats(m)
    assert s.n_diagonals == 5
    assert s.band_fraction == 1.0
    assert 0 < s.mean_abs_offset < 2.0


def test_warp_divergence_uniform_rows(rng):
    m = banded(rng, n=WARP_SIZE * 4, bandwidth=1, density=1.0)
    s = compute_stats(m)
    # Uniform row length 3 (except 2 boundary rows): warp slots close to
    # 32 * 3 per warp.
    assert s.warp_divergence_slots == 4 * WARP_SIZE * 3


def test_warp_divergence_skewed_exceeds_nnz(rng):
    m = arrow(rng, n=512, band=1)
    s = compute_stats(m)
    assert s.warp_divergence_slots > 2 * s.nnz


def test_ell_geometry_agrees_with_format(small_coo):
    s = compute_stats(small_coo)
    ell = ELLMatrix.from_coo(small_coo, max_fill=None)
    assert s.ell_width == ell.width
    assert s.ell_padded == ell.padded_size
    assert s.bytes_ell() == ell.memory_bytes()


def test_hyb_geometry_agrees_with_format(rng):
    m = power_law_rows(rng, nrows=400, avg_nnz_per_row=6, alpha=1.8)
    s = compute_stats(m)
    hyb = HYBMatrix.from_coo(m)
    assert s.hyb_width == hyb.ell.width
    assert s.hyb_ell_entries == hyb.ell_nnz
    assert s.hyb_coo_entries == hyb.coo_nnz
    assert s.bytes_hyb() == hyb.memory_bytes()


def test_format_bytes_dispatch(small_coo):
    s = compute_stats(small_coo)
    for fmt in ("csr", "coo", "ell", "hyb"):
        assert s.format_bytes(fmt) > 0


def test_ell_convertible_logic(rng):
    assert compute_stats(banded(rng, n=600, bandwidth=2)).ell_convertible()
    assert not compute_stats(arrow(rng, n=600, band=1)).ell_convertible()


def test_csr_max_uniform_vs_skewed(rng):
    uniform = compute_stats(banded(rng, n=640, bandwidth=2, density=1.0))
    skewed = compute_stats(arrow(rng, n=640, band=1))
    # Arrow: many empty-ish rows => one nnz-chunk spans far more rows.
    assert skewed.csr_max > uniform.csr_max


def test_empty_matrix_stats():
    s = compute_stats(COOMatrix.empty((5, 5)))
    assert s.nnz == 0
    assert s.max_row == 0
    assert s.mean_row == 0.0
    assert s.n_diagonals == 0
    assert s.ell_convertible()


class TestMinRowRegression:
    """``min_row`` must be the true minimum row length, not 0.

    The old implementation used ``row_lengths.min(initial=0)``, which
    includes 0 as a reduction candidate and therefore always won against
    non-negative lengths — silently zeroing the Table-1 ``mu_min``
    feature for every matrix.
    """

    def test_all_rows_nonempty_matrix(self, rng):
        m = banded(rng, n=64, bandwidth=2, density=1.0)
        s = compute_stats(m)
        lengths = m.row_lengths()
        assert lengths.min() > 0  # precondition: no empty rows
        assert s.min_row == lengths.min()
        assert s.min_row > 0

    def test_uniform_rows(self, rng):
        m = power_law_rows(rng, nrows=200, avg_nnz_per_row=6, alpha=2.0)
        s = compute_stats(m)
        assert s.min_row == int(m.row_lengths().min())

    def test_empty_matrix_still_zero(self):
        m = COOMatrix((4, 4), np.array([]), np.array([]), np.array([]))
        assert compute_stats(m).min_row == 0

    def test_mu_min_feature_nonzero(self, rng):
        from repro.features.extract import FEATURE_NAMES, features_from_stats

        m = banded(rng, n=64, bandwidth=2, density=1.0)
        vec = features_from_stats(compute_stats(m))
        mu_min = vec[FEATURE_NAMES.index("mu_min")]
        nnz_min = vec[FEATURE_NAMES.index("nnz_min")]
        assert nnz_min > 0
        assert mu_min < vec[FEATURE_NAMES.index("nnz_mu")]
