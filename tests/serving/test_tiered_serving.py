"""The serving layer's cheap-first tiered predict path (``--tiered``)."""

from __future__ import annotations

import json

import pytest

from repro.runtime.faults import FaultInjector, FaultSpec
from repro.serving.drill import _random_matrix_text
from repro.serving.server import SelectorServer, ServingConfig


def make_server(model_path, fake_clock, **overrides) -> SelectorServer:
    defaults = dict(
        model_path=model_path,
        hot_reload=False,
        ood_factor=0.0,
        tiered=True,
    )
    defaults.update(overrides)
    injector = defaults.pop("fault_injector", None)
    return SelectorServer(
        ServingConfig(**defaults), clock=fake_clock, fault_injector=injector
    )


def predict_line(i: int, seed: int = 0) -> str:
    return json.dumps(
        {"id": f"p{i}", "op": "predict", "mtx": _random_matrix_text(i, seed)}
    )


def test_default_off_responses_carry_no_tier(model_path, fake_clock):
    server = make_server(model_path, fake_clock, tiered=False)
    for i in range(10):
        response = server.handle_line(predict_line(i))
        assert response["status"] == "ok"
        assert "tier" not in response


def test_tiered_responses_carry_tier_and_both_tiers_appear(
    model_path, fake_clock
):
    server = make_server(model_path, fake_clock)
    tiers = []
    for i in range(40):
        response = server.handle_line(predict_line(i, seed=9))
        assert response["status"] == "ok"
        assert response["source"] == "model"
        assert response["tier"] in (1, 2)
        tiers.append(response["tier"])
    assert 1 in tiers and 2 in tiers, (
        f"workload exercised only tier(s) {set(tiers)}"
    )


def test_escalated_answers_match_the_non_tiered_path(model_path, fake_clock):
    tiered = make_server(model_path, fake_clock)
    plain = make_server(model_path, fake_clock, tiered=False)
    for i in range(40):
        t = tiered.handle_line(predict_line(i, seed=9))
        p = plain.handle_line(predict_line(i, seed=9))
        assert p["status"] == t["status"] == "ok"
        if t["tier"] == 2:
            assert t["format"] == p["format"]
            assert t["centroid"] == p["centroid"]


def test_forced_escalation_is_byte_identical_sans_tier(
    model_path, fake_clock
):
    """With an unreachable margin every answer is the full pipeline's."""
    tiered = make_server(model_path, fake_clock, tier_margin=1e18)
    plain = make_server(model_path, fake_clock, tiered=False)
    for i in range(15):
        t = tiered.handle_line(predict_line(i))
        p = plain.handle_line(predict_line(i))
        assert t.pop("tier") == 2
        assert t == p


def test_invalid_bodies_rejected_identically(model_path, fake_clock):
    tiered = make_server(model_path, fake_clock)
    plain = make_server(model_path, fake_clock, tiered=False)
    bad = [
        json.dumps({"id": "b0", "op": "predict", "mtx": "not a matrix"}),
        json.dumps({"id": "b1", "op": "predict"}),
        json.dumps({"id": "b2", "op": "predict",
                    "mtx": "%%MatrixMarket matrix coordinate real general\n"
                           "2 2 1\n1 1 nan\n"}),
    ]
    for line in bad:
        t = tiered.handle_line(line)
        p = plain.handle_line(line)
        assert t == p
        assert t["status"] == "invalid"


def test_injected_faults_still_fall_back(model_path, fake_clock):
    injector = FaultInjector(FaultSpec(failure_rate=1.0, seed=1))
    server = make_server(model_path, fake_clock, fault_injector=injector)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "fallback"
    assert response["reason"] == "inference_error"


def test_escalation_counters_track_requests(model_path, fake_clock):
    from repro.obs import TELEMETRY

    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        server = make_server(model_path, fake_clock)
        n = 30
        for i in range(n):
            assert server.handle_line(predict_line(i, seed=9))["status"] == "ok"
        snapshot = TELEMETRY.registry.snapshot()
        requests = snapshot["select.requests"]["value"]
        tier1 = snapshot["select.tier1_answers"]["value"]
        escalations = snapshot["select.escalations"]["value"]
        assert requests == n
        assert tier1 + escalations == n
        assert snapshot["select.escalation_rate"]["value"] == (
            escalations / requests
        )
        assert "select.tier1" in {
            e["name"] for e in TELEMETRY.tracer.events()
        }
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()


def test_tiered_selector_rebuilt_only_on_model_change(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    assert server.handle_line(predict_line(0))["status"] == "ok"
    first = server._tiered_cache
    assert first is not None
    assert server.handle_line(predict_line(1))["status"] == "ok"
    assert server._tiered_cache is first, "cache rebuilt with model unchanged"


def test_micro_batched_burst_still_answers_with_tiers(
    model_path, fake_clock
):
    """Priming full-ingests every request — the cost tiering avoids —
    so under ``tiered`` the burst path must skip it yet answer each
    request through the tiered flow, leaving the caches untouched."""
    server = make_server(model_path, fake_clock, max_batch=4, queue_size=16)
    responses = server.submit_burst(predict_line(i, seed=9) for i in range(8))
    assert len(responses) == 8
    for response in responses:
        assert response["status"] == "ok"
        assert response["tier"] in (1, 2)
    assert server._batch_ingest == {}
    assert server._batch_results == {}
