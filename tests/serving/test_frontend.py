"""Multi-worker serving tier: equivalence, routing, chaos, aggregation.

Covers the tier contracts the single-process suite cannot:

- ``repro serve --workers 1`` is the PR-4/PR-7 server, byte for byte —
  the tier dispatch must not capture the single-worker path.
- A 2-worker tier answers the hostile drill mix with tier-widened
  expectations (worker loss may legally surface as a typed fallback).
- Killing a worker mid-burst yields typed ``worker_lost`` responses for
  its in-flight requests (no hangs), a respawn, and counters that
  reconcile: ``routed == completed + worker_lost``.
- ``metrics`` / ``healthz`` aggregate across workers.

These tests boot real worker subprocesses, so they are the slowest in
the serving suite; request counts are kept small.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import subprocess
import sys

import repro
from repro.serving.drill import (
    _random_matrix_text,
    build_request_lines,
    tier_expectations,
)
from repro.serving.frontend import ServingTier, TierConfig, drive_tier
from repro.serving.protocol import (
    CODE_WORKER_LOST,
    REASON_WORKER_LOST,
    STATUS_FALLBACK,
    STATUS_INVALID,
)
from repro.serving.server import SelectorServer, ServingConfig


def _src_env() -> dict:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# -- single-worker equivalence -----------------------------------------------


def test_workers_1_cli_is_byte_identical_to_library_server(
    model_path, tmp_path
):
    """``--workers 1`` must leave the PR-4/PR-7 stdio server untouched."""
    lines = [
        json.dumps(
            {"id": f"p{i}", "op": "predict", "mtx": _random_matrix_text(i, 0)}
        )
        for i in range(6)
    ]
    lines.insert(2, "{broken json")
    lines.insert(4, json.dumps({"id": "bad", "op": "transmogrify"}))
    lines.append(
        json.dumps({"id": "fb", "op": "feedback", "format": "csr"})
    )
    lines.append(json.dumps({"id": "s", "op": "shutdown"}))
    stdin_text = "\n".join(lines) + "\n"
    # A real file (not StringIO/pipe) makes micro-batch grouping
    # deterministic and identical for all three runs: ``_drain_ready``
    # selects on the fd, and a regular file is always ready, so every
    # run sees the same single fully-drained burst.
    stdin_path = tmp_path / "requests.jsonl"
    stdin_path.write_text(stdin_text)

    # The library server under the CLI's default ServingConfig.
    server = SelectorServer(ServingConfig(model_path=model_path))
    outstream = io.StringIO()
    with open(stdin_path, "r", encoding="utf-8") as instream:
        rc = server.serve_stream(instream, outstream)
    expected = outstream.getvalue()

    def run_cli(*extra: str) -> subprocess.CompletedProcess:
        with open(stdin_path, "r", encoding="utf-8") as stdin:
            return subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--model", model_path, *extra],
                stdin=stdin, capture_output=True, text=True,
                env=_src_env(), timeout=120,
            )

    legacy = run_cli()
    tier_flagged = run_cli("--workers", "1")
    assert legacy.returncode == rc == 0, legacy.stderr
    assert tier_flagged.returncode == 0, tier_flagged.stderr
    assert legacy.stdout == expected
    assert tier_flagged.stdout == expected
    # Sanity: the runs actually answered every line before shutdown.
    assert len(legacy.stdout.splitlines()) == len(lines)


# -- multi-worker tier scenarios ---------------------------------------------


async def _boot_tier(run_dir: str, model_path: str, workers: int):
    tier = ServingTier(
        TierConfig(
            model_path=model_path,
            run_dir=run_dir,
            workers=workers,
            boot_timeout_seconds=120.0,
        )
    )
    front = os.path.join(run_dir, "front.sock")
    task = asyncio.ensure_future(tier.run_socket(front))
    for _ in range(2400):
        if os.path.exists(front):
            break
        if task.done():
            task.result()
        await asyncio.sleep(0.05)
    else:
        raise TimeoutError("tier front-end socket never appeared")
    return tier, task, front


async def _ops(front: str, *ops: str) -> list[dict]:
    reader, writer = await asyncio.open_unix_connection(front)
    try:
        for op in ops:
            writer.write(
                (json.dumps({"id": f"__{op}", "op": op}) + "\n").encode()
            )
        await writer.drain()
        return [json.loads(await reader.readline()) for _ in ops]
    finally:
        writer.close()


def test_two_worker_tier_answers_hostile_drill_and_aggregates(
    model_path, tmp_path
):
    lines, expectations = build_request_lines(36, seed=1)
    expectations = tier_expectations(expectations)

    async def scenario():
        tier, task, front = await _boot_tier(str(tmp_path), model_path, 2)
        try:
            pairs = await drive_tier(front, lines, connections=4)
            metrics, healthz = await _ops(front, "metrics", "healthz")
        finally:
            (await _ops(front, "shutdown"))
            await asyncio.wait_for(task, timeout=30.0)
        return tier, pairs, metrics, healthz

    tier, pairs, metrics, healthz = asyncio.run(scenario())

    from repro.serving.drill import audit_tier_responses

    report = audit_tier_responses(pairs, expectations)
    assert not report.violations, report.violations
    assert len(pairs) == len(lines)

    # metrics aggregates worker snapshots under the tier's own gauges.
    assert metrics["workers"] == 2
    snap = metrics["metrics"]
    assert snap["serving.workers"]["value"] == 2.0
    assert snap["serving.routed"]["value"] >= 1.0
    assert "quantiles_ms" in metrics

    # healthz reports one state per worker plus the tier rollup.
    assert healthz["state"] == "ok"
    assert len(healthz["worker_states"]) == 2
    assert set(healthz["worker_states"].values()) == {"ok"}

    # Conservation: every ring-routed request is accounted for.
    assert tier.n_routed == tier.n_completed + tier.n_worker_lost


def test_worker_kill_mid_burst_types_errors_and_respawns(
    model_path, tmp_path
):
    lines = [
        json.dumps(
            {
                "id": f"p{i}",
                "op": "predict",
                "client": f"tenant-{i % 8}",
                "mtx": _random_matrix_text(i, 2),
            }
        )
        for i in range(30)
    ]

    async def scenario():
        tier, task, front = await _boot_tier(str(tmp_path), model_path, 2)
        try:
            actions = {10: lambda: tier.kill_worker()}
            pairs = await drive_tier(
                front, lines, connections=4, actions=actions
            )
            for _ in range(400):  # wait for the respawn to rejoin
                if len(tier.workers) >= 2:
                    break
                await asyncio.sleep(0.05)
            fleet = len(tier.workers)
        finally:
            (await _ops(front, "shutdown"))
            await asyncio.wait_for(task, timeout=30.0)
        return tier, pairs, fleet

    tier, pairs, fleet = asyncio.run(scenario())

    assert len(pairs) == len(lines), "a connection hung or dropped"
    lost = 0
    for line, response in pairs:
        status = response["status"]
        if status == STATUS_FALLBACK and (
            response.get("reason") == REASON_WORKER_LOST
        ):
            lost += 1
            assert response.get("format"), response
        elif status == STATUS_INVALID:
            assert response.get("code") == CODE_WORKER_LOST, response
            lost += 1
        else:
            assert status == "ok", response

    assert tier.n_respawned >= 1, "killed worker was never respawned"
    assert fleet == 2, "fleet did not return to its target size"
    assert tier.n_worker_lost == lost
    assert tier.n_routed == tier.n_completed + tier.n_worker_lost


def test_tier_config_worker_bounds_default_to_workers():
    config = TierConfig(model_path="m.npz", run_dir="/tmp/x", workers=3)
    assert config.min_workers == 3 and config.max_workers == 3
    scaled = TierConfig(
        model_path="m.npz", run_dir="/tmp/x", workers=2,
        workers_min=1, workers_max=4,
    )
    assert scaled.min_workers == 1 and scaled.max_workers == 4
