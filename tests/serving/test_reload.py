"""Hot reload: shadow validation, atomic swap, quarantine."""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.serving.drill import synthetic_frozen_selector
from repro.serving.reload import (
    ModelHost,
    RELOAD_QUARANTINED,
    RELOAD_SWAPPED,
    RELOAD_UNCHANGED,
    golden_features,
)


def _bump_mtime(path: str, step: int = 1_000_000) -> None:
    """Force a distinct (mtime_ns, size) fingerprint after a rewrite."""
    st = os.stat(path)
    os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + step))


def test_initial_load_publishes_model(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    assert not host.degraded
    assert host.active.sha256 is not None
    assert np.isfinite(host.active.scale) and host.active.scale > 0


def test_missing_file_starts_degraded(tmp_path, fake_clock):
    host = ModelHost(str(tmp_path / "absent.npz"), clock=fake_clock)
    assert host.degraded
    assert host.active.selector is None
    assert "does not exist" in host.active.error


def test_corrupt_initial_file_is_quarantined(tmp_path, fake_clock):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not an npz archive")
    host = ModelHost(str(path), clock=fake_clock)
    assert host.degraded
    assert host.n_quarantined == 1
    assert host.active.sha256 in host.quarantine


def test_unchanged_file_does_not_reload(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    sha = host.active.sha256
    for _ in range(3):
        assert host.check_reload() == RELOAD_UNCHANGED
    assert host.active.sha256 == sha
    assert host.n_reloads == 0


def test_touch_without_content_change_is_unchanged(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    _bump_mtime(model_path)
    assert host.check_reload() == RELOAD_UNCHANGED
    assert host.n_reloads == 0


def test_good_candidate_swaps(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    old_sha = host.active.sha256
    synthetic_frozen_selector(seed=99, n_centroids=7).save(model_path)
    _bump_mtime(model_path)
    assert host.check_reload() == RELOAD_SWAPPED
    assert host.active.sha256 != old_sha
    assert host.active.selector.n_centroids == 7
    assert host.n_reloads == 1


def test_bad_candidate_quarantined_old_model_keeps_serving(
    model_path, fake_clock
):
    host = ModelHost(model_path, clock=fake_clock)
    old = host.active
    with open(model_path, "wb") as fh:
        fh.write(b"corrupt bytes, not a model")
    _bump_mtime(model_path)
    assert host.check_reload() == RELOAD_QUARANTINED
    # The working model is never unpublished.
    assert host.active is old
    assert not host.degraded
    assert host.n_quarantined == 1
    # The bad digest is remembered: rewriting the same bytes costs one
    # stat + hash, never a second validation attempt.
    with open(model_path, "wb") as fh:
        fh.write(b"corrupt bytes, not a model")
    _bump_mtime(model_path, step=2_000_000)
    assert host.check_reload() == RELOAD_QUARANTINED
    assert host.n_quarantined == 1
    assert len(host.quarantine) == 1


def test_structurally_bad_npz_is_quarantined(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    # A valid .npz archive that is not a valid model (missing arrays).
    np.savez(model_path, version=np.array([999]))
    _bump_mtime(model_path)
    assert host.check_reload() == RELOAD_QUARANTINED
    assert not host.degraded


def test_recovery_after_quarantine(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    with open(model_path, "wb") as fh:
        fh.write(b"garbage")
    _bump_mtime(model_path)
    assert host.check_reload() == RELOAD_QUARANTINED
    synthetic_frozen_selector(seed=5).save(model_path)
    _bump_mtime(model_path, step=2_000_000)
    assert host.check_reload() == RELOAD_SWAPPED
    assert not host.degraded


def test_deleted_file_leaves_model_serving(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    os.unlink(model_path)
    assert host.check_reload() == RELOAD_UNCHANGED
    assert not host.degraded


def test_golden_features_deterministic():
    a, b = golden_features(), golden_features()
    assert a.shape[0] == 3
    np.testing.assert_array_equal(a, b)
    assert np.all(np.isfinite(a))


def test_snapshot_shape(model_path, fake_clock):
    host = ModelHost(model_path, clock=fake_clock)
    snap = host.snapshot()
    assert snap["degraded"] is False
    assert snap["sha256"] == host.active.sha256
    assert snap["n_centroids"] == host.active.selector.n_centroids


def test_swap_is_atomic_under_concurrent_requests(model_path, fake_clock):
    """Readers racing a stream of swaps never see a torn model.

    Each reader grabs ``host.active`` once (the documented handler
    discipline) and must find a selector whose arrays are mutually
    consistent — predict and nearest_distance both succeed and the
    label count matches that version's centroid count.
    """
    host = ModelHost(model_path, clock=fake_clock)
    golden = golden_features()
    errors: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            active = host.active  # read once, use throughout
            if active.selector is None:
                errors.append("reader saw a degraded model")
                return
            try:
                labels = active.selector.predict(golden)
                distances = active.selector.nearest_distance(golden)
            except Exception as exc:
                errors.append(f"inference raised: {exc}")
                return
            if len(labels) != 3 or not np.all(np.isfinite(distances)):
                errors.append("inconsistent inference result")
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for i in range(20):
            synthetic_frozen_selector(
                seed=100 + i, n_centroids=4 + i % 5
            ).save(model_path)
            _bump_mtime(model_path, step=(i + 1) * 1_000_000)
            host.check_reload()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
    assert errors == []
    assert host.n_reloads >= 1
