"""Circuit-breaker state machine under a fake clock."""

import pytest

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(clock, failures=3, reset=10.0, probes=2):
    return CircuitBreaker(
        failure_threshold=failures,
        reset_timeout=reset,
        probe_successes=probes,
        clock=clock,
    )


def test_starts_closed_and_allows(fake_clock):
    breaker = make_breaker(fake_clock)
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_opens_after_consecutive_failures(fake_clock):
    breaker = make_breaker(fake_clock, failures=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # not yet
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.n_opens == 1


def test_success_resets_consecutive_count(fake_clock):
    breaker = make_breaker(fake_clock, failures=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # streak broken
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN


def test_open_to_half_open_after_timeout(fake_clock):
    breaker = make_breaker(fake_clock, failures=1, reset=10.0)
    breaker.record_failure()
    assert not breaker.allow()
    fake_clock.advance(9.99)
    assert not breaker.allow()
    fake_clock.advance(0.02)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # probes flow


def test_probe_successes_close_the_breaker(fake_clock):
    breaker = make_breaker(fake_clock, failures=1, reset=1.0, probes=2)
    breaker.record_failure()
    fake_clock.advance(1.1)
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    assert breaker.state == HALF_OPEN  # one probe is not enough
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.n_closes == 1


def test_probe_failure_reopens_and_restarts_timeout(fake_clock):
    breaker = make_breaker(fake_clock, failures=1, reset=10.0, probes=2)
    breaker.record_failure()
    fake_clock.advance(10.1)
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    breaker.record_failure()  # failed probe slams it shut
    assert breaker.state == OPEN
    assert breaker.n_opens == 2
    fake_clock.advance(5.0)
    assert not breaker.allow()  # timeout restarted at the reopen
    fake_clock.advance(5.1)
    assert breaker.allow()


def test_close_resets_failure_count(fake_clock):
    breaker = make_breaker(fake_clock, failures=2, reset=1.0, probes=1)
    breaker.record_failure()
    breaker.record_failure()
    fake_clock.advance(1.1)
    breaker.record_success()  # closes
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == CLOSED  # count restarted from zero


def test_snapshot_shape(fake_clock):
    breaker = make_breaker(fake_clock)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap["state"] == CLOSED
    assert snap["consecutive_failures"] == 1
    assert snap["opens"] == 0 and snap["closes"] == 0


def test_invalid_parameters_rejected(fake_clock):
    with pytest.raises(ValueError):
        make_breaker(fake_clock, failures=0)
    with pytest.raises(ValueError):
        make_breaker(fake_clock, reset=-1.0)
    with pytest.raises(ValueError):
        make_breaker(fake_clock, probes=0)
