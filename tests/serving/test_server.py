"""End-to-end SelectorServer tests: the full defensive stack."""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.core.deploy import FallbackSelector
from repro.features import extract_features
from repro.formats.io import matrix_market_string, read_matrix_market
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.serving.breaker import OPEN
from repro.serving.gateway import GatewayLimits
from repro.serving.drill import (
    _random_matrix_text,
    build_request_lines,
    run_serve_drill,
    synthetic_frozen_selector,
)
from repro.serving.server import SelectorServer, ServingConfig


def make_server(model_path, fake_clock, **overrides) -> SelectorServer:
    defaults = dict(
        model_path=model_path,
        queue_size=8,
        deadline_seconds=None,
        breaker_failures=3,
        breaker_reset_seconds=10.0,
        breaker_probes=1,
        ood_factor=0.0,  # most tests do not exercise the OOD guard
    )
    defaults.update(overrides)
    injector = defaults.pop("fault_injector", None)
    return SelectorServer(
        ServingConfig(**defaults), clock=fake_clock, fault_injector=injector
    )


def predict_line(i: int, seed: int = 0) -> str:
    return json.dumps(
        {"id": f"p{i}", "op": "predict", "mtx": _random_matrix_text(i, seed)}
    )


def test_predict_ok(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "ok"
    assert response["source"] == "model"
    assert response["format"] in ("csr", "ell", "coo", "hyb")
    assert isinstance(response["centroid"], int)


def test_predict_matches_single_shot_fallback_selector(
    model_path, fake_clock
):
    """Served answers are byte-identical to a fresh one-shot predict."""
    server = make_server(model_path, fake_clock)
    single_shot = FallbackSelector.load(model_path)
    for i in range(10):
        text = _random_matrix_text(i, seed=0)
        served = server.handle_line(
            json.dumps({"id": f"p{i}", "op": "predict", "mtx": text})
        )
        vec = extract_features(read_matrix_market(io.StringIO(text)))
        assert served["status"] == "ok"
        assert served["format"] == single_shot.predict_one(vec)


def test_invalid_payload_codes(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    cases = {
        "{broken": "bad_json",
        '["a"]': "not_object",
        '{"op": "explode"}': "unknown_op",
        '{"op": "predict"}': "missing_field",
        json.dumps({"op": "predict", "mtx": "junk\n"}): "bad_banner",
    }
    for line, code in cases.items():
        response = server.handle_line(line)
        assert response["status"] == "invalid"
        assert response["code"] == code


def test_missing_model_serves_fallback(tmp_path, fake_clock):
    server = make_server(str(tmp_path / "absent.npz"), fake_clock)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "fallback"
    assert response["reason"] == "model_unusable"
    assert response["format"] == server.config.fallback_format


def test_breaker_trips_then_recovers(model_path, fake_clock):
    always_fail = FaultInjector(FaultSpec(failure_rate=1.0))
    server = make_server(
        model_path,
        fake_clock,
        breaker_failures=3,
        breaker_reset_seconds=5.0,
        breaker_probes=1,
        fault_injector=always_fail,
    )
    # Three consecutive inference faults trip the breaker...
    for i in range(3):
        response = server.handle_line(predict_line(i))
        assert response["status"] == "fallback"
        assert response["reason"] == "inference_error"
    assert server.breaker.state == OPEN
    # ...after which the model is not even called.
    response = server.handle_line(predict_line(3))
    assert response["reason"] == "breaker_open"
    # Heal the fault, wait out the reset: a probe closes the breaker.
    server.fault_injector = None
    fake_clock.advance(5.1)
    response = server.handle_line(predict_line(4))
    assert response["status"] == "ok"
    assert server.breaker.state == "closed"


def test_corruption_fails_inference(model_path, fake_clock):
    corruptor = FaultInjector(FaultSpec(corruption_rate=1.0))
    server = make_server(model_path, fake_clock, fault_injector=corruptor)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "fallback"
    assert response["reason"] == "inference_error"


def test_ood_guard(model_path, fake_clock):
    # An absurdly tight threshold pushes every in-range query out of
    # distribution; the response must carry the measured distance.
    server = make_server(model_path, fake_clock, ood_factor=1e-9)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "fallback"
    assert response["reason"] == "out_of_distribution"
    assert response["distance"] > response["threshold"]
    # Factor 0 disables the guard entirely.
    relaxed = make_server(model_path, fake_clock, ood_factor=0.0)
    assert relaxed.handle_line(predict_line(0))["status"] == "ok"


def test_internal_error_becomes_fallback(model_path, fake_clock, monkeypatch):
    server = make_server(model_path, fake_clock)

    def boom(body):
        raise RuntimeError("gateway exploded")

    monkeypatch.setattr(server.gateway, "ingest", boom)
    response = server.handle_line(predict_line(0))
    assert response["status"] == "fallback"
    assert response["reason"] == "internal_error"
    assert "gateway exploded" in response["error"]


def test_burst_sheds_oldest_but_answers_everyone(model_path, fake_clock):
    server = make_server(model_path, fake_clock, queue_size=4)
    lines = [predict_line(i) for i in range(10)]
    responses = server.submit_burst(lines)
    assert len(responses) == 10
    by_status = {}
    for response in responses:
        by_status.setdefault(response["status"], []).append(response["id"])
    assert len(by_status["overloaded"]) == 6
    assert len(by_status["ok"]) == 4
    # Shed-oldest: the four *newest* requests survive.
    assert by_status["ok"] == ["p6", "p7", "p8", "p9"]
    for rid in by_status["overloaded"]:
        assert rid in {f"p{i}" for i in range(6)}


def test_feedback_op(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    text = _random_matrix_text(0, seed=0)
    missing = server.handle_line(json.dumps({"op": "feedback", "mtx": text}))
    assert missing["status"] == "invalid"
    assert missing["code"] == "missing_field"
    response = server.handle_line(
        json.dumps(
            {"id": "f0", "op": "feedback", "mtx": text, "best_format": "csr"}
        )
    )
    assert response["status"] == "ok"
    assert isinstance(response["agrees"], bool)
    assert response["agrees"] == (response["format"] == "csr")
    assert response["online_clusters"] >= 1


def test_health_probe(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    server.handle_line(predict_line(0))
    fake_clock.advance(2.0)
    response = server.handle_line(json.dumps({"id": "h", "op": "health"}))
    assert response["status"] == "ok"
    assert response["uptime_seconds"] == pytest.approx(2.0)
    assert response["model"]["degraded"] is False
    assert response["breaker"]["state"] == "closed"
    assert response["counters"]["ok"] >= 1
    assert response["p99_latency_ms"] >= 0


def test_hot_swap_mid_traffic(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    first = server.handle_line(json.dumps({"id": "h", "op": "health"}))
    old_sha = first["model"]["sha256"]
    synthetic_frozen_selector(seed=42, n_centroids=6).save(model_path)
    st = os.stat(model_path)
    os.utime(model_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
    response = server.handle_line(predict_line(0))
    assert response["status"] == "ok"  # served by the new model
    after = server.handle_line(json.dumps({"id": "h2", "op": "health"}))
    assert after["model"]["sha256"] != old_sha
    assert after["model"]["reloads"] == 1


def test_explicit_reload_op_reports_quarantine(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    with open(model_path, "wb") as fh:
        fh.write(b"definitely not a model")
    st = os.stat(model_path)
    os.utime(model_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
    response = server.handle_line(json.dumps({"id": "r", "op": "reload"}))
    assert response["status"] == "ok"
    assert response["event"] == "quarantined"
    assert response["model"]["degraded"] is False  # old model still up


def test_serve_stream_jsonl_roundtrip(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    lines = [
        predict_line(0),
        "{broken",
        json.dumps({"id": "h", "op": "health"}),
        json.dumps({"id": "s", "op": "shutdown"}),
        predict_line(99),  # after shutdown: must not be consumed
    ]
    instream = io.StringIO("\n".join(lines) + "\n")
    outstream = io.StringIO()
    assert server.serve_stream(instream, outstream) == 0
    out = [json.loads(line) for line in outstream.getvalue().splitlines()]
    assert len(out) == 4  # shutdown stops the loop before line 5
    assert [r["status"] for r in out] == ["ok", "invalid", "ok", "ok"]
    assert out[3]["op"] == "shutdown"


def test_drill_contract_holds_under_hostile_traffic(model_path, fake_clock):
    """The full drill: poison payloads, bursts, a corrupt swap, a good
    swap, injected faults — every request answered, zero violations."""
    flaky = FaultInjector(FaultSpec(failure_rate=0.3, seed=7))
    server = make_server(
        model_path,
        fake_clock,
        queue_size=6,
        breaker_failures=2,
        breaker_reset_seconds=0.05,
        max_request_bytes=65536,
        limits=GatewayLimits(max_matrix_bytes=32768, max_nnz=100_000),
        fault_injector=flaky,
    )
    lines, expectations = build_request_lines(
        120, seed=1, oversize_bytes=32768
    )

    def corrupt_swap():
        with open(model_path, "wb") as fh:
            fh.write(b"corrupt candidate")
        st = os.stat(model_path)
        os.utime(model_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        return "corrupt swap"

    def good_swap():
        synthetic_frozen_selector(seed=11).save(model_path)
        st = os.stat(model_path)
        os.utime(model_path, ns=(st.st_atime_ns, st.st_mtime_ns + 2_000_000))
        return "good swap"

    report = run_serve_drill(
        server,
        lines,
        expectations,
        burst=8,
        actions={5: corrupt_swap, 10: good_swap},
    )
    assert report.ok, report.to_text()
    assert report.n_responses == len(lines)
    assert report.swap_events == ["corrupt swap", "good swap"]
    assert server.host.n_quarantined == 1
    assert server.host.n_reloads == 1
    assert set(report.by_status) <= {"ok", "invalid", "overloaded", "fallback"}


def test_matrix_by_path_predict(model_path, fake_clock, tmp_path, rng):
    server = make_server(model_path, fake_clock)
    dense = (rng.random((12, 9)) < 0.4) * rng.standard_normal((12, 9))
    from repro.formats import COOMatrix

    path = tmp_path / "m.mtx"
    path.write_text(matrix_market_string(COOMatrix.from_dense(dense)))
    response = server.handle_line(
        json.dumps({"id": "f", "op": "predict", "path": str(path)})
    )
    assert response["status"] == "ok"


def test_latency_tracking(model_path, fake_clock):
    server = make_server(model_path, fake_clock)
    assert server.p99_latency() == 0.0
    for i in range(5):
        server.handle_line(predict_line(i))
    assert server.p99_latency() > 0.0
    assert np.isfinite(server.p99_latency())
