"""Admission controller: bounded queue, shed-oldest, deadlines."""

import pytest

from repro.serving.admission import AdmissionController
from repro.serving.protocol import Request


def req(i: int) -> Request:
    return Request(id=f"r{i}", op="predict", body={})


def test_fifo_order_below_capacity(fake_clock):
    ctl = AdmissionController(max_pending=4, clock=fake_clock)
    for i in range(3):
        assert ctl.offer(req(i)) == []
    taken = [ctl.take()[0].id for _ in range(3)]
    assert taken == ["r0", "r1", "r2"]
    assert ctl.take() == (None, [])


def test_overflow_sheds_oldest(fake_clock):
    ctl = AdmissionController(max_pending=2, clock=fake_clock)
    ctl.offer(req(0))
    ctl.offer(req(1))
    shed = ctl.offer(req(2))
    assert [r.id for r in shed] == ["r0"]
    assert ctl.n_shed == 1
    assert [ctl.take()[0].id for _ in range(2)] == ["r1", "r2"]


def test_depth_and_admitted_counters(fake_clock):
    ctl = AdmissionController(max_pending=8, clock=fake_clock)
    for i in range(5):
        ctl.offer(req(i))
    assert ctl.depth == 5
    assert ctl.n_admitted == 5


def test_deadline_expiry_on_take(fake_clock):
    ctl = AdmissionController(
        max_pending=8, deadline_seconds=1.0, clock=fake_clock
    )
    ctl.offer(req(0))
    fake_clock.advance(0.5)
    ctl.offer(req(1))
    fake_clock.advance(0.7)  # r0 now 1.2s old, r1 only 0.7s
    request, expired = ctl.take()
    assert [r.id for r in expired] == ["r0"]
    assert request.id == "r1"
    assert ctl.n_expired == 1


def test_all_expired_returns_none_with_the_dead(fake_clock):
    ctl = AdmissionController(
        max_pending=8, deadline_seconds=0.5, clock=fake_clock
    )
    ctl.offer(req(0))
    ctl.offer(req(1))
    fake_clock.advance(2.0)
    request, expired = ctl.take()
    assert request is None
    assert [r.id for r in expired] == ["r0", "r1"]


def test_no_deadline_means_requests_never_expire(fake_clock):
    ctl = AdmissionController(max_pending=4, clock=fake_clock)
    ctl.offer(req(0))
    fake_clock.advance(1e6)
    request, expired = ctl.take()
    assert request.id == "r0" and expired == []


def test_invalid_parameters_rejected(fake_clock):
    with pytest.raises(ValueError):
        AdmissionController(max_pending=0, clock=fake_clock)
    with pytest.raises(ValueError):
        AdmissionController(deadline_seconds=0.0, clock=fake_clock)
