"""Shared mmap model store: publish-once / attach-many (DESIGN §14).

The economic claim under test: N workers attaching the same published
version share one set of on-disk arrays via ``np.memmap`` — no
per-worker deserialization, no per-worker validation pass, no private
copies.  Plus the :class:`StoreModelHost` reload state machine that
lets a worker follow the CURRENT pointer without ever unpublishing a
working model.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs import TELEMETRY
from repro.serving.drill import synthetic_frozen_selector
from repro.serving.modelstore import (
    ModelStore,
    ModelStoreError,
    StoreModelHost,
)
from repro.serving.reload import (
    RELOAD_QUARANTINED,
    RELOAD_SWAPPED,
    RELOAD_UNCHANGED,
    golden_features,
)


@pytest.fixture
def store(tmp_path):
    return ModelStore(str(tmp_path / "store"))


@pytest.fixture
def selector():
    return synthetic_frozen_selector(seed=3)


# -- publish / attach roundtrip ----------------------------------------------


def test_publish_attach_roundtrip_preserves_predictions(store, selector):
    store.publish(selector, "v1")
    attached = store.attach("v1")
    X = golden_features()
    assert list(attached.predict(X)) == list(selector.predict(X))
    assert attached.n_centroids == selector.n_centroids
    assert attached.transform_kind == selector.transform_kind
    np.testing.assert_array_equal(attached.centroids, selector.centroids)


def test_publish_flips_current_pointer(store, selector):
    assert store.current_sha() is None
    assert store.current_stat() is None
    store.publish(selector, "v1")
    assert store.current_sha() == "v1"
    assert store.current_stat() is not None


def test_republish_same_sha_only_flips_pointer(store, selector):
    path = store.publish(selector, "v1")
    mtimes = {
        name: os.stat(os.path.join(path, name)).st_mtime_ns
        for name in os.listdir(path)
    }
    store.publish(selector, "v2")
    store.publish(selector, "v1")  # back-flip: version dir already exists
    assert store.current_sha() == "v1"
    for name, mtime in mtimes.items():
        assert os.stat(os.path.join(path, name)).st_mtime_ns == mtime, (
            f"republish rewrote {name} instead of reusing the version"
        )


# -- the shared-mmap property ------------------------------------------------


def test_attaches_share_one_mmap_of_the_published_arrays(store, selector):
    """Every attach maps the same files — one page-cache copy for N."""
    vdir = store.publish(selector, "v1")
    workers = [store.attach("v1") for _ in range(3)]
    expected = os.path.join(vdir, "centroids.npy")
    for attached in workers:
        centroids = attached.centroids
        assert isinstance(centroids, np.memmap), type(centroids)
        assert not centroids.flags.writeable
        assert os.path.samefile(centroids.filename, expected)
    # Same bytes, zero private copies: all three views alias one file.
    filenames = {w.centroids.filename for w in workers}
    assert len({os.path.realpath(f) for f in filenames}) == 1


def test_attach_performs_no_validation_work(store, selector):
    """Attach emits no load/validation telemetry — the publisher's
    shadow validation (a golden-feature predict) is the only one."""
    store.publish(selector, "v1")
    TELEMETRY.enable()
    try:
        TELEMETRY.reset()
        for _ in range(3):
            store.attach("v1")
        snap = TELEMETRY.registry.snapshot()
    finally:
        TELEMETRY.disable()
    assert snap["serving.store.attached"]["value"] == 3.0
    # A validating load would run the golden predict and stamp these.
    assert "deploy.predictions" not in snap
    assert "deploy.predict_seconds" not in snap
    assert not any("validate" in name for name in snap)


# -- torn/missing versions ---------------------------------------------------


def test_attach_missing_version_raises(store):
    with pytest.raises(ModelStoreError, match="missing or torn"):
        store.attach("nope")


def test_attach_torn_version_raises(store, selector):
    vdir = store.publish(selector, "v1")
    os.unlink(os.path.join(vdir, "centroids.npy"))
    with pytest.raises(ModelStoreError):
        store.attach("v1")


def test_attach_rejects_manifest_naming_unknown_arrays(store, selector):
    import json

    vdir = store.publish(selector, "v1")
    manifest_path = os.path.join(vdir, "manifest.json")
    manifest = json.load(open(manifest_path))
    manifest["arrays"].append("__import__")
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
    with pytest.raises(ModelStoreError, match="unknown array"):
        store.attach("v1")


# -- StoreModelHost reload state machine -------------------------------------


def test_store_host_attaches_current_on_boot(store, selector, fake_clock):
    store.publish(selector, "v1")
    host = StoreModelHost(store, clock=fake_clock)
    assert not host.degraded
    assert host.active.sha256 == "v1"
    snap = host.snapshot()
    assert snap["degraded"] is False
    assert snap["sha256"] == "v1"
    assert snap["reloads"] == 0 and snap["quarantined"] == 0


def test_store_host_degraded_on_empty_store(store, fake_clock):
    host = StoreModelHost(store, clock=fake_clock)
    assert host.degraded
    assert "no published model" in host.snapshot()["error"]


def test_store_host_swaps_on_pointer_flip(store, fake_clock):
    store.publish(synthetic_frozen_selector(seed=3), "v1")
    host = StoreModelHost(store, clock=fake_clock)
    assert host.check_reload() == RELOAD_UNCHANGED
    store.publish(synthetic_frozen_selector(seed=4), "v2")
    assert host.check_reload() == RELOAD_SWAPPED
    assert host.active.sha256 == "v2"
    assert host.n_reloads == 1


def test_store_host_pointer_rewrite_same_sha_is_unchanged(
    store, selector, fake_clock
):
    store.publish(selector, "v1")
    host = StoreModelHost(store, clock=fake_clock)
    store.set_current("v1")  # new pointer file, same version
    assert host.check_reload() == RELOAD_UNCHANGED
    assert host.n_reloads == 0


def test_store_host_quarantines_torn_flip_and_keeps_serving(
    store, selector, fake_clock
):
    store.publish(selector, "v1")
    host = StoreModelHost(store, clock=fake_clock)
    store.set_current("deadbeef")  # points at a version that never landed
    assert host.check_reload() == RELOAD_QUARANTINED
    assert host.active.sha256 == "v1", "quarantine must not unpublish"
    assert not host.degraded
    assert host.n_quarantined == 1
    # A later good flip recovers.
    store.publish(synthetic_frozen_selector(seed=5), "v3")
    assert host.check_reload() == RELOAD_SWAPPED
    assert host.active.sha256 == "v3"


# -- GC: publish-order grace list ---------------------------------------------


def test_prune_keeps_current_and_grace_list(store):
    for i in range(1, 5):
        store.publish(synthetic_frozen_selector(seed=i), f"v{i}")
    assert store.publish_order() == ["v1", "v2", "v3", "v4"]
    pruned = store.prune(keep=2)
    assert pruned == ["v1", "v2"]
    assert store.publish_order() == ["v3", "v4"]
    assert not os.path.isdir(store.version_dir("v1"))
    assert not os.path.isdir(store.version_dir("v2"))
    # Both survivors stay attachable: a worker mid-attach on the version
    # published one flip ago must not lose the files under its mmap.
    for sha in ("v3", "v4"):
        assert store.attach(sha) is not None


def test_prune_below_one_is_a_noop(store, selector):
    store.publish(selector, "v1")
    store.publish(synthetic_frozen_selector(seed=4), "v2")
    assert store.prune(keep=0) == []
    assert store.prune(keep=-3) == []
    assert os.path.isdir(store.version_dir("v1"))
    assert store.publish_order() == ["v1", "v2"]


def test_prune_never_removes_current_even_when_old(store):
    for i in range(1, 4):
        store.publish(synthetic_frozen_selector(seed=i), f"v{i}")
    store.set_current("v1")  # operator rolled back past the grace list
    pruned = store.prune(keep=1)
    assert "v1" not in pruned
    assert os.path.isdir(store.version_dir("v1"))
    assert store.attach("v1") is not None


def test_prune_is_idempotent(store):
    for i in range(1, 4):
        store.publish(synthetic_frozen_selector(seed=i), f"v{i}")
    assert store.prune(keep=2) == ["v1"]
    assert store.prune(keep=2) == []


# -- per-array integrity ------------------------------------------------------


def _corrupt(path: str) -> None:
    """Flip bytes mid-file: same length, different content digest."""
    with open(path, "r+b") as fh:
        fh.seek(max(os.path.getsize(path) // 2, 0))
        fh.write(b"\xff\x00\xff\x00")


def test_publish_records_per_array_digests(store, selector):
    import json

    vdir = store.publish(selector, "v1")
    manifest = json.load(open(os.path.join(vdir, "manifest.json")))
    assert set(manifest["digests"]) == set(manifest["arrays"])
    for digest in manifest["digests"].values():
        assert len(digest) == 64  # sha256 hex


def test_attach_rejects_bitflipped_array(store, selector):
    vdir = store.publish(selector, "v1")
    _corrupt(os.path.join(vdir, "centroids.npy"))
    with pytest.raises(ModelStoreError, match="integrity failure"):
        store.attach("v1")


def test_host_boot_falls_back_past_corrupt_current(store, fake_clock):
    store.publish(synthetic_frozen_selector(seed=3), "v1")
    store.publish(synthetic_frozen_selector(seed=4), "v2")
    _corrupt(os.path.join(store.version_dir("v2"), "centroids.npy"))
    host = StoreModelHost(store, clock=fake_clock)
    # The corrupt CURRENT is quarantined; the previous published version
    # bridges the gap instead of serving degraded.
    assert not host.degraded
    assert host.active.sha256 == "v1"
    assert host.n_quarantined == 1
    assert host.n_fallbacks == 1
    snap = host.snapshot()
    assert snap["quarantined"] == 1 and snap["fallbacks"] == 1


def test_reload_quarantines_corrupt_flip_and_keeps_serving(
    store, fake_clock
):
    store.publish(synthetic_frozen_selector(seed=3), "v1")
    host = StoreModelHost(store, clock=fake_clock)
    store.publish(synthetic_frozen_selector(seed=4), "v2")
    _corrupt(os.path.join(store.version_dir("v2"), "centroids.npy"))
    assert host.check_reload() == RELOAD_QUARANTINED
    assert host.active.sha256 == "v1", "quarantine must not unpublish"
    assert not host.degraded
    # A later clean publish recovers normally.
    store.publish(synthetic_frozen_selector(seed=5), "v3")
    assert host.check_reload() == RELOAD_SWAPPED
    assert host.active.sha256 == "v3"
