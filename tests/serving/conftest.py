"""Shared serving fixtures: fake clock and an on-disk synthetic model."""

from __future__ import annotations

import pytest

from repro.serving.drill import synthetic_frozen_selector


class FakeClock:
    """A manually advanced monotonic clock for state-machine tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def model_path(tmp_path):
    """A valid synthetic frozen model saved to disk."""
    path = tmp_path / "model.npz"
    synthetic_frozen_selector(seed=3).save(path)
    return str(path)
