"""Ingestion gateway and wire-protocol parsing."""

import json

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.io import matrix_market_string
from repro.serving.gateway import GatewayLimits, IngestError, IngestionGateway
from repro.serving.protocol import (
    RequestParseError,
    encode_response,
    ok_response,
    parse_request_line,
)

BANNER = "%%MatrixMarket matrix coordinate real general\n"


@pytest.fixture
def gateway():
    return IngestionGateway(
        GatewayLimits(max_matrix_bytes=4096, max_dim=1000, max_nnz=500)
    )


def _mtx(small_coo) -> str:
    return matrix_market_string(small_coo)


def _code(gateway, body) -> str:
    with pytest.raises(IngestError) as exc_info:
        gateway.ingest(body)
    return exc_info.value.code


def test_valid_inline_matrix(gateway, small_coo):
    matrix, vec = gateway.ingest({"mtx": _mtx(small_coo)})
    assert matrix.nnz == small_coo.nnz
    assert vec.shape == (1, 21)
    assert np.all(np.isfinite(vec))


def test_valid_path_matrix(gateway, small_coo, tmp_path):
    path = tmp_path / "m.mtx"
    path.write_text(_mtx(small_coo))
    matrix, _ = gateway.ingest({"path": str(path)})
    assert matrix.nnz == small_coo.nnz


def test_missing_payload(gateway):
    assert _code(gateway, {}) == "missing_field"
    assert _code(gateway, {"mtx": 42}) == "missing_field"
    assert _code(gateway, {"path": "/nonexistent/m.mtx"}) == "missing_field"


def test_oversized_inline_rejected(gateway):
    assert _code(gateway, {"mtx": "%" * 5000}) == "payload_too_large"


def test_oversized_file_rejected(gateway, tmp_path):
    path = tmp_path / "big.mtx"
    path.write_text("%" * 5000)
    assert _code(gateway, {"path": str(path)}) == "payload_too_large"


def test_strict_policy_applied_inline(gateway):
    nan = BANNER + "2 2 1\n1 1 nan\n"
    dup = BANNER + "2 2 2\n1 1 1.0\n1 1 2.0\n"
    huge = BANNER + "2000 2000 1\n1 1 1.0\n"
    assert _code(gateway, {"mtx": nan}) == "nonfinite_value"
    assert _code(gateway, {"mtx": dup}) == "duplicate_entry"
    assert _code(gateway, {"mtx": huge}) == "too_large"


def test_zero_nnz_matrix_features_guarded(gateway):
    # An empty matrix is parseable; features must still come back
    # certified finite (or be rejected) — never NaN into the model.
    text = BANNER + "3 3 0\n"
    try:
        _, vec = gateway.ingest({"mtx": text})
    except IngestError as exc:
        assert exc.code == "bad_features"
    else:
        assert np.all(np.isfinite(vec))


def test_single_entry_matrix(gateway):
    matrix, vec = gateway.ingest({"mtx": BANNER + "1 1 1\n1 1 2.5\n"})
    assert isinstance(matrix, COOMatrix)
    assert np.all(np.isfinite(vec))


# -- protocol ---------------------------------------------------------------


def _parse_code(line: str, max_bytes: int = 4096) -> str:
    with pytest.raises(RequestParseError) as exc_info:
        parse_request_line(line, max_bytes)
    return exc_info.value.response["code"]


def test_parse_valid_line():
    request = parse_request_line(
        json.dumps({"id": "a", "op": "health"}), 4096
    )
    assert request.id == "a" and request.op == "health"


def test_parse_default_op_is_predict():
    request = parse_request_line(json.dumps({"mtx": "x"}), 4096)
    assert request.op == "predict"


def test_parse_rejections():
    assert _parse_code("{not json") == "bad_json"
    assert _parse_code('["a", "b"]') == "not_object"
    assert _parse_code('{"op": "explode"}') == "unknown_op"
    assert _parse_code("x" * 100, max_bytes=50) == "payload_too_large"


def test_encode_response_deterministic():
    response = ok_response("r1", format="csr", centroid=3)
    first = encode_response(response)
    second = encode_response(dict(reversed(list(response.items()))))
    assert first == second  # key order never changes the bytes
    assert "\n" not in first and " " not in first
