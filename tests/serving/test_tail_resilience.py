"""Tail-latency resilience: deadlines, hedging, brownout, drain (§15).

The four mechanisms under test share one accounting contract — all
routed/completed/worker_lost bookkeeping happens once per *logical*
request in ``ServingTier._route``, so the conservation laws

- ``routed == completed + worker_lost``
- ``completed == primary_wins + hedge_wins``

hold exactly even when a request has two pendings in flight (hedged) or
never reaches a worker at all (expired deadline, draining refusal).
Most tests here drive the tier's pure decision methods or a tier whose
``_forward`` is stubbed, so they run without worker subprocesses; the
drain drill at the end boots a real fleet.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time

import pytest

from repro.serving.admission import AdmissionController
from repro.serving.drill import (
    _random_matrix_text,
    audit_tier_conservation,
    run_tier_drain_drill,
)
from repro.serving.frontend import ServingTier, TierConfig, WorkerHandle
from repro.serving.protocol import (
    CODE_DEADLINE,
    CODE_DRAINING,
    CODE_WORKER_LOST,
    invalid_response,
    parse_request_line,
)
from repro.serving.routing import HashRing
from repro.serving.server import SelectorServer, ServingConfig
from tests.serving.test_frontend import _boot_tier, _ops


def _tier(tmp_path, model_path, **overrides) -> ServingTier:
    """A tier with a published model but no worker processes."""
    config = TierConfig(
        model_path=model_path,
        run_dir=str(tmp_path / "run"),
        workers=2,
        **overrides,
    )
    return ServingTier(config)


def _fake_worker(tier: ServingTier, name: str) -> WorkerHandle:
    """Register a process-less worker on the tier's ring."""
    handle = WorkerHandle(
        name, os.path.join(tier.config.run_dir, f"{name}.sock")
    )
    tier.workers[name] = handle
    tier.ring.add(name)
    return handle


def _predict_line(request_id: str = "p0", **extra) -> str:
    return json.dumps({"id": request_id, "op": "predict", **extra})


def _key_routed_to(ring: HashRing, worker: str) -> str:
    for i in range(10_000):
        key = f"client:probe-{i}"
        if ring.assign(key) == worker:
            return key
    raise AssertionError(f"no key routed to {worker}")


# -- deadline propagation ------------------------------------------------------


def test_deadline_ms_parsing_tolerates_hostile_values():
    def budget(value) -> float | None:
        line = json.dumps({"id": "x", "op": "predict", "deadline_ms": value})
        return parse_request_line(line).budget_ms

    assert budget(250) == 250.0
    assert budget(0.5) == 0.5
    # A numeric budget <= 0 is kept: admission expires it immediately.
    assert budget(-3) == -3.0
    # Hostile values are ignored, never rejected.
    assert budget(True) is None
    assert budget("soon") is None
    assert budget(float("nan")) is None
    assert budget(float("inf")) is None
    assert budget(None) is None


def test_budget_seconds_min_combines_client_and_config(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, request_timeout_seconds=60.0)
    no_budget = parse_request_line(_predict_line())
    tight = parse_request_line(_predict_line(deadline_ms=500))
    loose = parse_request_line(_predict_line(deadline_ms=120_000))
    assert tier._budget_seconds(no_budget) == 60.0
    assert tier._budget_seconds(tight) == 0.5
    assert tier._budget_seconds(loose) == 60.0

    unbounded = _tier(
        tmp_path / "u", model_path, request_timeout_seconds=0.0
    )
    assert unbounded._budget_seconds(no_budget) is None
    assert unbounded._budget_seconds(tight) == 0.5


def test_route_expires_deadline_before_any_forward(tmp_path, model_path):
    async def scenario():
        tier = _tier(tmp_path, model_path)
        _fake_worker(tier, "w0")

        async def must_not_forward(handle, request, trace_id, deadline=None):
            raise AssertionError("expired request reached a worker")

        tier._forward = must_not_forward
        request = parse_request_line(_predict_line(deadline_ms=0))
        response = await tier._route(request, "client:c0")
        return tier, response

    tier, response = asyncio.run(scenario())
    assert response["status"] == "overloaded"
    assert response["code"] == CODE_DEADLINE
    assert tier.n_deadline_exceeded == 1
    assert tier.n_routed == 0
    assert not audit_tier_conservation(tier)


def test_admission_min_combines_wire_budget(fake_clock):
    queue = AdmissionController(
        max_pending=8, deadline_seconds=5.0, clock=fake_clock
    )
    tight = parse_request_line(_predict_line("a", deadline_ms=100))
    loose = parse_request_line(_predict_line("b", deadline_ms=60_000))
    plain = parse_request_line(_predict_line("c"))
    for request in (tight, loose, plain):
        queue.offer(request)
    assert math.isclose(tight.deadline, fake_clock() + 0.1)
    assert math.isclose(loose.deadline, fake_clock() + 5.0)
    assert math.isclose(plain.deadline, fake_clock() + 5.0)

    # Past the wire budget the request is dead on dequeue, while the
    # configured 5s deadline alone would still have admitted it.
    fake_clock.advance(0.2)
    request, expired = queue.take()
    assert request is loose
    assert expired == [tight]
    assert queue.n_expired == 1


def test_admission_honors_budget_without_configured_deadline(fake_clock):
    queue = AdmissionController(
        max_pending=8, deadline_seconds=None, clock=fake_clock
    )
    budgeted = parse_request_line(_predict_line("a", deadline_ms=50))
    unbudgeted = parse_request_line(_predict_line("b"))
    queue.offer(budgeted)
    queue.offer(unbudgeted)
    assert math.isclose(budgeted.deadline, fake_clock() + 0.05)
    assert unbudgeted.deadline is None
    fake_clock.advance(1.0)
    request, expired = queue.take()
    assert request is unbudgeted
    assert expired == [budgeted]


def test_worker_pre_predict_deadline_gate(model_path, fake_clock):
    """The last gate: a budget that ran out *after* dequeue still wins."""
    fake_clock.advance(100.0)
    server = SelectorServer(
        ServingConfig(model_path=model_path), clock=fake_clock
    )
    request = parse_request_line(
        _predict_line("late", mtx=_random_matrix_text(0, 0))
    )
    request.deadline = fake_clock() - 0.001
    response = server.process(request)
    assert response["status"] == "overloaded"
    assert response["code"] == CODE_DEADLINE
    assert server.counters["deadline_exceeded"] == 1


# -- hedged dispatch -----------------------------------------------------------


def test_ring_successors_primary_first_and_distinct():
    ring = HashRing()
    for name in ("w0", "w1", "w2", "w3"):
        ring.add(name)
    for i in range(50):
        key = f"client:{i}"
        order = ring.successors(key)
        assert order[0] == ring.assign(key)
        assert len(order) == len(set(order)) == 4
        assert ring.successors(key, limit=2) == order[:2]
    assert HashRing().successors("anything") == []


def test_hedge_delay_gating(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, hedge_ms=5.0, hedge_budget=0.05)
    # A single-worker ring has nowhere distinct to hedge to.
    _fake_worker(tier, "w0")
    assert tier._hedge_delay_seconds() is None
    _fake_worker(tier, "w1")
    assert tier._hedge_delay_seconds() == pytest.approx(0.005)
    tier._draining = True
    assert tier._hedge_delay_seconds() is None
    tier._draining = False

    off = _tier(tmp_path / "off", model_path, hedge_ms=0.0)
    _fake_worker(off, "w0")
    _fake_worker(off, "w1")
    assert off._hedge_delay_seconds() is None

    no_budget = _tier(tmp_path / "nb", model_path, hedge_ms=5.0,
                      hedge_budget=0.0)
    _fake_worker(no_budget, "w0")
    _fake_worker(no_budget, "w1")
    assert no_budget._hedge_delay_seconds() is None


def test_auto_hedge_delay_arms_at_p95_after_warmup(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, hedge_warmup=32)
    _fake_worker(tier, "w0")
    _fake_worker(tier, "w1")
    for _ in range(31):
        tier._record_latency(0.010)
    assert tier._hedge_delay_seconds() is None, "armed before warmup"
    tier._record_latency(0.200)  # sample 32: recompute fires
    delay = tier._hedge_delay_seconds()
    assert delay is not None
    # p95 of 31x10ms + 1x200ms sits at the 10ms mass, floored at 1ms.
    assert 0.001 <= delay <= 0.200


def test_hedge_token_bucket_caps_burst(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, hedge_budget=0.05)
    assert tier._hedge_burst == pytest.approx(1.6)
    assert tier._take_hedge_token()  # 1.6 -> 0.6
    assert not tier._take_hedge_token(), "bucket below one token"
    # Routed traffic refills at the budget rate, capped at the burst.
    tier._hedge_tokens = min(
        tier._hedge_burst, tier._hedge_tokens + 100 * 0.05
    )
    assert tier._hedge_tokens == pytest.approx(tier._hedge_burst)


def test_hedge_target_skips_primary_browned_and_retiring(
    tmp_path, model_path
):
    tier = _tier(tmp_path, model_path)
    handles = {n: _fake_worker(tier, n) for n in ("w0", "w1", "w2")}
    key = "client:tenant-7"
    order = tier.ring.successors(key)
    primary = handles[order[0]]
    target = tier._hedge_target(key, primary)
    assert target is handles[order[1]]
    target.browned_out = True
    third = tier._hedge_target(key, primary)
    assert third is handles[order[2]]
    third.retiring = True
    assert tier._hedge_target(key, primary) is None


def _stub_forward(tier, latencies: dict, responses: dict | None = None):
    """Instance-level ``_forward`` stub: per-worker latency + response."""

    async def fake_forward(handle, request, trace_id, deadline=None):
        await asyncio.sleep(latencies.get(handle.name, 0.0))
        if responses and handle.name in responses:
            return dict(responses[handle.name], id=request.id)
        return {"status": "ok", "id": request.id, "worker": handle.name}

    tier._forward = fake_forward


def test_hedge_rescues_slow_primary_first_response_wins(
    tmp_path, model_path
):
    async def scenario():
        tier = _tier(
            tmp_path, model_path, hedge_ms=5.0, hedge_budget=1.0
        )
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        key = _key_routed_to(tier.ring, "w0")
        _stub_forward(tier, {"w0": 0.25, "w1": 0.002})
        request = parse_request_line(_predict_line())
        response = await tier._route(request, key)
        await asyncio.sleep(0.3)  # let the losing branch finish cleanly
        return tier, response

    tier, response = asyncio.run(scenario())
    assert response["worker"] == "w1", "hedge response did not win"
    assert tier.n_hedges == 1
    assert tier.n_hedge_wins == 1 and tier.n_primary_wins == 0
    assert tier.n_routed == tier.n_completed == 1
    assert not audit_tier_conservation(tier)


def test_fast_primary_never_hedges(tmp_path, model_path):
    async def scenario():
        tier = _tier(
            tmp_path, model_path, hedge_ms=50.0, hedge_budget=1.0
        )
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        key = _key_routed_to(tier.ring, "w0")
        _stub_forward(tier, {"w0": 0.001, "w1": 0.001})
        responses = []
        for i in range(5):
            request = parse_request_line(_predict_line(f"p{i}"))
            responses.append(await tier._route(request, key))
        return tier, responses

    tier, responses = asyncio.run(scenario())
    assert all(r["worker"] == "w0" for r in responses)
    assert tier.n_hedges == 0
    assert tier.n_primary_wins == 5 and tier.n_hedge_wins == 0
    assert not audit_tier_conservation(tier)


def test_empty_token_bucket_blocks_hedging(tmp_path, model_path):
    async def scenario():
        tier = _tier(
            tmp_path, model_path, hedge_ms=2.0, hedge_budget=0.01
        )
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        tier._hedge_tokens = 0.0
        key = _key_routed_to(tier.ring, "w0")
        _stub_forward(tier, {"w0": 0.03, "w1": 0.001})
        request = parse_request_line(_predict_line())
        response = await tier._route(request, key)
        return tier, response

    tier, response = asyncio.run(scenario())
    assert response["worker"] == "w0", "hedged without a token"
    assert tier.n_hedges == 0 and tier.n_primary_wins == 1


def test_lost_branch_is_held_while_other_may_answer(tmp_path, model_path):
    """A worker_lost branch is a last resort, not an answer."""

    async def scenario():
        tier = _tier(
            tmp_path, model_path, hedge_ms=5.0, hedge_budget=1.0
        )
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        key = _key_routed_to(tier.ring, "w0")
        lost = invalid_response(CODE_WORKER_LOST, "gone", "x")
        # Primary dies (typed lost) after the hedge fires; the hedge
        # answers later but for real.
        _stub_forward(
            tier,
            {"w0": 0.02, "w1": 0.06},
            responses={"w0": lost},
        )
        request = parse_request_line(_predict_line())
        response = await tier._route(request, key)
        return tier, response

    tier, response = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["worker"] == "w1"
    assert tier.n_worker_lost == 0 and tier.n_completed == 1
    assert tier.n_hedge_wins == 1
    assert not audit_tier_conservation(tier)


def test_both_branches_lost_surfaces_typed_loss(tmp_path, model_path):
    async def scenario():
        tier = _tier(
            tmp_path, model_path, hedge_ms=5.0, hedge_budget=1.0
        )
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        key = _key_routed_to(tier.ring, "w0")
        lost = invalid_response(CODE_WORKER_LOST, "gone", "x")
        _stub_forward(
            tier,
            {"w0": 0.02, "w1": 0.03},
            responses={"w0": lost, "w1": lost},
        )
        request = parse_request_line(_predict_line())
        response = await tier._route(request, key)
        return tier, response

    tier, response = asyncio.run(scenario())
    assert response["code"] == CODE_WORKER_LOST
    assert tier.n_worker_lost == 1 and tier.n_completed == 0
    assert tier.n_routed == 1
    assert not audit_tier_conservation(tier)


# -- brownout routing ----------------------------------------------------------


def _scored(handle: WorkerHandle, ewma: float, samples: int = 32) -> None:
    handle.ewma_seconds = ewma
    handle.n_observed = samples


def test_brownout_pulls_latency_outlier_off_ring(tmp_path, model_path):
    tier = _tier(
        tmp_path, model_path,
        brownout_factor=4.0, brownout_cooldown_seconds=0.0,
    )
    handles = {n: _fake_worker(tier, n) for n in ("w0", "w1", "w2")}
    _scored(handles["w0"], 0.002)
    _scored(handles["w1"], 0.003)
    _scored(handles["w2"], 0.500)
    tier._brownout_check()
    assert handles["w2"].browned_out
    assert "w2" not in tier.ring
    assert "w2" in tier.workers, "brownout must not kill the worker"
    assert tier.n_brownouts == 1
    # The survivors stay routable.
    assert set(tier.ring.workers) == {"w0", "w1"}


def test_uniformly_fast_fleet_never_browns_out(tmp_path, model_path):
    tier = _tier(
        tmp_path, model_path,
        brownout_factor=4.0, brownout_floor_seconds=0.005,
        brownout_cooldown_seconds=0.0,
    )
    handles = {n: _fake_worker(tier, n) for n in ("w0", "w1")}
    # 4x spread, but both far under the absolute floor.
    _scored(handles["w0"], 0.0002)
    _scored(handles["w1"], 0.0009)
    tier._brownout_check()
    assert not any(h.browned_out for h in handles.values())
    assert tier.n_brownouts == 0


def test_brownout_requires_two_active_and_samples(tmp_path, model_path):
    tier = _tier(
        tmp_path, model_path,
        brownout_factor=4.0, brownout_cooldown_seconds=0.0,
    )
    solo = _fake_worker(tier, "w0")
    _scored(solo, 5.0)
    tier._brownout_check()
    assert not solo.browned_out, "browned out the only worker"

    fresh = _fake_worker(tier, "w1")
    _scored(fresh, 9.0, samples=1)  # under brownout_min_samples
    tier._brownout_check()
    assert not fresh.browned_out, "trusted an unwarmed EWMA"


def test_reinstate_restores_ring_and_resets_evidence(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, brownout_cooldown_seconds=0.0)
    handles = {n: _fake_worker(tier, n) for n in ("w0", "w1", "w2")}
    _scored(handles["w0"], 0.002)
    _scored(handles["w1"], 0.003)
    _scored(handles["w2"], 0.900)
    tier._brownout_check()
    assert handles["w2"].browned_out
    tier._reinstate(handles["w2"])
    assert not handles["w2"].browned_out
    assert "w2" in tier.ring
    assert handles["w2"].ewma_seconds is None, "stale EWMA survived"
    assert handles["w2"].n_observed == 0
    assert tier.n_reinstated == 1


def test_probes_reinstate_after_consecutive_healthy(tmp_path, model_path):
    async def scenario():
        tier = _tier(tmp_path, model_path, brownout_probes=3)
        handle = _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        tier.ring.remove("w0")
        handle.browned_out = True
        handle.brownout_threshold = 0.5
        probe_states = iter(["ok", "ok", "degraded", "ok", "ok", "ok"])

        async def fake_forward(h, request, trace_id, deadline=None):
            return {"status": "ok", "id": request.id,
                    "state": next(probe_states)}

        tier._forward = fake_forward
        streaks = []
        for _ in range(6):
            await tier._probe_brownouts()
            streaks.append(handle.probe_successes)
            if not handle.browned_out:
                break
        return tier, handle, streaks

    tier, handle, streaks = asyncio.run(scenario())
    # Two healthy probes, a degraded one resetting the streak, then the
    # three consecutive ones the contract requires.
    assert streaks[:3] == [1, 2, 0]
    assert not handle.browned_out
    assert "w0" in tier.ring
    assert tier.n_reinstated == 1


# -- graceful drain ------------------------------------------------------------


def test_draining_rejects_new_work_but_ops_answer(tmp_path, model_path):
    async def scenario():
        tier = _tier(tmp_path, model_path)
        _fake_worker(tier, "w0")
        _fake_worker(tier, "w1")
        _stub_forward(
            tier, {},
            responses={
                "w0": {"status": "ok", "state": "ok"},
                "w1": {"status": "ok", "state": "ok"},
            },
        )
        tier._draining = True
        refused = await tier.dispatch(_predict_line(), "conn:1")
        health = await tier.dispatch(
            json.dumps({"id": "h", "op": "healthz"}), "conn:1"
        )
        return tier, refused, health

    tier, refused, health = asyncio.run(scenario())
    assert refused["status"] == "overloaded"
    assert refused["code"] == CODE_DRAINING
    assert tier.n_draining_rejected == 1
    # An operator watching the drain still gets aggregated health.
    assert health["status"] == "ok"
    assert health.get("code") != CODE_DRAINING
    assert health["worker_states"] == {"w0": "ok", "w1": "ok"}


def test_begin_drain_is_idempotent_and_stops_the_tier(
    tmp_path, model_path
):
    async def scenario():
        tier = _tier(tmp_path, model_path, drain_timeout_seconds=1.0)
        tier.begin_drain()
        first_task = tier._drain_task
        tier.begin_drain()  # SIGTERM and shutdown may both fire
        assert tier._drain_task is first_task
        await asyncio.wait_for(first_task, timeout=10.0)
        return tier

    tier = asyncio.run(scenario())
    assert tier._stopping
    assert tier._stop_event.is_set()


def test_graceful_drain_drill_zero_dropped_requests(model_path, tmp_path):
    """Real fleet: deadline refusal, drain ack, typed straggler, exit."""

    async def scenario():
        tier, task, front = await _boot_tier(str(tmp_path), model_path, 2)
        reader, writer = await asyncio.open_unix_connection(front)
        try:
            # Deadline propagation end to end: an out-of-budget request
            # is refused at the front-end without consuming a worker.
            writer.write(
                (_predict_line(
                    "late", deadline_ms=0,
                    mtx=_random_matrix_text(0, 0),
                ) + "\n").encode()
            )
            await writer.drain()
            expired = json.loads(await reader.readline())
            # And a healthy one still completes.
            writer.write(
                (_predict_line(
                    "live", mtx=_random_matrix_text(1, 0)
                ) + "\n").encode()
            )
            await writer.drain()
            live = json.loads(await reader.readline())
        finally:
            writer.close()
        report = await run_tier_drain_drill(front, n_inflight=3, seed=1)
        await asyncio.wait_for(task, timeout=30.0)
        return tier, expired, live, report

    tier, expired, live, report = asyncio.run(scenario())
    assert expired["status"] == "overloaded"
    assert expired["code"] == CODE_DEADLINE
    assert live["status"] == "ok"
    assert not report.violations, report.violations
    assert tier.n_deadline_exceeded == 1
    assert tier.n_draining_rejected >= 1
    assert not audit_tier_conservation(tier)
