"""Property tests for the consistent-hash ring (DESIGN §14).

The tier's state-locality contract rests on two ring properties:

1. **Stable assignment** — routing depends only on the member *set*.
   Two front-ends that joined workers in different orders, or a
   front-end that restarted, must route every key identically, or
   per-client admission/breaker state silently forks.
2. **Bounded movement** — membership changes disturb only the keys
   touching the changed worker: adding ``w`` moves only keys *onto*
   ``w``; removing ``w`` moves only the keys that *were on* ``w``.
   Everything else keeps its worker, so its breaker state stays warm.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.serving.routing import DEFAULT_REPLICAS, HashRing, stable_hash
from tests.conftest import HYPOTHESIS_SCALE

worker_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)
worker_sets = st.sets(worker_names, min_size=1, max_size=8)
keys = st.lists(
    st.text(min_size=0, max_size=24), min_size=1, max_size=64
)


def build_ring(workers, replicas: int = DEFAULT_REPLICAS) -> HashRing:
    ring = HashRing(replicas=replicas)
    for worker in workers:
        ring.add(worker)
    return ring


# -- stable assignment -------------------------------------------------------


@given(workers=worker_sets, sample=keys, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
def test_assignment_independent_of_join_order(workers, sample, seed):
    """Any two join orders over the same set route every key alike."""
    import random

    ordered = sorted(workers)
    shuffled = list(ordered)
    random.Random(seed).shuffle(shuffled)
    a, b = build_ring(ordered), build_ring(shuffled)
    for key in sample:
        assert a.assign(key) == b.assign(key)


@given(workers=worker_sets, sample=keys)
@settings(max_examples=40 * HYPOTHESIS_SCALE, deadline=None)
def test_assignment_survives_leave_and_rejoin(workers, sample):
    """remove(w) then add(w) restores the exact original routing."""
    ring = build_ring(sorted(workers))
    before = {key: ring.assign(key) for key in sample}
    victim = sorted(workers)[0]
    ring.remove(victim)
    ring.add(victim)
    assert {key: ring.assign(key) for key in sample} == before


@given(workers=worker_sets, sample=keys)
@settings(max_examples=40 * HYPOTHESIS_SCALE, deadline=None)
def test_assignment_is_deterministic_and_member_valued(workers, sample):
    ring = build_ring(workers)
    for key in sample:
        owner = ring.assign(key)
        assert owner in workers
        assert ring.assign(key) == owner


# -- bounded movement --------------------------------------------------------


@given(workers=worker_sets, joiner=worker_names, sample=keys)
@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
def test_adding_a_worker_moves_keys_only_onto_it(workers, joiner, sample):
    ring = build_ring(workers)
    before = {key: ring.assign(key) for key in sample}
    ring.add(joiner)
    for key in sample:
        after = ring.assign(key)
        if after != before[key]:
            assert after == joiner, (
                f"key {key!r} moved {before[key]!r} -> {after!r} when "
                f"{joiner!r} joined"
            )


@given(workers=st.sets(worker_names, min_size=2, max_size=8), sample=keys)
@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
def test_removing_a_worker_moves_only_its_keys(workers, sample):
    ring = build_ring(workers)
    before = {key: ring.assign(key) for key in sample}
    victim = sorted(workers)[-1]
    ring.remove(victim)
    for key in sample:
        after = ring.assign(key)
        if before[key] != victim:
            assert after == before[key], (
                f"key {key!r} was on {before[key]!r} but moved to "
                f"{after!r} when unrelated worker {victim!r} left"
            )
        else:
            assert after != victim


# -- hashing and ring mechanics ----------------------------------------------


@given(text=st.text(max_size=64))
@settings(max_examples=60 * HYPOTHESIS_SCALE, deadline=None)
def test_stable_hash_is_a_64_bit_pure_function(text):
    value = stable_hash(text)
    assert 0 <= value < 2**64
    assert stable_hash(text) == value


def test_stable_hash_known_values_are_process_independent():
    # Pinned values: a change here breaks routing compatibility between
    # front-end versions and must be treated as a breaking change.
    assert stable_hash("client:alice") == 0xBDB89AB86B4A6AED
    assert stable_hash("w0:0") == 0x06A43A4A11825382


def test_empty_ring_raises_lookup_error():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.assign("anything")


def test_add_and_remove_are_idempotent():
    ring = HashRing(replicas=8)
    ring.add("w0")
    ring.add("w0")
    assert len(ring._points) == 8
    ring.remove("w0")
    ring.remove("w0")
    assert len(ring) == 0 and not ring._points


def test_membership_surface():
    ring = build_ring(["w1", "w0"])
    assert ring.workers == ("w0", "w1")
    assert len(ring) == 2
    assert "w0" in ring and "w9" not in ring


def test_replicas_must_be_positive():
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_vnodes_spread_load_roughly_evenly():
    """With 64 vnodes/worker no worker hogs or starves a key sample."""
    ring = build_ring([f"w{i}" for i in range(4)])
    sample = [f"client:{i}" for i in range(4000)]
    spread = ring.spread(sample)
    assert sum(spread.values()) == len(sample)
    for worker, count in spread.items():
        share = count / len(sample)
        assert 0.10 <= share <= 0.45, (worker, spread)
