"""Autoscaler edge cases: fixed fleets, busy victims, churn conservation.

``plan_scale`` / ``scale_down_victim`` are pure decision functions over
the live fleet, so the dangerous edges — a fixed-size tier that must
never churn, a scale-down that would retire a worker with requests in
flight — are tested without processes.  The churn test at the end boots
a real fleet and retires a worker mid-burst to prove the accounting
survives the transition: ``routed == completed + worker_lost``.
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.serving.drill import (
    _random_matrix_text,
    audit_tier_conservation,
)
from repro.serving.frontend import (
    ServingTier,
    TierConfig,
    WorkerHandle,
    _Pending,
    drive_tier,
)
from tests.serving.test_frontend import _ops


def _tier(tmp_path, model_path, **overrides) -> ServingTier:
    config = TierConfig(
        model_path=model_path,
        run_dir=str(tmp_path / "run"),
        **overrides,
    )
    return ServingTier(config)


def _handle(name: str, inflight: int = 0, age: float = 0.0) -> WorkerHandle:
    handle = WorkerHandle(name, f"/tmp/{name}.sock")
    handle.started_at = age
    for i in range(inflight):
        handle.pending.append(_Pending(None, "predict", f"{name}-{i}"))
    return handle


# -- plan_scale ----------------------------------------------------------------


def test_min_equals_max_never_scales(tmp_path, model_path):
    """A fixed-size tier is a hard no-scale band regardless of depth."""
    tier = _tier(tmp_path, model_path, workers=2)
    assert tier.config.min_workers == tier.config.max_workers == 2
    drowning = [_handle("w0", inflight=50), _handle("w1", inflight=50)]
    idle = [_handle("w0"), _handle("w1")]
    assert tier.plan_scale(drowning) is None
    assert tier.plan_scale(idle) is None


def test_plan_scale_respects_floor_and_ceiling(tmp_path, model_path):
    tier = _tier(
        tmp_path, model_path, workers=2, workers_min=1, workers_max=3,
        scale_up_depth=4.0, scale_down_depth=0.25,
    )
    deep = [_handle("w0", inflight=6), _handle("w1", inflight=6)]
    assert tier.plan_scale(deep) == "up"
    tier.target_workers = 3  # at the ceiling: depth no longer matters
    assert tier.plan_scale(deep) is None

    tier.target_workers = 2
    shallow = [_handle("w0"), _handle("w1")]
    assert tier.plan_scale(shallow) == "down"
    tier.target_workers = 1  # at the floor
    assert tier.plan_scale([_handle("w0")]) is None
    assert tier.plan_scale([]) is None


# -- scale_down_victim ---------------------------------------------------------


def test_scale_down_never_retires_a_busy_worker(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, workers=2, workers_min=1)
    all_busy = [
        _handle("w0", inflight=1), _handle("w1", inflight=3),
    ]
    assert tier.scale_down_victim(all_busy) is None, (
        "retiring a busy worker converts live requests into losses"
    )


def test_scale_down_picks_youngest_idle_worker(tmp_path, model_path):
    tier = _tier(tmp_path, model_path, workers=3, workers_min=1)
    fleet = [
        _handle("w0", inflight=0, age=10.0),
        _handle("w1", inflight=2, age=30.0),
        _handle("w2", inflight=0, age=20.0),
    ]
    victim = tier.scale_down_victim(fleet)
    # w1 is busy (protected); w2 is the youngest idle worker.
    assert victim is fleet[2]


# -- churn conservation --------------------------------------------------------


def test_retire_respawn_churn_preserves_conservation(model_path, tmp_path):
    """Retiring a worker mid-burst drops nothing and the fleet recovers."""
    lines = [
        json.dumps(
            {
                "id": f"p{i}",
                "op": "predict",
                "client": f"tenant-{i % 8}",
                "mtx": _random_matrix_text(i, 5),
            }
        )
        for i in range(24)
    ]

    async def scenario():
        tier = ServingTier(
            TierConfig(
                model_path=model_path,
                run_dir=str(tmp_path),
                workers=2,
                boot_timeout_seconds=120.0,
                scale_interval_seconds=0.1,
            )
        )
        front = os.path.join(str(tmp_path), "front.sock")
        task = asyncio.ensure_future(tier.run_socket(front))
        for _ in range(2400):
            if os.path.exists(front):
                break
            if task.done():
                task.result()
            await asyncio.sleep(0.05)
        else:
            raise TimeoutError("tier front-end socket never appeared")

        def retire_one():
            name = sorted(tier.workers)[0]
            asyncio.ensure_future(
                tier._retire_worker(tier.workers[name])
            )

        try:
            pairs = await drive_tier(
                front, lines, connections=4, actions={8: retire_one}
            )
            for _ in range(400):  # the scale loop respawns to target
                if len(tier.workers) >= 2 and all(
                    not w.retiring for w in tier.workers.values()
                ):
                    break
                await asyncio.sleep(0.05)
            fleet = len(tier.workers)
        finally:
            (await _ops(front, "shutdown"))
            await asyncio.wait_for(task, timeout=30.0)
        return tier, pairs, fleet

    tier, pairs, fleet = asyncio.run(scenario())

    assert len(pairs) == len(lines), "a connection hung or dropped"
    for _, response in pairs:
        assert "status" in response, response
    assert fleet == 2, "fleet did not return to its target size"
    assert tier.n_routed == tier.n_completed + tier.n_worker_lost
    assert not audit_tier_conservation(tier)
