"""Request-level serving observability: traces, ops, access log, SLOs."""

from __future__ import annotations

import json

import pytest

from repro.obs import TELEMETRY, EventLog, read_events
from repro.serving.drill import _random_matrix_text
from repro.serving.server import SelectorServer, ServingConfig


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _predict_line(i=0, request_id="p0"):
    return json.dumps({
        "id": request_id, "op": "predict", "mtx": _random_matrix_text(i, 0),
    })


def _server(model_path, **overrides):
    config = ServingConfig(
        model_path=model_path, hot_reload=False, **overrides
    )
    return SelectorServer(config)


class TestMetricsOp:
    def test_live_quantiles_without_telemetry(self, model_path):
        server = _server(model_path)
        for i in range(10):
            server.handle_line(_predict_line(i, f"p{i}"))
        response = server.handle_line(json.dumps({"id": "m", "op": "metrics"}))
        assert response["status"] == "ok"
        q = response["quantiles_ms"]
        assert set(q) == {"p50", "p95", "p99"}
        assert 0 < q["p50"] <= q["p95"] <= q["p99"]
        hist = response["metrics"]["serving.latency_seconds"]
        assert hist["count"] == 10  # the metrics request itself not yet in
        assert "serving.breaker.open_seconds" in response["metrics"]
        assert "serving.queue.depth" in response["metrics"]

    def test_quantiles_null_before_first_request(self, model_path):
        server = _server(model_path)
        response = server.handle_line(json.dumps({"op": "metrics"}))
        assert response["quantiles_ms"] == {
            "p50": None, "p95": None, "p99": None,
        }

    def test_snapshot_keys_sorted(self, model_path):
        server = _server(model_path)
        server.handle_line(_predict_line())
        snap = server.metrics_snapshot()
        assert list(snap) == sorted(snap)

    def test_metrics_op_is_valid_json(self, model_path):
        server = _server(model_path)
        response = server.handle_line(json.dumps({"op": "metrics"}))
        json.loads(json.dumps(response, allow_nan=False))  # no NaN leaks


class TestHealthzOp:
    def test_reports_ok_state(self, model_path):
        server = _server(model_path)
        server.handle_line(_predict_line())
        response = server.handle_line(json.dumps({"id": "h", "op": "healthz"}))
        assert response["status"] == "ok"
        assert response["state"] == "ok"
        assert response["model_usable"] is True
        assert response["breaker_state"] == "closed"
        assert response["queue_depth"] == 0
        assert response["uptime_seconds"] >= 0
        assert response["latency_ms"]["p50"] is not None

    def test_degraded_when_model_unusable(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an npz")
        server = _server(str(bad))
        response = server.handle_line(json.dumps({"op": "healthz"}))
        assert response["state"] == "degraded"
        assert response["model_usable"] is False


class TestRequestTracing:
    def test_predict_span_tree_covers_stages(self, model_path):
        TELEMETRY.enable()
        server = _server(model_path)
        response = server.handle_line(_predict_line())
        assert response["status"] == "ok"
        # Server construction traces its own model-load probe; the
        # request root is the only serving.request span.
        (root,) = [
            r for r in TELEMETRY.tracer.roots if r.name == "serving.request"
        ]
        assert root.attrs["op"] == "predict"
        assert len(root.attrs["trace"]) == 32
        child_names = [c.name for c in root.children]
        assert child_names == [
            "serving.gateway", "serving.breaker", "serving.predict",
        ]

    def test_trace_id_never_in_response(self, model_path):
        TELEMETRY.enable()
        server = _server(model_path)
        response = server.handle_line(_predict_line())
        assert "trace" not in response
        assert "trace_id" not in response

    def test_responses_byte_identical_with_telemetry_on_or_off(
        self, model_path
    ):
        def run(enabled):
            TELEMETRY.reset()
            TELEMETRY.enable() if enabled else TELEMETRY.disable()
            server = _server(model_path)
            # Predict responses only: health/metrics payloads carry
            # wall-clock readings that vary run to run by design.
            lines = [_predict_line(i, f"p{i}") for i in range(8)]
            return [
                json.dumps(server.handle_line(line), sort_keys=True)
                for line in lines
            ]

        assert run(False) == run(True)


class TestAccessLog:
    def test_logs_one_event_per_request(self, model_path, tmp_path):
        log_path = tmp_path / "access.jsonl"
        server = SelectorServer(
            ServingConfig(model_path=model_path, hot_reload=False),
            access_log=EventLog(str(log_path)),
        )
        server.handle_line(_predict_line(0, "a"))
        server.handle_line("this is not json")
        server.access_log.close()
        events = read_events(str(log_path))
        assert len(events) == 2
        ok = events[0]
        assert ok["event"] == "request"
        assert ok["status"] == "ok"
        assert ok["id"] == "a"
        assert ok["op"] == "predict"
        assert len(ok["trace"]) == 32
        assert ok["latency_ms"] > 0
        bad = events[1]
        assert bad["status"] == "invalid"
        assert bad["code"] == "bad_json"

    def test_no_access_log_is_fine(self, model_path):
        server = _server(model_path)
        assert server.handle_line(_predict_line())["status"] == "ok"


class TestBreakerOpenSeconds:
    def test_accumulates_while_open(self, model_path, fake_clock):
        from repro.serving.breaker import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=10.0, probe_successes=1,
            clock=fake_clock,
        )
        breaker.record_failure()
        breaker.record_failure()        # trips open at t=0
        assert breaker.snapshot()["state"] == "open"
        fake_clock.advance(4.0)
        assert breaker.open_seconds == pytest.approx(4.0)
        fake_clock.advance(6.0)
        assert breaker.allow()          # 10s elapsed -> half-open probe
        assert breaker.open_seconds == pytest.approx(10.0)
        fake_clock.advance(5.0)         # half-open time does not count
        assert breaker.open_seconds == pytest.approx(10.0)
        assert breaker.snapshot()["open_seconds"] == pytest.approx(10.0)


class TestChaosCountersExported:
    """Satellite: the chaos drill must populate + export serving counters."""

    def test_drill_counters_land_in_metrics_snapshot(self, model_path):
        from repro.runtime.faults import FaultInjector, FaultSpec
        from repro.serving.drill import build_request_lines, run_serve_drill

        TELEMETRY.enable()
        server = SelectorServer(
            ServingConfig(
                model_path=model_path,
                queue_size=4,           # small queue forces sheds
                breaker_failures=2,
                breaker_reset_seconds=0.05,
            ),
            # Near-certain failures so the breaker reliably trips.
            fault_injector=FaultInjector(
                FaultSpec(failure_rate=0.9, seed=7)
            ),
        )
        lines, expectations = build_request_lines(120, seed=0)
        report = run_serve_drill(server, lines, expectations, burst=16)
        assert report.ok, report.violations
        snap = server.metrics_snapshot()
        assert snap["serving.shed"]["value"] > 0
        assert snap["serving.admitted"]["value"] > 0
        assert snap["serving.breaker.opened"]["value"] > 0
        assert snap["serving.gateway.rejected"]["value"] > 0
        assert snap["serving.fallback.breaker_open"]["value"] > 0
        assert "serving.breaker.open_seconds" in snap
        # ...and the same counters round-trip through the exported JSON
        # the chaos CLI writes for `repro obs report`.
        dumped = json.loads(json.dumps(snap, sort_keys=True))
        assert dumped["serving.shed"]["value"] == snap["serving.shed"]["value"]

    def test_reload_counters_exported_on_hot_swap(self, tmp_path):
        from repro.serving.drill import synthetic_frozen_selector

        path = tmp_path / "model.npz"
        synthetic_frozen_selector(seed=3).save(path)
        TELEMETRY.enable()
        server = SelectorServer(ServingConfig(model_path=str(path)))
        server.handle_line(_predict_line(0, "warm"))
        # Corrupt candidate: quarantined, never swapped in.
        path.write_bytes(b"\x00garbage\x00" * 16)
        server.handle_line(_predict_line(1, "after-corrupt"))
        # Healthy retrained candidate: swapped.
        synthetic_frozen_selector(seed=4, n_centroids=8).save(path)
        server.handle_line(_predict_line(2, "after-retrain"))
        snap = server.metrics_snapshot()
        assert snap["serving.reload.quarantined"]["value"] >= 1
        assert snap["serving.reload.swapped"]["value"] >= 1
