"""Bucket-interpolated and exact quantile estimation."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    Histogram,
    bucket_quantile,
    exact_quantile,
    quantile_key,
    snapshot_quantile,
    summarize,
)


class TestBucketQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5))

    def test_interpolates_within_bucket(self):
        # 10 observations, all in the (1.0, 2.0] bucket: p50 ranks at
        # sample 5 of 10, half-way into the bucket.
        est = bucket_quantile([1.0, 2.0, 4.0], [0, 10, 0, 0], 0.5)
        assert est == pytest.approx(1.5)

    def test_first_bucket_lower_edge_is_zero(self):
        est = bucket_quantile([1.0, 2.0], [10, 0, 0], 0.5)
        assert est == pytest.approx(0.5)

    def test_overflow_bucket_returns_highest_finite_edge(self):
        est = bucket_quantile([1.0, 2.0], [0, 0, 5], 0.99)
        assert est == 2.0

    def test_clamped_to_observed_envelope(self):
        # All ten samples were exactly 1.2; without the envelope the
        # p99 estimate would float toward the bucket's upper edge.
        est = bucket_quantile([1.0, 2.0], [0, 10, 0], 0.99, lo=1.2, hi=1.2)
        assert est == pytest.approx(1.2)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0], [0, 0], 1.5)

    def test_rejects_mismatched_counts(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0, 2.0], [1, 2], 0.5)

    def test_monotone_in_q(self):
        edges = [0.001, 0.01, 0.1, 1.0]
        counts = [5, 20, 60, 10, 5]
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        ests = [bucket_quantile(edges, counts, q) for q in qs]
        assert ests == sorted(ests)


class TestSnapshotQuantile:
    def test_roundtrips_histogram_snapshot(self):
        h = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5):
            h.observe(v)
        snap = h.snapshot()
        assert snapshot_quantile(snap, 0.5) == pytest.approx(h.quantile(0.5))

    def test_non_histogram_is_nan(self):
        assert math.isnan(snapshot_quantile({"type": "counter"}, 0.5))

    def test_summarize_keys(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        summary = summarize(h.snapshot())
        assert sorted(summary) == ["p50", "p95", "p99"]


class TestQuantileKey:
    def test_no_float_noise(self):
        assert quantile_key(0.95) == "p95"
        assert quantile_key(0.99) == "p99"
        assert quantile_key(0.5) == "p50"

    def test_fractional_quantile(self):
        assert quantile_key(0.999) == "p99.9"


class TestExactQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(exact_quantile([], 0.5))

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert exact_quantile(samples, 0.5) == 50.0
        assert exact_quantile(samples, 0.95) == 95.0
        assert exact_quantile(samples, 0.99) == 99.0
        assert exact_quantile(samples, 0.0) == 1.0
        assert exact_quantile(samples, 1.0) == 100.0

    def test_unsorted_input(self):
        assert exact_quantile([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], -0.1)
