"""The JSONL event log: append, rotation, and read-back."""

from __future__ import annotations

import json
import threading

from repro.obs import EventLog, read_events


class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        self.now += 0.25
        return self.now


def test_emit_appends_one_json_line_per_event(tmp_path):
    path = tmp_path / "access.jsonl"
    with EventLog(str(path), clock=_FakeClock()) as log:
        log.emit("request", status="ok", latency_ms=1.25)
        log.emit("request", status="error", code="bad_json")
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "request"
    assert first["status"] == "ok"
    assert first["ts"] == 1000.25
    # Keys are sorted for stable, diffable output.
    assert lines[0] == json.dumps(json.loads(lines[0]), sort_keys=True)


def test_read_events_roundtrips(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLog(str(path)) as log:
        for i in range(5):
            log.emit("tick", i=i)
        assert log.n_events == 5
    assert [e["i"] for e in read_events(str(path))] == list(range(5))


def test_rotation_shifts_backups(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLog(str(path), max_bytes=200, backups=2) as log:
        for i in range(50):
            log.emit("tick", i=i, pad="x" * 20)
        assert log.n_rotations > 0
    assert (tmp_path / "log.jsonl.1").exists()
    # Every surviving line is intact JSON (rotation never splits a record).
    total = []
    for name in ("log.jsonl", "log.jsonl.1", "log.jsonl.2"):
        p = tmp_path / name
        if p.exists():
            total.extend(read_events(str(p)))
    assert all(e["event"] == "tick" for e in total)
    # The newest records are in the live file.
    assert read_events(str(path))[-1]["i"] == 49


def test_zero_backups_truncates(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLog(str(path), max_bytes=120, backups=0) as log:
        for i in range(30):
            log.emit("tick", i=i)
    assert not (tmp_path / "log.jsonl.1").exists()
    assert path.stat().st_size <= 200


def test_non_serializable_fields_fall_back_to_str(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLog(str(path)) as log:
        log.emit("weird", obj=object())
    (event,) = read_events(str(path))
    assert "object object" in event["obj"]


def test_concurrent_emitters_never_interleave(tmp_path):
    path = tmp_path / "log.jsonl"
    log = EventLog(str(path))

    def emitter(tag):
        for i in range(100):
            log.emit("tick", tag=tag, i=i)

    threads = [
        threading.Thread(target=emitter, args=(t,)) for t in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    log.close()
    events = read_events(str(path))
    assert len(events) == 400  # every line parsed cleanly
