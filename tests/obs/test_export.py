"""Coverage for the telemetry export/rendering helpers."""

from __future__ import annotations

import io
import json

from repro.obs.export import (
    _fmt_seconds,
    dump_profile,
    render_metrics,
    render_span_tree,
)
from repro.obs.telemetry import Telemetry


def traced_session() -> Telemetry:
    t = Telemetry().enable()
    with t.span("campaign", size=3):
        with t.span("stats"):
            pass
        with t.span("bench", arch="pascal"):
            pass
    t.inc("items", 3)
    t.gauge_set("utilization", 0.5)
    t.observe("latency", 0.002)
    return t


def test_fmt_seconds_units():
    assert _fmt_seconds(2.5).strip().endswith("s")
    assert "ms" in _fmt_seconds(0.005)
    assert "us" in _fmt_seconds(0.0000005)


def test_render_span_tree_shows_hierarchy_and_attrs():
    t = traced_session()
    text = render_span_tree(t.tracer)
    lines = text.splitlines()
    assert any("campaign" in line and "size=3" in line for line in lines)
    # children indent one level deeper than the root
    root = next(line for line in lines if "campaign" in line)
    child = next(line for line in lines if "stats" in line)
    assert child.index("stats") > root.index("campaign")
    assert any("arch=pascal" in line for line in lines)


def test_render_span_tree_respects_max_depth():
    t = Telemetry().enable()
    with t.span("a"):
        with t.span("b"):
            with t.span("c"):
                pass
    text = render_span_tree(t.tracer, max_depth=1)
    assert "a" in text and "b" in text
    assert "c" not in text.split()


def test_render_span_tree_empty():
    assert render_span_tree(Telemetry().tracer) == "(no spans recorded)"


def test_render_metrics_counter_gauge_histogram():
    t = traced_session()
    text = render_metrics(t.registry)
    assert "items: 3" in text
    assert "utilization: 0.5" in text
    assert "latency: count=1" in text and "mean=" in text


def test_render_metrics_empty_histogram_and_registry():
    t = Telemetry().enable()
    t.observe("never", 1.0)
    t.registry.reset()
    assert render_metrics(t.registry) == "(no metrics recorded)"


def test_dump_profile_without_trace_path():
    t = traced_session()
    out = io.StringIO()
    dump_profile(t, trace_path=None, stream=out)
    text = out.getvalue()
    assert "[obs] span tree:" in text
    assert "[obs] metrics:" in text
    assert "written to" not in text


def test_dump_profile_writes_jsonl_trace(tmp_path):
    t = traced_session()
    trace_path = tmp_path / "trace.jsonl"
    out = io.StringIO()
    dump_profile(t, trace_path=str(trace_path), stream=out)
    assert "span events written to" in out.getvalue()
    events = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if line
    ]
    assert events, "trace file should contain span events"
