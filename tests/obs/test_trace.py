"""Span trees, nesting/reentrancy, and the Chrome-trace JSONL export."""

from __future__ import annotations

import json
import threading
from pathlib import Path

import repro.obs.trace as trace_mod
from repro.obs import Tracer

GOLDEN = Path(__file__).parent / "golden"


class FakeClock:
    """perf_counter stand-in ticking 1.0s per call — deterministic traces."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def _deterministic_tracer(monkeypatch) -> Tracer:
    monkeypatch.setattr(trace_mod.time, "perf_counter", FakeClock())
    monkeypatch.setattr(trace_mod.threading, "get_ident", lambda: 1)
    return Tracer()


def test_span_nesting_builds_a_tree():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a") as a:
            with tracer.span("a.1"):
                pass
        with tracer.span("b"):
            pass
    assert [r.name for r in tracer.roots] == ["root"]
    assert [c.name for c in root.children] == ["a", "b"]
    assert [c.name for c in a.children] == ["a.1"]
    assert a.parent_id == root.span_id
    assert root.parent_id == -1
    assert root.duration >= a.duration + root.children[1].duration


def test_span_reentrancy_same_name():
    """The same span name can nest within itself (recursive call sites)."""
    tracer = Tracer()
    with tracer.span("recurse") as outer:
        with tracer.span("recurse") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == -1
    # Only the outer is a root; ids distinguish the instances.
    assert len(tracer.roots) == 1
    assert inner.span_id != outer.span_id


def test_sequential_roots_accumulate():
    tracer = Tracer()
    for i in range(3):
        with tracer.span(f"r{i}"):
            pass
    assert [r.name for r in tracer.roots] == ["r0", "r1", "r2"]
    assert tracer.total_seconds() >= 0


def test_attributes_and_error_flag():
    tracer = Tracer()
    with tracer.span("ok", n=3) as s:
        s.set(extra="yes")
    assert s.attrs == {"n": 3, "extra": "yes"}
    try:
        with tracer.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert tracer.roots[-1].attrs["error"] == "RuntimeError"


def test_walk_yields_parents_before_children():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child"):
            with tracer.span("grand"):
                pass
    names = [s.name for s in tracer.walk()]
    assert names == ["root", "child", "grand"]


def test_events_are_chrome_trace_complete_events(monkeypatch):
    tracer = _deterministic_tracer(monkeypatch)
    with tracer.span("root", kind="test"):
        with tracer.span("child"):
            pass
    events = tracer.events()
    assert len(events) == 2
    for ev in events:
        assert ev["ph"] == "X"
        assert set(ev) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                           "args"}
    root_ev = next(e for e in events if e["name"] == "root")
    child_ev = next(e for e in events if e["name"] == "child")
    assert child_ev["args"]["parent"] == root_ev["args"]["id"]
    assert root_ev["args"]["kind"] == "test"
    # FakeClock: epoch=1, root start=2, child start=3, child end=4, root
    # end=5 (one extra tick for child duration read at export is avoided
    # because end is recorded).
    assert root_ev["ts"] == 1e6
    assert root_ev["dur"] == 3e6
    assert child_ev["dur"] == 1e6


def test_jsonl_export_matches_golden(monkeypatch, tmp_path):
    tracer = _deterministic_tracer(monkeypatch)
    with tracer.span("cli.train", size=50):
        with tracer.span("features.extract_collection"):
            pass
        with tracer.span("kmeans.fit"):
            pass
    path = tmp_path / "trace.jsonl"
    n = tracer.write_jsonl(str(path))
    assert n == 3
    produced = path.read_text(encoding="utf-8")
    golden = (GOLDEN / "trace.jsonl").read_text(encoding="utf-8")
    assert produced == golden
    # Every line is standalone JSON.
    for line in produced.strip().splitlines():
        assert json.loads(line)["ph"] == "X"


def test_out_of_order_exit_does_not_corrupt_stack():
    tracer = Tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    # Close the outer first (leaked inner): the stack unwinds past it.
    outer.__exit__(None, None, None)
    assert tracer.current() is None
    with tracer.span("next"):
        pass
    assert [r.name for r in tracer.roots] == ["outer", "next"]


def test_threads_get_independent_stacks():
    tracer = Tracer()
    seen = {}

    def work(tag):
        with tracer.span(f"root.{tag}"):
            with tracer.span(f"child.{tag}") as c:
                seen[tag] = c

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    roots = tracer.roots
    assert sorted(r.name for r in roots) == [f"root.{i}" for i in range(4)]
    for root in roots:
        # Each root has exactly its own thread's child.
        assert len(root.children) == 1
        tag = int(root.name.split(".")[1])
        assert root.children[0] is seen[tag]


def test_reset_clears_roots():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    assert tracer.roots
    tracer.reset()
    assert tracer.roots == []
    assert tracer.events() == []
