"""The global facade: no-op mode must be free, enabled mode must record."""

from __future__ import annotations

import tracemalloc

from repro.obs import NOOP_SPAN, TELEMETRY, Stopwatch, Telemetry


def test_disabled_span_is_the_shared_noop_singleton():
    t = Telemetry()
    assert t.span("a") is NOOP_SPAN
    assert t.span("b") is t.span("c")
    with t.span("nested") as s:
        assert s is NOOP_SPAN
        assert s.set(x=1) is NOOP_SPAN
        assert s.duration == 0.0


def test_disabled_span_does_not_allocate_per_call():
    t = Telemetry()
    # Warm up allocation caches (method wrappers, tracemalloc internals).
    for _ in range(100):
        with t.span("warmup"):
            pass
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(10_000):
        with t.span("hot"):
            pass
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    net = sum(s.size_diff for s in after.compare_to(before, "lineno"))
    # Zero retained allocation: 10k no-op spans must not grow the heap
    # (allow a small constant for tracemalloc's own bookkeeping).
    assert net < 10_000 * 1  # far below one byte per call


def test_disabled_metric_helpers_are_noops():
    t = Telemetry()
    t.inc("c")
    t.gauge_set("g", 5)
    t.observe("h", 0.1)
    assert t.registry.names() == []


def test_enabled_records_spans_and_metrics():
    t = Telemetry().enable()
    with t.span("root", n=1):
        t.inc("c", 2)
        t.gauge_set("g", 5)
        t.observe("h", 0.1)
    assert [r.name for r in t.tracer.roots] == ["root"]
    assert t.registry.counter("c").value == 2
    assert t.registry.gauge("g").value == 5
    assert t.registry.histogram("h").count == 1
    t.disable()
    assert t.span("after") is NOOP_SPAN


def test_timer_measures_even_when_disabled():
    t = Telemetry()
    with t.timer("work") as sw:
        sum(range(1000))
    assert isinstance(sw, Stopwatch)
    assert sw.duration > 0
    # Disabled timers leave no trace behind.
    assert t.tracer.roots == []


def test_timer_is_a_traced_span_when_enabled():
    t = Telemetry().enable()
    with t.timer("work") as sp:
        pass
    assert sp.duration >= 0
    assert [r.name for r in t.tracer.roots] == ["work"]


def test_current_span_tracks_nesting_only_when_enabled():
    t = Telemetry()
    assert t.current_span() is None
    t.enable()
    with t.span("outer") as outer:
        assert t.current_span() is outer
        with t.span("inner") as inner:
            assert t.current_span() is inner
    assert t.current_span() is None


def test_reset_keeps_the_switch_state():
    t = Telemetry().enable()
    with t.span("x"):
        t.inc("c")
    t.reset()
    assert t.tracer.roots == []
    assert t.registry.names() == []
    assert t.enabled


def test_global_singleton_is_disabled_by_default():
    # The conftest fixture guarantees the flag here; the assertion
    # documents the policy for instrumented hot paths.
    assert not TELEMETRY.enabled
