"""Trace-context propagation: activation, capture, and stitching."""

from __future__ import annotations

from repro.obs import (
    TELEMETRY,
    TraceContext,
    activate,
    current_context,
    new_trace_id,
    request_scope,
    stitch,
    worker_capture,
)


def _names(tracer):
    return [span.name for span in tracer.walk()]


class TestTraceContext:
    def test_new_trace_id_is_32_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)  # raises if not hex

    def test_child_keeps_trace_id(self):
        ctx = TraceContext("abc")
        child = ctx.child(7)
        assert child.trace_id == "abc"
        assert child.parent_span_id == 7
        assert ctx.parent_span_id == -1  # frozen; parent untouched

    def test_activate_nests_and_restores(self):
        assert current_context() is None
        with activate(TraceContext("outer")) as outer:
            assert current_context() is outer
            with activate(TraceContext("inner")) as inner:
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None


class TestRequestScope:
    def test_disabled_still_activates_context(self):
        with request_scope("req", trace_id="t1"):
            ctx = current_context()
            assert ctx is not None
            assert ctx.trace_id == "t1"
        assert TELEMETRY.tracer.events() == []

    def test_enabled_opens_root_span_with_trace_attr(self):
        TELEMETRY.enable()
        with request_scope("req", trace_id="t2", op="predict") as span:
            ctx = current_context()
            assert ctx.trace_id == "t2"
            # Inside the scope the active context points at the root span.
            assert ctx.parent_span_id == span.span_id
        (event,) = TELEMETRY.tracer.events()
        assert event["name"] == "req"
        assert event["args"]["trace"] == "t2"
        assert event["args"]["op"] == "predict"


class TestWorkerCapture:
    def test_none_context_skips_capture(self):
        result, payload = worker_capture(None, "chunk", lambda: 41)
        assert result == 41
        assert payload is None

    def test_captures_spans_and_metrics(self):
        def body():
            TELEMETRY.inc("work.items", 3)
            with TELEMETRY.span("work.inner"):
                pass
            return "done"

        ctx = TraceContext("t3")
        result, payload = worker_capture(
            ctx, "chunk", body, span_attrs={"chunk": 0}
        )
        assert result == "done"
        names = [s["name"] for s in payload["spans"]]
        assert names == ["chunk", "work.inner"]
        root = payload["spans"][0]
        assert root["attrs"]["trace"] == "t3"
        assert root["attrs"]["chunk"] == 0
        assert payload["metrics"]["work.items"]["value"] == 3.0
        # The harness leaves the (worker-side) global telemetry clean.
        assert not TELEMETRY.enabled
        assert TELEMETRY.tracer.events() == []

    def test_fork_inherited_state_never_leaks_into_payload(self):
        # Simulate a fork: the parent had telemetry running with spans
        # and counters when the worker process was cloned.
        TELEMETRY.enable()
        TELEMETRY.inc("parent.counter", 99)
        with TELEMETRY.span("parent.stale"):
            pass
        _, payload = worker_capture(TraceContext("t4"), "chunk", lambda: 0)
        assert [s["name"] for s in payload["spans"]] == ["chunk"]
        assert "parent.counter" not in payload["metrics"]


class TestStitch:
    def _payload(self, trace_id="t5"):
        def body():
            TELEMETRY.inc("work.items", 2)
            return None

        _, payload = worker_capture(TraceContext(trace_id), "chunk", body)
        return payload

    def test_noop_when_payload_empty_or_disabled(self):
        TELEMETRY.enable()
        assert stitch(None) == 0
        TELEMETRY.disable()
        assert stitch(self._payload()) == 0
        assert TELEMETRY.tracer.events() == []

    def test_adopts_subtree_under_open_span_and_merges_metrics(self):
        payload = self._payload()
        TELEMETRY.reset()
        TELEMETRY.enable()
        with TELEMETRY.span("parent.root"):
            adopted = stitch(payload, anchor=100.0)
        assert adopted == 1
        roots = TELEMETRY.tracer.roots
        assert [r.name for r in roots] == ["parent.root"]
        assert [c.name for c in roots[0].children] == ["chunk"]
        # The adopted subtree is re-anchored into the parent clock domain.
        assert roots[0].children[0].end == 100.0
        snap = TELEMETRY.registry.snapshot()
        assert snap["work.items"]["value"] == 2.0

    def test_merging_twice_accumulates(self):
        payload = self._payload()
        TELEMETRY.reset()
        TELEMETRY.enable()
        with TELEMETRY.span("parent.root"):
            stitch(payload)
            stitch(payload)
        snap = TELEMETRY.registry.snapshot()
        assert snap["work.items"]["value"] == 4.0
        assert len(TELEMETRY.tracer.roots[0].children) == 2
