"""Telemetry tests must not leak global state into each other."""

from __future__ import annotations

import pytest

from repro.obs import TELEMETRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
