"""Trace aggregation: self vs cumulative time, rendering, parsing."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TraceParseError,
    aggregate,
    load_trace,
    render_hot_paths,
    stats_report,
    total_root_seconds,
)


def _event(name, span_id, parent, dur_us, ts=0.0):
    return {
        "name": name,
        "cat": "repro",
        "ph": "X",
        "ts": ts,
        "dur": dur_us,
        "pid": 0,
        "tid": 1,
        "args": {"id": span_id, "parent": parent},
    }


@pytest.fixture
def sample_events():
    # root (10ms) -> a (6ms) -> a1 (1ms); root -> b (2ms); second a (4ms,
    # its own root) with no children.
    return [
        _event("root", 1, -1, 10_000),
        _event("a", 2, 1, 6_000),
        _event("a1", 3, 2, 1_000),
        _event("b", 4, 1, 2_000),
        _event("a", 5, -1, 4_000),
    ]


def test_aggregate_self_vs_cumulative(sample_events):
    by_name = {h.name: h for h in aggregate(sample_events)}
    assert by_name["root"].calls == 1
    assert by_name["root"].cum_seconds == pytest.approx(0.010)
    # root self = 10 - (6 + 2) = 2ms
    assert by_name["root"].self_seconds == pytest.approx(0.002)
    # 'a' groups both spans: cum = 6 + 4, self = (6 - 1) + 4
    assert by_name["a"].calls == 2
    assert by_name["a"].cum_seconds == pytest.approx(0.010)
    assert by_name["a"].self_seconds == pytest.approx(0.009)
    assert by_name["a"].mean_seconds == pytest.approx(0.005)
    # Leaves: self == cum.
    assert by_name["a1"].self_seconds == by_name["a1"].cum_seconds
    assert by_name["b"].self_seconds == pytest.approx(0.002)


def test_aggregate_sorts_by_self_time(sample_events):
    hot = aggregate(sample_events)
    self_times = [h.self_seconds for h in hot]
    assert self_times == sorted(self_times, reverse=True)
    assert hot[0].name == "a"


def test_total_root_seconds(sample_events):
    assert total_root_seconds(sample_events) == pytest.approx(0.014)


def test_self_time_never_negative():
    # A child reported longer than its parent (clock skew): clamp to 0.
    events = [
        _event("p", 1, -1, 1_000),
        _event("c", 2, 1, 2_000),
    ]
    by_name = {h.name: h for h in aggregate(events)}
    assert by_name["p"].self_seconds == 0.0


def test_render_hot_paths_table(sample_events):
    table = render_hot_paths(aggregate(sample_events))
    lines = table.splitlines()
    assert "span" in lines[0] and "self%" in lines[0]
    assert len(lines) == 2 + 4  # header + rule + 4 names
    assert lines[2].startswith("a ")
    table_top = render_hot_paths(aggregate(sample_events), top=2)
    assert len(table_top.splitlines()) == 2 + 2
    # Percentages are computed over ALL names, even when truncated.
    assert "%" in table_top


def test_load_trace_roundtrip(tmp_path, sample_events):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "\n".join(json.dumps(e) for e in sample_events) + "\n",
        encoding="utf-8",
    )
    events = load_trace(str(path))
    assert events == sample_events


def test_load_trace_skips_blank_lines(tmp_path, sample_events):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "\n\n" + json.dumps(sample_events[0]) + "\n\n", encoding="utf-8"
    )
    assert len(load_trace(str(path))) == 1


def test_load_trace_rejects_non_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n", encoding="utf-8")
    with pytest.raises(TraceParseError):
        load_trace(str(path))


def test_load_trace_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"foo": 1}\n', encoding="utf-8")
    with pytest.raises(TraceParseError):
        load_trace(str(path))


def test_stats_report_end_to_end(tmp_path, sample_events):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "\n".join(json.dumps(e) for e in sample_events) + "\n",
        encoding="utf-8",
    )
    report = stats_report(str(path))
    assert "events: 5" in report
    assert "covered wall time: 0.0140s" in report
    assert "root" in report and "a1" in report


def test_stats_report_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("", encoding="utf-8")
    with pytest.raises(TraceParseError, match="empty trace"):
        stats_report(str(path))


def test_load_trace_missing_file_is_typed(tmp_path):
    with pytest.raises(TraceParseError, match="cannot read trace"):
        load_trace(str(tmp_path / "nope.jsonl"))
