"""Declarative SLO evaluation over metrics snapshots."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    SLOConfigError,
    evaluate,
    load_slo_file,
)
from repro.obs.slo import report


@pytest.fixture
def snapshot():
    reg = MetricsRegistry()
    reg.counter("serving.shed").inc(5)
    reg.counter("serving.admitted").inc(100)
    reg.gauge("serving.breaker.open_seconds").set(1.5)
    hist = Histogram(
        "serving.latency_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    for _ in range(99):
        hist.observe(0.005)
    hist.observe(0.5)  # one slow outlier drives the p100 tail
    snap = reg.snapshot()
    snap["serving.latency_seconds"] = hist.snapshot()
    return snap


class TestRuleShapes:
    def test_quantile_rule_passes_and_fails(self, snapshot):
        ok_rule = {"name": "p50", "metric": "serving.latency_seconds",
                   "quantile": 0.5, "max": 0.01}
        bad_rule = {"name": "p100", "metric": "serving.latency_seconds",
                    "quantile": 1.0, "max": 0.01}
        results = evaluate([ok_rule, bad_rule], snapshot)
        assert results[0].ok
        assert not results[1].ok
        assert "> max" in results[1].detail

    def test_scalar_rule(self, snapshot):
        (res,) = evaluate(
            [{"name": "breaker", "metric": "serving.breaker.open_seconds",
              "max": 2.0}],
            snapshot,
        )
        assert res.ok
        assert res.value == 1.5

    def test_scalar_rule_on_histogram_uses_count(self, snapshot):
        (res,) = evaluate(
            [{"name": "traffic", "metric": "serving.latency_seconds",
              "min": 100}],
            snapshot,
        )
        assert res.ok
        assert res.value == 100.0

    def test_ratio_rule(self, snapshot):
        (res,) = evaluate(
            [{"name": "shed rate",
              "ratio": ["serving.shed", "serving.admitted"], "max": 0.1}],
            snapshot,
        )
        assert res.ok
        assert res.value == pytest.approx(0.05)

    def test_zero_denominator_is_zero_not_error(self, snapshot):
        snapshot["serving.admitted"]["value"] = 0.0
        (res,) = evaluate(
            [{"name": "shed rate",
              "ratio": ["serving.shed", "serving.admitted"], "max": 0.1}],
            snapshot,
        )
        assert res.ok
        assert res.value == 0.0


class TestMissingMetrics:
    def test_missing_metric_skips_by_default(self, snapshot):
        (res,) = evaluate(
            [{"name": "ghost", "metric": "no.such.metric", "max": 1}],
            snapshot,
        )
        assert res.ok
        assert math.isnan(res.value)
        assert "skipped" in res.detail

    def test_required_missing_metric_fails(self, snapshot):
        (res,) = evaluate(
            [{"name": "ghost", "metric": "no.such.metric", "max": 1,
              "required": True}],
            snapshot,
        )
        assert not res.ok
        assert "required" in res.detail


class TestConfigErrors:
    def test_rule_without_bounds(self, snapshot):
        with pytest.raises(SLOConfigError, match="min/max"):
            evaluate([{"name": "x", "metric": "serving.shed"}], snapshot)

    def test_rule_without_metric_or_ratio(self, snapshot):
        with pytest.raises(SLOConfigError, match="'metric' or 'ratio'"):
            evaluate([{"name": "x", "max": 1}], snapshot)

    def test_quantile_on_non_histogram(self, snapshot):
        with pytest.raises(SLOConfigError, match="needs a histogram"):
            evaluate(
                [{"name": "x", "metric": "serving.shed", "quantile": 0.5,
                  "max": 1}],
                snapshot,
            )

    def test_malformed_ratio(self, snapshot):
        with pytest.raises(SLOConfigError, match="numerator"):
            evaluate(
                [{"name": "x", "ratio": ["only-one"], "max": 1}], snapshot
            )


class TestLoadAndReport:
    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps({"slos": [{"name": "a", "metric": "m", "max": 1}]}),
            encoding="utf-8",
        )
        rules = load_slo_file(str(path))
        assert rules[0]["name"] == "a"

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SLOConfigError, match="cannot read"):
            load_slo_file(str(tmp_path / "nope.json"))

    def test_load_rejects_empty_slos(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": []}), encoding="utf-8")
        with pytest.raises(SLOConfigError, match="non-empty"):
            load_slo_file(str(path))

    def test_report_counts_violations(self, snapshot):
        text, ok = report(
            [{"name": "good", "metric": "serving.breaker.open_seconds",
              "max": 2.0},
             {"name": "bad", "metric": "serving.breaker.open_seconds",
              "max": 0.1}],
            snapshot,
        )
        assert not ok
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 SLOs met, 1 violated" in text

    def test_permissive_ci_gate_parses(self):
        # The file the CI obs-smoke job gates on must stay loadable.
        from pathlib import Path

        path = Path(__file__).parents[2] / "benchmarks" / "slo_permissive.json"
        rules = load_slo_file(str(path))
        assert any(r.get("quantile") == 0.99 for r in rules)
