"""Counters, gauges, histograms, and their exports."""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry

GOLDEN = Path(__file__).parent / "golden"


def test_counter_increments_and_rejects_negative():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_inc():
    g = Gauge("g")
    g.set(4.0)
    g.inc(-1.5)
    assert g.value == 2.5


def test_histogram_bucket_edges_are_le_inclusive():
    h = Histogram("h", buckets=(1.0, 2.0, 4.0))
    # A value exactly on an edge lands in that edge's bucket (le semantics).
    for v in (0.5, 1.0, 1.5, 2.0, 4.0, 4.00001, 100.0):
        h.observe(v)
    counts = h.bucket_counts()
    assert counts["1.0"] == 2          # 0.5, 1.0
    assert counts["2.0"] == 2          # 1.5, 2.0
    assert counts["4.0"] == 1          # 4.0
    assert counts["+Inf"] == 2         # 4.00001, 100.0
    assert h.count == 7
    assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.00001 + 100)
    assert h.mean == pytest.approx(h.sum / 7)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("x")
    assert reg.counter("x") is c1
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert reg.get("missing") is None
    assert reg.names() == ["x"]
    reg.reset()
    assert reg.names() == []


def test_json_snapshot_roundtrips():
    reg = MetricsRegistry()
    reg.counter("a.calls").inc(3)
    reg.gauge("b.level").set(0.5)
    reg.histogram("c.lat", buckets=(0.1, 1.0)).observe(0.05)
    snap = json.loads(reg.to_json())
    assert snap["a.calls"] == {"type": "counter", "value": 3.0}
    assert snap["b.level"] == {"type": "gauge", "value": 0.5}
    assert snap["c.lat"]["count"] == 1
    assert snap["c.lat"]["buckets"]["0.1"] == 1
    assert snap["c.lat"]["min"] == 0.05


def test_prometheus_export_matches_golden():
    reg = MetricsRegistry()
    reg.counter("pipeline.fit_calls", help="fit invocations").inc(2)
    reg.gauge("kmeans.iterations").set(17)
    h = reg.histogram("online.update_seconds", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.002, 0.5):
        h.observe(v)
    produced = reg.to_prometheus()
    golden = (GOLDEN / "metrics.prom").read_text(encoding="utf-8")
    assert produced == golden


def test_prometheus_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0))
    h.observe(0.5)
    h.observe(1.5)
    h.observe(5.0)
    text = reg.to_prometheus()
    assert 'h_bucket{le="1"} 1' in text
    assert 'h_bucket{le="2"} 2' in text
    assert 'h_bucket{le="+Inf"} 3' in text
    assert "h_sum 7" in text
    assert "h_count 3" in text


def test_thread_safety_of_counter():
    reg = MetricsRegistry()

    def work():
        for _ in range(1000):
            reg.counter("t").inc()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("t").value == 8000


def test_empty_histogram_snapshot_has_no_min_max():
    h = Histogram("h", buckets=(1.0,))
    snap = h.snapshot()
    assert snap["count"] == 0
    assert "min" not in snap and "max" not in snap
    assert math.isinf(h._min)


class TestHistogramInvalidGuard:
    """Regression: a single NaN used to poison sum/mean forever."""

    def test_non_finite_observations_are_rejected_and_counted(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        for bad in (math.nan, math.inf, -math.inf):
            h.observe(bad)
        assert h.count == 1               # only the finite sample landed
        assert h.invalid == 3
        assert math.isfinite(h.sum) and h.sum == 0.5
        assert math.isfinite(h.mean)
        assert h.quantile(0.5) == 0.5     # quantiles stay computable

    def test_invalid_key_only_present_when_nonzero(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        assert "invalid" not in h.snapshot()
        h.observe(math.nan)
        assert h.snapshot()["invalid"] == 1

    def test_invalid_total_exported_to_prometheus(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(math.nan)
        assert "h_invalid_total 1" in reg.to_prometheus()


class TestQuantilesOnHistogram:
    def test_summary_keys_and_ordering(self):
        h = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for i in range(100):
            h.observe(0.0001 * (i + 1))
        s = h.summary()
        assert sorted(s) == ["p50", "p95", "p99"]
        assert s["p50"] <= s["p95"] <= s["p99"]

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram("h", buckets=(1.0,)).quantile(0.5))

    def test_prometheus_export_carries_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        text = reg.to_prometheus()
        assert 'h{quantile="0.5"}' in text
        assert 'h{quantile="0.99"}' in text


class TestDeterministicExports:
    """Satellite: snapshot/export ordering must be byte-stable."""

    def _build(self, order):
        reg = MetricsRegistry()
        for name in order:
            if name.startswith("c."):
                reg.counter(name).inc(2)
            elif name.startswith("g."):
                reg.gauge(name).set(1.5)
            else:
                reg.histogram(name, buckets=(0.01, 0.1)).observe(0.05)
        return reg

    def test_exports_independent_of_registration_order(self):
        names = ["c.zeta", "g.alpha", "h.mid", "c.alpha", "g.zeta"]
        a = self._build(names)
        b = self._build(list(reversed(names)))
        assert a.to_json() == b.to_json()
        assert a.to_prometheus() == b.to_prometheus()
        assert list(a.snapshot()) == sorted(a.snapshot())

    def test_repeated_export_is_byte_identical(self):
        reg = self._build(["c.a", "g.b", "h.c"])
        assert reg.to_prometheus() == reg.to_prometheus()
        assert reg.to_json() == reg.to_json()


class TestMergeSnapshot:
    def test_merge_accumulates_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        delta = MetricsRegistry()
        delta.counter("n").inc(3)
        dh = delta.histogram("h", buckets=(1.0, 2.0))
        dh.observe(1.5)
        dh.observe(5.0)
        reg.merge_snapshot(delta.snapshot())
        assert reg.counter("n").value == 5.0
        h = reg.get("h")
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.min == 0.5 and h.max == 5.0
        assert h.bucket_counts()["+Inf"] == 1

    def test_merge_creates_missing_metrics(self):
        reg = MetricsRegistry()
        delta = MetricsRegistry()
        delta.counter("new.counter").inc(4)
        delta.gauge("new.gauge").set(2.0)
        delta.histogram("new.hist", buckets=(1.0,)).observe(0.5)
        reg.merge_snapshot(delta.snapshot())
        assert reg.counter("new.counter").value == 4.0
        assert reg.gauge("new.gauge").value == 2.0
        assert reg.get("new.hist").count == 1

    def test_merge_rejects_mismatched_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        delta = MetricsRegistry()
        delta.histogram("h", buckets=(5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge_snapshot(delta.snapshot())

    def test_merge_carries_invalid_count(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,))
        delta = MetricsRegistry()
        delta.histogram("h", buckets=(1.0,)).observe(math.nan)
        reg.merge_snapshot(delta.snapshot())
        assert reg.get("h").invalid == 1
