"""Shared fixtures: small matrices, RNGs, and a tiny experiment dataset."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.datasets import build_collection
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_experiment_data
from repro.formats import COOMatrix

# The nightly CI sweep runs property tests much deeper than the per-PR
# default.  Two knobs, both set by the nightly-hypothesis job:
# - --hypothesis-profile=nightly raises the budget of tests that do not
#   pin max_examples themselves (explicit @settings beat the profile);
# - REPRO_HYPOTHESIS_SCALE multiplies the pinned per-test budgets, so
#   those tests keep their relative weights while going deeper.
settings.register_profile("nightly", max_examples=500, deadline=None)

HYPOTHESIS_SCALE = max(1, int(os.environ.get("REPRO_HYPOTHESIS_SCALE", "1")))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A 23x17 dense matrix with ~20% nonzeros, some empty rows/cols."""
    dense = (rng.random((23, 17)) < 0.2) * rng.standard_normal((23, 17))
    dense[5, :] = 0.0  # force an empty row
    dense[:, 3] = 0.0  # force an empty column
    return dense


@pytest.fixture
def small_coo(small_dense) -> COOMatrix:
    return COOMatrix.from_dense(small_dense)


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    # ~200 matrices (~140 runnable per arch): small enough for fast tests,
    # large enough that the paper's qualitative relations are stable.
    return ExperimentConfig(
        collection_size=200,
        augment_copies=0,
        trials=5,
        n_folds=3,
        nc_grid=(10, 25),
    )


@pytest.fixture(scope="session")
def tiny_data(tiny_config):
    """Session-scoped: the full simulated campaign on a 60-matrix collection."""
    return build_experiment_data(tiny_config)


@pytest.fixture(scope="session")
def tiny_collection():
    return build_collection(seed=7, size=25)
