"""Permutation feature importance."""

import numpy as np
import pytest

from repro.ml.inspection import permutation_importance
from repro.ml.metrics import matthews_corrcoef
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture
def fitted(rng):
    # y depends only on features 0 and 2; feature 1 is pure noise.
    X = rng.standard_normal((300, 3))
    y = ((X[:, 0] + X[:, 2]) > 0).astype(int)
    model = DecisionTreeClassifier(max_depth=6).fit(X, y)
    return model, X, y


def test_informative_features_rank_above_noise(fitted):
    model, X, y = fitted
    result = permutation_importance(model, X, y, n_repeats=10, seed=0)
    assert result.importances_mean[0] > result.importances_mean[1]
    assert result.importances_mean[2] > result.importances_mean[1]
    assert abs(result.importances_mean[1]) < 0.05


def test_ranking_order(fitted):
    model, X, y = fitted
    result = permutation_importance(model, X, y, n_repeats=5)
    ranking = result.ranking()
    assert set(ranking.tolist()) == {0, 1, 2}
    assert ranking[-1] == 1  # the noise feature ranks last


def test_custom_metric(fitted):
    model, X, y = fitted
    result = permutation_importance(
        model, X, y, metric=matthews_corrcoef, n_repeats=3
    )
    assert result.baseline_score > 0.8


def test_baseline_reported(fitted):
    model, X, y = fitted
    result = permutation_importance(model, X, y, n_repeats=2)
    assert result.baseline_score == pytest.approx(
        np.mean(model.predict(X) == y)
    )


def test_validation(fitted):
    model, X, y = fitted
    with pytest.raises(ValueError):
        permutation_importance(model, X, y, n_repeats=0)
    with pytest.raises(ValueError):
        permutation_importance(model, X[:10], y, n_repeats=1)


def test_on_format_selection_problem(tiny_data):
    """End-to-end: which Table-1 features does RF use for format choice?"""
    from repro.core.supervised import SupervisedFormatSelector

    ds = tiny_data.datasets["pascal"]
    clf = SupervisedFormatSelector("DT", seed=0).fit(ds.X, ds.labels)
    result = permutation_importance(clf, ds.X, ds.labels, n_repeats=3)
    # At least one feature genuinely matters.
    assert result.importances_mean.max() > 0.02
