"""Array validation and estimator-protocol helpers."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    NotFittedError,
    check_array,
    check_X_y,
    encode_labels,
)


class TestCheckArray:
    def test_accepts_and_casts(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_array(np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.ones((0, 2)))

    def test_rejects_nan_inf(self):
        with pytest.raises(ValueError):
            check_array(np.array([[np.nan]]))
        with pytest.raises(ValueError):
            check_array(np.array([[np.inf]]))


class TestCheckXY:
    def test_aligned(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_misaligned(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [0])
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [[0]])


class TestEncodeLabels:
    def test_strings(self):
        classes, enc = encode_labels(np.array(["ell", "csr", "ell"]))
        np.testing.assert_array_equal(classes, ["csr", "ell"])
        np.testing.assert_array_equal(enc, [1, 0, 1])

    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        classes, enc = encode_labels(y)
        np.testing.assert_array_equal(classes[enc], y)


class TestBaseEstimator:
    def test_fit_predict_and_require_fitted(self):
        class Dummy(BaseEstimator):
            def fit(self, X, y):
                self.y_ = np.asarray(y)
                return self

            def predict(self, X):
                self._require_fitted("y_")
                return self.y_[: len(X)]

        d = Dummy()
        with pytest.raises(NotFittedError):
            d.predict(np.zeros((1, 1)))
        out = d.fit_predict(np.zeros((2, 1)), [5, 6])
        np.testing.assert_array_equal(out, [5, 6])
