"""Classification metrics, including hypothesis-checked invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_macro,
    f1_weighted,
    matthews_corrcoef,
    precision_recall_f1_per_class,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        y = np.array(["a", "b", "a"])
        assert accuracy_score(y, y) == 1.0
        assert accuracy_score(y, np.array(["b", "a", "b"])) == 0.0

    def test_fraction(self):
        assert accuracy_score([0, 1, 2, 3], [0, 1, 0, 0]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusion:
    def test_matrix_entries(self):
        cm = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_explicit_labels_order(self):
        cm = confusion_matrix([0, 1], [1, 0], labels=[1, 0])
        np.testing.assert_array_equal(cm, [[0, 1], [1, 0]])

    def test_row_sums_are_true_counts(self):
        y_true = np.array([0, 0, 1, 2, 2, 2])
        y_pred = np.array([0, 1, 1, 0, 2, 2])
        cm = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(cm.sum(axis=1), [2, 1, 3])


class TestF1:
    def test_perfect(self):
        assert f1_macro([0, 1, 1], [0, 1, 1]) == 1.0

    def test_binary_known_value(self):
        # precision=2/3, recall=1.0 for class 1; class 0: p=1.0, r=0.5
        y_true = [1, 1, 0, 0]
        y_pred = [1, 1, 1, 0]
        p, r, f1 = precision_recall_f1_per_class(y_true, y_pred)
        assert p[1] == pytest.approx(2 / 3)
        assert r[1] == 1.0
        assert f1[1] == pytest.approx(0.8)

    def test_absent_true_class_excluded_from_macro(self):
        # Predictions contain class 'c' never present in y_true.
        score = f1_macro(["a", "a", "b"], ["a", "c", "b"])
        # Classes a (f1=2/3... p=1, r=.5 → 2/3) and b (f1=1); c excluded.
        assert score == pytest.approx((2 / 3 + 1.0) / 2)

    def test_weighted_at_least_reflects_support(self):
        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 10
        assert f1_weighted(y_true, y_pred) > f1_macro(y_true, y_pred)


class TestMCC:
    def test_perfect_is_one(self):
        assert matthews_corrcoef([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)

    def test_constant_prediction_is_zero(self):
        assert matthews_corrcoef([0, 1, 0, 1], [1, 1, 1, 1]) == 0.0

    def test_binary_inversion_is_minus_one(self):
        assert matthews_corrcoef([0, 1, 0, 1], [1, 0, 1, 0]) == pytest.approx(
            -1.0
        )

    def test_majority_class_guessing_scores_zero_but_acc_high(self):
        # The paper's argument for MCC on unbalanced data.
        y_true = ["csr"] * 95 + ["ell"] * 5
        y_pred = ["csr"] * 100
        assert accuracy_score(y_true, y_pred) == 0.95
        assert matthews_corrcoef(y_true, y_pred) == 0.0

    def test_known_binary_value(self):
        # TP=4, TN=3, FP=1, FN=2 -> MCC = (12-2)/sqrt(5*6*7*5)
        y_true = [1] * 6 + [0] * 4
        y_pred = [1, 1, 1, 1, 0, 0, 0, 0, 0, 1]
        expected = (4 * 3 - 1 * 2) / np.sqrt((4 + 1) * (4 + 2) * (3 + 1) * (3 + 2))
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(expected)


@given(
    st.lists(st.integers(0, 3), min_size=2, max_size=60),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=80, deadline=None)
def test_metric_bounds_and_symmetries(y_true_list, seed):
    y_true = np.array(y_true_list)
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 4, size=y_true.shape[0])
    acc = accuracy_score(y_true, y_pred)
    f1 = f1_macro(y_true, y_pred)
    mcc = matthews_corrcoef(y_true, y_pred)
    assert 0.0 <= acc <= 1.0
    assert 0.0 <= f1 <= 1.0
    assert -1.0 <= mcc <= 1.0 + 1e-12
    # Relabeling classes consistently leaves every metric unchanged.
    relabel = {0: 10, 1: 11, 2: 12, 3: 13}
    yt2 = np.array([relabel[v] for v in y_true])
    yp2 = np.array([relabel[v] for v in y_pred])
    assert accuracy_score(yt2, yp2) == pytest.approx(acc)
    assert f1_macro(yt2, yp2) == pytest.approx(f1)
    assert matthews_corrcoef(yt2, yp2) == pytest.approx(mcc)


@given(st.lists(st.integers(0, 3), min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_perfect_prediction_maximises_everything(y_list):
    y = np.array(y_list)
    assert accuracy_score(y, y) == 1.0
    assert f1_macro(y, y) == 1.0
    mcc = matthews_corrcoef(y, y)
    assert mcc == pytest.approx(1.0) or mcc == 0.0  # 0 iff single class
