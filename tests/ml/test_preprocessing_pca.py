"""Preprocessing stages and PCA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.base import NotFittedError
from repro.ml.pca import PCA
from repro.ml.preprocessing import (
    MinMaxScaler,
    SparseDistributionTransformer,
    StandardScaler,
    sparse_distribution_score,
)


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.standard_normal((40, 5)) * 100
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_array_equal(out[:, 0], 0.0)

    def test_clipping_out_of_range(self, rng):
        X = rng.random((20, 3))
        scaler = MinMaxScaler().fit(X)
        out = scaler.transform(X * 10 - 5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_no_clip_mode(self, rng):
        X = rng.random((20, 3))
        scaler = MinMaxScaler(clip=False).fit(X)
        out = scaler.transform(X + 10)
        assert out.max() > 1.0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self, rng):
        scaler = MinMaxScaler().fit(rng.random((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.random((5, 4)))


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.standard_normal((200, 4)) * 3 + 7
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_safe(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))


class TestSparseDistributionTransformer:
    def test_heavy_tail_detected(self, rng):
        heavy = np.exp(rng.standard_normal(500) * 4) + 1
        compact = rng.uniform(10, 12, 500)
        assert sparse_distribution_score(heavy) > 10
        assert sparse_distribution_score(compact) < 2

    def test_only_heavy_columns_transformed(self, rng):
        heavy = np.exp(rng.standard_normal(300) * 4)
        compact = rng.uniform(5, 6, 300)
        X = np.column_stack([heavy, compact])
        tr = SparseDistributionTransformer(kind="log").fit(X)
        assert tr.apply_[0] and not tr.apply_[1]
        out = tr.transform(X)
        np.testing.assert_allclose(out[:, 0], np.log1p(heavy))
        np.testing.assert_allclose(out[:, 1], compact)

    def test_sqrt_kind(self, rng):
        heavy = np.exp(rng.standard_normal(300) * 4)
        X = heavy[:, None]
        out = SparseDistributionTransformer(kind="sqrt").fit_transform(X)
        np.testing.assert_allclose(out[:, 0], np.sqrt(heavy))

    def test_negative_values_shifted(self, rng):
        # Difference features like max_mu can be negative.
        heavy = np.exp(rng.standard_normal(300) * 4) - 50.0
        out = SparseDistributionTransformer().fit_transform(heavy[:, None])
        assert np.all(np.isfinite(out))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SparseDistributionTransformer(kind="exp")

    def test_transform_below_fitted_min_is_clamped(self, rng):
        X = np.exp(rng.standard_normal(300) * 4)[:, None] + 5
        tr = SparseDistributionTransformer().fit(X)
        out = tr.transform(np.array([[0.1]]))
        assert np.all(np.isfinite(out))


class TestPCA:
    def test_orthonormal_components(self, rng):
        X = rng.standard_normal((100, 10))
        pca = PCA(4).fit(X)
        G = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(G, np.eye(4), atol=1e-10)

    def test_variance_ratios_sorted_and_bounded(self, rng):
        X = rng.standard_normal((100, 10)) * np.arange(1, 11)
        pca = PCA(5).fit(X)
        evr = pca.explained_variance_ratio_
        assert np.all(np.diff(evr) <= 1e-12)
        assert 0 < evr.sum() <= 1.0 + 1e-12

    def test_perfect_reconstruction_full_rank(self, rng):
        X = rng.standard_normal((30, 5))
        pca = PCA(5).fit(X)
        Z = pca.transform(X)
        np.testing.assert_allclose(pca.inverse_transform(Z), X, atol=1e-9)

    def test_low_rank_data_recovered_exactly(self, rng):
        basis = rng.standard_normal((2, 8))
        X = rng.standard_normal((50, 2)) @ basis
        pca = PCA(2).fit(X)
        Z = pca.transform(X)
        np.testing.assert_allclose(pca.inverse_transform(Z), X, atol=1e-9)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_components_capped_by_rank(self, rng):
        X = rng.standard_normal((5, 10))
        pca = PCA(8).fit(X)
        assert pca.n_components_ == 5
        assert pca.transform(X).shape == (5, 5)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.ones((3, 3)))


@given(
    arrays(
        np.float64,
        (12, 4),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_minmax_always_in_unit_box(X):
    out = MinMaxScaler().fit_transform(X)
    assert out.min() >= -1e-12
    assert out.max() <= 1.0 + 1e-12
