"""Regression trees / forests."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.regression import DecisionTreeRegressor, RandomForestRegressor


@pytest.fixture
def sine_data(rng):
    X = rng.uniform(0, 6, size=(400, 1))
    y = np.sin(X[:, 0]) + rng.normal(0, 0.05, 400)
    return X, y


class TestDecisionTreeRegressor:
    def test_fits_nonlinear_function(self, sine_data):
        X, y = sine_data
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        pred = tree.predict(X)
        mse = np.mean((pred - y) ** 2)
        assert mse < 0.02

    def test_depth_limits_capacity(self, sine_data):
        X, y = sine_data
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        mse_stump = np.mean((stump.predict(X) - y) ** 2)
        mse_deep = np.mean((deep.predict(X) - y) ** 2)
        assert mse_deep < mse_stump

    def test_constant_target_single_leaf(self, rng):
        X = rng.standard_normal((30, 2))
        y = np.full(30, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.root_.is_leaf
        np.testing.assert_allclose(tree.predict(X), 3.5)

    def test_prediction_is_leaf_mean(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([1.0, 2.0, 9.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = tree.predict(np.array([[0.5], [10.5]]))
        np.testing.assert_allclose(pred, [1.5, 9.5])

    def test_min_samples_leaf(self, sine_data):
        X, y = sine_data
        tree = DecisionTreeRegressor(min_samples_leaf=100).fit(X, y)

        def leaf_counts(node, X_local, y_local):
            if node.is_leaf:
                return [y_local.shape[0]]
            mask = X_local[:, node.feature] <= node.threshold
            return leaf_counts(node.left, X_local[mask], y_local[mask]) + \
                leaf_counts(node.right, X_local[~mask], y_local[~mask])

        assert min(leaf_counts(tree.root_, X, y)) >= 100

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))


class TestRandomForestRegressor:
    def test_beats_single_tree_on_noise(self, rng):
        X = rng.uniform(0, 6, size=(300, 1))
        y_true = np.sin(X[:, 0])
        y = y_true + rng.normal(0, 0.4, 300)
        X_test = np.linspace(0.2, 5.8, 100)[:, None]
        tree = DecisionTreeRegressor(max_depth=None).fit(X, y)
        forest = RandomForestRegressor(n_estimators=40, max_depth=None,
                                       seed=0).fit(X, y)
        err_tree = np.mean((tree.predict(X_test) - np.sin(X_test[:, 0])) ** 2)
        err_forest = np.mean(
            (forest.predict(X_test) - np.sin(X_test[:, 0])) ** 2
        )
        assert err_forest < err_tree

    def test_seed_reproducible(self, sine_data):
        X, y = sine_data
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 1)))
