"""Clustering algorithms: K-Means, Mean-Shift, Birch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.base import NotFittedError
from repro.ml.cluster import Birch, KMeans, MeanShift, estimate_bandwidth
from repro.ml.cluster.kmeans import kmeans_plusplus


def _blobs(rng, k=4, n_per=50, spread=0.3):
    centers = rng.standard_normal((k, 3)) * 5
    X = np.vstack([rng.normal(c, spread, size=(n_per, 3)) for c in centers])
    return X[rng.permutation(len(X))], centers


class TestKMeans:
    def test_recovers_blobs(self, rng):
        X, centers = _blobs(rng)
        km = KMeans(4, seed=0).fit(X)
        assert len(np.unique(km.labels_)) == 4
        # Each found centroid is near some true center.
        d = np.linalg.norm(
            km.cluster_centers_[:, None, :] - centers[None, :, :], axis=2
        )
        assert d.min(axis=1).max() < 0.5

    def test_inertia_decreases_with_k(self, rng):
        X, _ = _blobs(rng)
        inertias = [
            KMeans(k, seed=0, n_init=2).fit(X).inertia_ for k in (2, 4, 8)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_exact_cluster_count_even_with_duplicates(self):
        # More clusters than distinct points forces empty-cluster reseeding.
        X = np.repeat(np.array([[0.0, 0.0], [10.0, 10.0]]), 10, axis=0)
        km = KMeans(4, seed=0).fit(X)
        assert km.cluster_centers_.shape == (4, 2)
        assert km.labels_.max() < 4

    def test_predict_nearest_centroid(self, rng):
        X, _ = _blobs(rng)
        km = KMeans(4, seed=0).fit(X)
        pred = km.predict(km.cluster_centers_)
        np.testing.assert_array_equal(pred, np.arange(4))

    def test_labels_consistent_with_predict(self, rng):
        X, _ = _blobs(rng)
        km = KMeans(4, seed=0).fit(X)
        np.testing.assert_array_equal(km.labels_, km.predict(X))

    def test_seed_reproducible(self, rng):
        X, _ = _blobs(rng)
        a = KMeans(4, seed=7).fit(X)
        b = KMeans(4, seed=7).fit(X)
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)

    def test_validation(self, rng):
        X, _ = _blobs(rng)
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(10_000).fit(X)
        with pytest.raises(NotFittedError):
            KMeans(2).predict(X)

    def test_plusplus_picks_distinct_points(self, rng):
        # Four well-separated deterministic blobs: D^2-weighted seeding
        # must land one centre in each.
        grid = np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0]])
        X = np.vstack([rng.normal(c, 0.2, size=(30, 2)) for c in grid])
        centers = kmeans_plusplus(X, 4, rng)
        d = np.linalg.norm(
            centers[:, None, :] - grid[None, :, :], axis=2
        )
        # Each blob corner has exactly one seed nearby.
        assert sorted(np.argmin(d, axis=1).tolist()) == [0, 1, 2, 3]


class TestMeanShift:
    def test_finds_blob_modes(self, rng):
        X, centers = _blobs(rng, k=3, spread=0.2)
        ms = MeanShift(bandwidth=1.5).fit(X)
        assert ms.n_clusters_ == 3
        d = np.linalg.norm(
            ms.cluster_centers_[:, None, :] - centers[None, :, :], axis=2
        )
        assert d.min(axis=1).max() < 0.5

    def test_bandwidth_estimation_positive(self, rng):
        X, _ = _blobs(rng)
        bw = estimate_bandwidth(X, quantile=0.3)
        assert bw > 0

    def test_auto_bandwidth_runs(self, rng):
        X, _ = _blobs(rng, k=3)
        ms = MeanShift(seed=0).fit(X)
        assert 1 <= ms.n_clusters_ <= len(X)

    def test_degenerate_identical_points(self):
        X = np.zeros((10, 2))
        ms = MeanShift().fit(X)
        assert ms.n_clusters_ == 1
        np.testing.assert_array_equal(ms.labels_, 0)

    def test_huge_bandwidth_single_cluster(self, rng):
        X, _ = _blobs(rng)
        ms = MeanShift(bandwidth=1000.0).fit(X)
        assert ms.n_clusters_ == 1

    def test_predict_matches_labels(self, rng):
        X, _ = _blobs(rng, k=3)
        ms = MeanShift(bandwidth=1.5).fit(X)
        np.testing.assert_array_equal(ms.labels_, ms.predict(X))


class TestBirch:
    def test_recovers_blobs(self, rng):
        X, centers = _blobs(rng)
        bi = Birch(n_clusters=4, threshold=0.5).fit(X)
        assert bi.n_clusters_ == 4
        assert len(np.unique(bi.labels_)) == 4

    def test_subclusters_refine_with_threshold(self, rng):
        X, _ = _blobs(rng)
        coarse = Birch(n_clusters=None, threshold=2.0).fit(X)
        fine = Birch(n_clusters=None, threshold=0.1).fit(X)
        assert len(fine.subcluster_counts_) > len(coarse.subcluster_counts_)

    def test_subcluster_counts_sum_to_n(self, rng):
        X, _ = _blobs(rng)
        bi = Birch(n_clusters=4, threshold=0.3).fit(X)
        assert bi.subcluster_counts_.sum() == len(X)

    def test_none_n_clusters_uses_leaf_subclusters(self, rng):
        X, _ = _blobs(rng)
        bi = Birch(n_clusters=None, threshold=0.5).fit(X)
        assert bi.n_clusters_ == len(bi.subcluster_counts_)

    def test_branching_factor_forces_splits(self, rng):
        X, _ = _blobs(rng, k=8, n_per=40)
        bi = Birch(n_clusters=8, threshold=0.05, branching_factor=4).fit(X)
        # With tiny threshold and branching factor, the tree must split
        # but still cluster correctly at the global step.
        assert bi.n_clusters_ == 8
        assert bi.subcluster_counts_.sum() == len(X)

    def test_predict_consistency(self, rng):
        X, _ = _blobs(rng)
        bi = Birch(n_clusters=4, threshold=0.3).fit(X)
        np.testing.assert_array_equal(bi.labels_, bi.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            Birch(threshold=0.0)
        with pytest.raises(ValueError):
            Birch(branching_factor=1)


@given(
    st.integers(2, 6),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_kmeans_partitions_all_points(k, seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((40, 2))
    km = KMeans(k, seed=seed, n_init=1).fit(X)
    assert km.labels_.shape == (40,)
    assert km.labels_.min() >= 0 and km.labels_.max() < k
    # Inertia equals the sum of squared distances to assigned centroids.
    d = X - km.cluster_centers_[km.labels_]
    assert km.inertia_ == pytest.approx(np.sum(d * d), rel=1e-6)
