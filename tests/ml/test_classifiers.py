"""Classifier behaviours shared and specific: DT, RF, KNN, LR, SVM, XGB."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier, pairwise_sq_dists
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import SVC, rbf_kernel
from repro.ml.tree import DecisionTreeClassifier

ALL_CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=8),
    lambda: RandomForestClassifier(n_estimators=15, seed=1),
    lambda: KNeighborsClassifier(3),
    lambda: LogisticRegression(),
    lambda: SVC(kernel="rbf", C=5.0),
    lambda: GradientBoostingClassifier(n_rounds=25, max_depth=3),
]


def _blobs(rng, n_per=40, k=3, spread=0.5):
    centers = rng.standard_normal((k, 4)) * 4
    X = np.vstack(
        [rng.normal(c, spread, size=(n_per, 4)) for c in centers]
    )
    y = np.repeat(np.arange(k), n_per)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
def test_learns_separable_blobs(factory, rng):
    X, y = _blobs(rng)
    clf = factory()
    clf.fit(X[:90], y[:90])
    acc = np.mean(clf.predict(X[90:]) == y[90:])
    assert acc >= 0.9


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
def test_string_labels_supported(factory, rng):
    X, y = _blobs(rng)
    names = np.array(["csr", "ell", "hyb"], dtype=object)[y]
    clf = factory()
    clf.fit(X, names)
    pred = clf.predict(X[:10])
    assert set(pred) <= {"csr", "ell", "hyb"}


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
def test_predict_before_fit_raises(factory):
    with pytest.raises(NotFittedError):
        factory().predict(np.zeros((2, 4)))


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
def test_single_class_training(factory, rng):
    X = rng.standard_normal((20, 3))
    y = np.zeros(20, dtype=int)
    clf = factory()
    clf.fit(X, y)
    assert np.all(clf.predict(X) == 0)


class TestDecisionTree:
    def test_max_depth_respected(self, rng):
        X, y = _blobs(rng, n_per=60)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_pure_leaf_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0 and tree.n_leaves() == 1

    def test_min_samples_leaf(self, rng):
        X, y = _blobs(rng, n_per=30)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        # No leaf may hold fewer than 10 training samples.
        def leaves(node):
            if node.is_leaf:
                return [node.counts.sum()]
            return leaves(node.left) + leaves(node.right)

        assert min(leaves(tree.root_)) >= 10

    def test_xor_needs_depth_two(self, rng):
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        acc_shallow = np.mean(shallow.predict(X) == y)
        acc_deep = np.mean(deep.predict(X) == y)
        assert acc_deep > 0.95 > acc_shallow

    def test_predict_proba_sums_to_one(self, rng):
        X, y = _blobs(rng)
        proba = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestRandomForest:
    def test_more_trees_not_worse_on_noise(self, rng):
        X, y = _blobs(rng, spread=1.5)
        small = RandomForestClassifier(n_estimators=2, seed=0).fit(X[:90], y[:90])
        big = RandomForestClassifier(n_estimators=40, seed=0).fit(X[:90], y[:90])
        acc_small = np.mean(small.predict(X[90:]) == y[90:])
        acc_big = np.mean(big.predict(X[90:]) == y[90:])
        assert acc_big >= acc_small - 0.05

    def test_seed_reproducible(self, rng):
        X, y = _blobs(rng)
        p1 = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        p2 = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_class_alignment_with_missing_bootstrap_class(self, rng):
        # A very rare class may be absent from some bootstrap samples;
        # predict_proba must still align columns correctly.
        X = np.vstack([rng.normal(0, 0.1, (50, 2)), rng.normal(5, 0.1, (2, 2))])
        y = np.array([0] * 50 + [1] * 2)
        rf = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        pred = rf.predict(np.array([[5.0, 5.0]]))
        assert pred[0] == 1


class TestKNN:
    def test_pairwise_distances(self, rng):
        A = rng.standard_normal((7, 3))
        B = rng.standard_normal((5, 3))
        d2 = pairwise_sq_dists(A, B)
        brute = ((A[:, None, :] - B[None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(d2, brute, atol=1e-9)

    def test_k1_memorises(self, rng):
        X, y = _blobs(rng)
        knn = KNeighborsClassifier(1).fit(X, y)
        np.testing.assert_array_equal(knn.predict(X), y)

    def test_distance_weighting_exact_duplicate_dominates(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 0, 1])
        knn = KNeighborsClassifier(4, weights="distance").fit(X, y)
        assert knn.predict(np.array([[10.0]]))[0] == 1

    def test_k_larger_than_train_set(self, rng):
        X, y = _blobs(rng, n_per=3)
        knn = KNeighborsClassifier(50).fit(X, y)
        assert knn.predict(X).shape == y.shape


class TestLogisticRegression:
    def test_linear_boundary_learned(self, rng):
        X = rng.standard_normal((300, 2))
        y = (X @ np.array([2.0, -1.0]) > 0.3).astype(int)
        lr = LogisticRegression(C=10.0).fit(X, y)
        assert np.mean(lr.predict(X) == y) > 0.95

    def test_proba_normalised(self, rng):
        X, y = _blobs(rng)
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_stronger_regularisation_shrinks_weights(self, rng):
        X, y = _blobs(rng)
        w_weak = LogisticRegression(C=100.0).fit(X, y).coef_
        w_strong = LogisticRegression(C=0.001).fit(X, y).coef_
        assert np.linalg.norm(w_strong) < np.linalg.norm(w_weak)


class TestSVM:
    def test_rbf_kernel_values(self, rng):
        A = rng.standard_normal((4, 2))
        K = rbf_kernel(A, A, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)
        assert np.all(K <= 1.0) and np.all(K > 0.0)

    def test_rbf_separates_circles(self, rng):
        theta = rng.uniform(0, 2 * np.pi, 200)
        r = np.concatenate([np.full(100, 1.0), np.full(100, 3.0)])
        r += rng.normal(0, 0.1, 200)
        X = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        y = np.array([0] * 100 + [1] * 100)
        svc = SVC(kernel="rbf", C=10.0).fit(X, y)
        assert np.mean(svc.predict(X) == y) > 0.95

    def test_linear_kernel_on_linear_data(self, rng):
        X = rng.standard_normal((200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        svc = SVC(kernel="linear", C=1.0).fit(X, y)
        assert np.mean(svc.predict(X) == y) > 0.9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SVC(kernel="poly")
        with pytest.raises(ValueError):
            SVC(C=0)


class TestGradientBoosting:
    def test_more_rounds_improve_fit(self, rng):
        X, y = _blobs(rng, spread=1.2)
        weak = GradientBoostingClassifier(n_rounds=1, max_depth=2).fit(X, y)
        strong = GradientBoostingClassifier(n_rounds=40, max_depth=2).fit(X, y)
        acc_weak = np.mean(weak.predict(X) == y)
        acc_strong = np.mean(strong.predict(X) == y)
        assert acc_strong >= acc_weak

    def test_xor_learned(self, rng):
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        gb = GradientBoostingClassifier(n_rounds=30, max_depth=3).fit(X, y)
        assert np.mean(gb.predict(X) == y) > 0.95

    def test_subsample_mode(self, rng):
        X, y = _blobs(rng)
        gb = GradientBoostingClassifier(
            n_rounds=10, max_depth=2, subsample=0.7, seed=2
        ).fit(X, y)
        assert np.mean(gb.predict(X) == y) > 0.9

    def test_proba_normalised(self, rng):
        X, y = _blobs(rng)
        proba = GradientBoostingClassifier(n_rounds=5).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_rounds=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)
