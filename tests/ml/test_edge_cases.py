"""Classifier edge cases and secondary options not covered elsewhere."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.neural import CNNClassifier, density_image
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier


class TestTreeOptions:
    def test_max_features_sqrt(self, rng):
        X = rng.standard_normal((60, 9))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_features="sqrt", seed=0).fit(X, y)
        assert tree._k == 3

    def test_max_features_log2_and_int(self, rng):
        X = rng.standard_normal((30, 8))
        y = (X[:, 0] > 0).astype(int)
        assert DecisionTreeClassifier(max_features="log2").fit(X, y)._k == 3
        assert DecisionTreeClassifier(max_features=5).fit(X, y)._k == 5
        assert DecisionTreeClassifier(max_features=99).fit(X, y)._k == 8

    def test_constant_features_yield_stump(self, rng):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves() == 1

    def test_feature_count_mismatch_at_predict(self, rng):
        X = rng.standard_normal((20, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(rng.standard_normal((5, 4)))


class TestForestOptions:
    def test_no_bootstrap(self, rng):
        X = rng.standard_normal((40, 3))
        y = (X[:, 0] > 0).astype(int)
        rf = RandomForestClassifier(
            n_estimators=3, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        # Without bootstrap or feature subsetting all trees are identical.
        p = [t.predict(X) for t in rf.trees_]
        np.testing.assert_array_equal(p[0], p[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestLogisticEdge:
    def test_single_class_predicts_it(self, rng):
        X = rng.standard_normal((10, 2))
        lr = LogisticRegression().fit(X, np.array(["csr"] * 10))
        assert set(lr.predict(X)) == {"csr"}
        np.testing.assert_allclose(lr.predict_proba(X), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0)


class TestSVCEdge:
    def test_decision_function_shape(self, rng):
        X = rng.standard_normal((30, 2))
        y = rng.integers(0, 3, 30)
        svc = SVC(kernel="linear").fit(X, y)
        assert svc.decision_function(X).shape == (30, len(svc.classes_))

    def test_explicit_gamma(self, rng):
        X = rng.standard_normal((30, 2))
        y = (X[:, 0] > 0).astype(int)
        svc = SVC(kernel="rbf", gamma=0.7).fit(X, y)
        assert svc.gamma_ == 0.7

    def test_constant_features_scale_gamma(self):
        X = np.ones((10, 2))
        y = np.array([0, 1] * 5)
        svc = SVC(kernel="rbf", gamma="scale").fit(X, y)
        assert svc.gamma_ == 1.0  # zero-variance fallback


class TestBoostingEdge:
    def test_single_class(self, rng):
        X = rng.standard_normal((12, 2))
        gb = GradientBoostingClassifier(n_rounds=3).fit(
            X, np.array(["ell"] * 12)
        )
        assert set(gb.predict(X)) == {"ell"}

    def test_min_child_weight_blocks_tiny_splits(self, rng):
        X = rng.standard_normal((30, 2))
        y = (X[:, 0] > 0).astype(int)
        gb = GradientBoostingClassifier(
            n_rounds=2, max_depth=3, min_child_weight=1e9
        ).fit(X, y)
        # No split can satisfy the Hessian bound: all trees are stumps.
        for round_trees in gb.trees_:
            for tree in round_trees:
                assert tree.root_.is_leaf


class TestCNNOptions:
    def test_class_weighting_path(self, rng):
        imgs = []
        labels = []
        for i in range(30):
            from repro.datasets.generators import banded

            m = banded(rng, n=100, bandwidth=2)
            imgs.append(density_image(m))
            labels.append("a" if i < 25 else "b")
        X = np.stack(imgs)
        cnn = CNNClassifier(epochs=1, class_weighting=True, seed=0)
        cnn.fit(X, np.array(labels, dtype=object))
        assert cnn.predict(X).shape == (30,)

    def test_too_small_resolution_rejected(self):
        with pytest.raises(ValueError):
            CNNClassifier(resolution=4).fit(np.zeros((4, 4, 4)), np.zeros(4))
