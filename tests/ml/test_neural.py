"""Density images and the from-scratch CNN."""

import numpy as np
import pytest

from repro.datasets.generators import banded, random_uniform
from repro.formats import COOMatrix
from repro.ml.base import NotFittedError
from repro.ml.neural import CNNClassifier, density_image, _im2col


class TestDensityImage:
    def test_shape_and_range(self, small_coo):
        img = density_image(small_coo, resolution=16)
        assert img.shape == (16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_diagonal_matrix_maps_to_diagonal(self):
        n = 64
        coo = COOMatrix((n, n), np.arange(n), np.arange(n), np.ones(n))
        img = density_image(coo, resolution=8)
        np.testing.assert_array_equal(np.flatnonzero(img.sum(axis=1) > 0),
                                      np.arange(8))
        off_diag = img - np.diag(np.diag(img))
        assert off_diag.sum() == 0.0

    def test_empty_matrix(self):
        img = density_image(COOMatrix.empty((10, 10)))
        assert img.max() == 0.0

    def test_resolution_validation(self, small_coo):
        with pytest.raises(ValueError):
            density_image(small_coo, resolution=0)

    def test_invariant_to_value_scale(self, small_coo):
        m2 = COOMatrix(
            small_coo.shape, small_coo.rows, small_coo.cols,
            small_coo.vals * 100,
        )
        np.testing.assert_allclose(
            density_image(small_coo), density_image(m2)
        )


class TestIm2col:
    def test_patch_contents(self):
        X = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        cols = _im2col(X, 3)
        assert cols.shape == (1, 2, 2, 9)
        np.testing.assert_array_equal(
            cols[0, 0, 0], [0, 1, 2, 4, 5, 6, 8, 9, 10]
        )

    def test_matches_naive_convolution(self, rng):
        X = rng.standard_normal((2, 6, 6, 3))
        W = rng.standard_normal((3 * 3 * 3, 4))
        out = _im2col(X, 3) @ W
        # Naive reference.
        ref = np.zeros((2, 4, 4, 4))
        for n in range(2):
            for i in range(4):
                for j in range(4):
                    patch = X[n, i : i + 3, j : j + 3, :].reshape(-1)
                    ref[n, i, j] = patch @ W
        np.testing.assert_allclose(out, ref, atol=1e-10)


class TestCNN:
    def _image_dataset(self, rng, n=50):
        imgs, labels = [], []
        for _ in range(n):
            m = banded(rng, n=int(rng.integers(80, 300)),
                       bandwidth=int(rng.integers(1, 6)))
            imgs.append(density_image(m))
            labels.append("banded")
            m = random_uniform(rng, nrows=int(rng.integers(80, 300)),
                               density=0.03)
            imgs.append(density_image(m))
            labels.append("random")
        return np.stack(imgs), np.array(labels, dtype=object)

    def test_learns_structure_classes(self, rng):
        X, y = self._image_dataset(rng, n=40)
        cnn = CNNClassifier(epochs=4, seed=0)
        cnn.fit(X[:60], y[:60])
        acc = np.mean(cnn.predict(X[60:]) == y[60:])
        assert acc > 0.85

    def test_proba_normalised(self, rng):
        X, y = self._image_dataset(rng, n=15)
        cnn = CNNClassifier(epochs=2, seed=0).fit(X, y)
        proba = cnn.predict_proba(X[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            CNNClassifier().predict_proba(np.zeros((1, 32, 32)))

    def test_input_shape_validation(self, rng):
        cnn = CNNClassifier(resolution=32)
        with pytest.raises(ValueError):
            cnn.fit(np.zeros((4, 16, 16)), np.zeros(4))

    def test_seed_reproducible(self, rng):
        X, y = self._image_dataset(rng, n=10)
        p1 = CNNClassifier(epochs=2, seed=5).fit(X, y).predict(X)
        p2 = CNNClassifier(epochs=2, seed=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)
