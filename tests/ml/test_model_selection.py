"""K-fold splitters and holdout splits."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, StratifiedKFold, train_test_split


class TestKFold:
    def test_partition(self):
        kf = KFold(4, seed=1)
        seen = []
        for train, test in kf.split(20):
            assert set(train) | set(test) == set(range(20))
            assert not set(train) & set(test)
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_fold_count(self):
        assert sum(1 for _ in KFold(5).split(25)) == 5

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_no_shuffle_contiguous(self):
        folds = [test for _, test in KFold(2, shuffle=False).split(6)]
        np.testing.assert_array_equal(folds[0], [0, 1, 2])

    def test_seed_reproducible(self):
        a = [t.tolist() for _, t in KFold(3, seed=9).split(12)]
        b = [t.tolist() for _, t in KFold(3, seed=9).split(12)]
        assert a == b


class TestStratifiedKFold:
    def test_partition_and_stratification(self):
        y = np.array([0] * 40 + [1] * 10)
        for train, test in StratifiedKFold(5, seed=0).split(y):
            assert not set(train) & set(test)
            # Each fold gets 8 of class 0 and 2 of class 1.
            assert (y[test] == 0).sum() == 8
            assert (y[test] == 1).sum() == 2

    def test_rare_class_spread(self):
        y = np.array([0] * 18 + [1, 1])  # class 1 rarer than n_splits
        covered = 0
        for train, test in StratifiedKFold(5, seed=0).split(y):
            covered += (y[test] == 1).sum()
        assert covered == 2  # both rare members appear in some test fold

    def test_string_labels(self):
        y = np.array(["csr"] * 9 + ["ell"] * 6)
        folds = list(StratifiedKFold(3, seed=1).split(y))
        assert len(folds) == 3
        for _, test in folds:
            assert (y[test] == "csr").sum() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)
        with pytest.raises(ValueError):
            list(StratifiedKFold(5).split(np.array([0, 1])))


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(100, 0.3, seed=0)
        assert len(test) == 30 and len(train) == 70
        assert not set(train) & set(test)

    def test_zero_fraction(self):
        train, test = train_test_split(10, 0.0)
        assert len(test) == 0 and len(train) == 10

    def test_stratified(self):
        y = np.array(["a"] * 80 + ["b"] * 20)
        train, test = train_test_split(100, 0.25, y=y, seed=0)
        assert (y[test] == "a").sum() == 20
        assert (y[test] == "b").sum() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)
        with pytest.raises(ValueError):
            train_test_split(10, 0.5, y=np.zeros(5))
