"""Every example script must run end-to-end and produce its key output."""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "predicted format:" in out
    assert "simulated ground truth:" in out


def test_transfer_across_gpus(capsys):
    out = _run("transfer_across_gpus.py", capsys)
    assert "zero-shot (Pascal labels)" in out
    assert "ported with 1 benchmark(s) per cluster" in out
    assert "Random Forest, 0% retraining" in out


def test_explain_clusters(capsys):
    out = _run("explain_clusters.py", capsys)
    assert "overall purity" in out
    assert "most distinguishing features" in out
    assert "permutation importance" in out


def test_online_selection(capsys):
    out = _run("online_selection.py", capsys)
    assert "rolling ACC" in out
    assert "final clusters:" in out


def test_overhead_aware_selection(capsys):
    out = _run("overhead_aware_selection.py", capsys)
    assert "qualitative best format" in out
    assert "<- converts" in out
