"""Statistical matrix features (Table 1 of the paper) and the shared
structural-statistics layer that also feeds the GPU performance model."""

from repro.features.extract import (
    CHEAP_FEATURE_INDICES,
    CHEAP_FEATURE_NAMES,
    FEATURE_NAMES,
    cheap_features_from_lengths,
    extract_features,
    extract_features_collection,
    extract_features_streaming,
    features_from_stats,
    features_from_stats_batch,
    stats_for_record,
    stats_from_stream,
)
from repro.features.stats import MatrixStats, StreamingStats
from repro.features.table import FeatureTable

__all__ = [
    "CHEAP_FEATURE_INDICES",
    "CHEAP_FEATURE_NAMES",
    "FEATURE_NAMES",
    "FeatureTable",
    "MatrixStats",
    "StreamingStats",
    "cheap_features_from_lengths",
    "extract_features",
    "extract_features_collection",
    "extract_features_streaming",
    "features_from_stats",
    "features_from_stats_batch",
    "stats_for_record",
    "stats_from_stream",
]
