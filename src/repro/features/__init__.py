"""Statistical matrix features (Table 1 of the paper) and the shared
structural-statistics layer that also feeds the GPU performance model."""

from repro.features.extract import (
    FEATURE_NAMES,
    extract_features,
    extract_features_collection,
    features_from_stats,
    features_from_stats_batch,
    stats_for_record,
)
from repro.features.stats import MatrixStats
from repro.features.table import FeatureTable

__all__ = [
    "FEATURE_NAMES",
    "FeatureTable",
    "MatrixStats",
    "extract_features",
    "extract_features_collection",
    "features_from_stats",
    "features_from_stats_batch",
    "stats_for_record",
]
