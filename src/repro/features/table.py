"""Tabular container for per-matrix feature vectors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class FeatureTable:
    """Feature matrix with named rows (matrices) and columns (features)."""

    names: list[str]
    feature_names: list[str]
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("values must be 2-D (samples × features)")
        if self.values.shape != (len(self.names), len(self.feature_names)):
            raise ValueError(
                f"values shape {self.values.shape} does not match "
                f"{len(self.names)} names × {len(self.feature_names)} features"
            )

    def __len__(self) -> int:
        return len(self.names)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def column(self, feature: str) -> np.ndarray:
        """Values of one named feature across all matrices."""
        try:
            j = self.feature_names.index(feature)
        except ValueError as exc:
            raise KeyError(
                f"unknown feature {feature!r}; have {self.feature_names}"
            ) from exc
        return self.values[:, j]

    def select(self, features: Sequence[str]) -> "FeatureTable":
        """Project onto a feature subset (order preserved as given)."""
        idx = [self.feature_names.index(f) for f in features]
        return FeatureTable(
            names=list(self.names),
            feature_names=list(features),
            values=self.values[:, idx].copy(),
        )

    def subset(self, indices: Sequence[int]) -> "FeatureTable":
        """Select a row subset by positional indices."""
        indices = list(indices)
        return FeatureTable(
            names=[self.names[i] for i in indices],
            feature_names=list(self.feature_names),
            values=self.values[indices, :].copy(),
        )

    def row(self, name: str) -> np.ndarray:
        try:
            i = self.names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown matrix {name!r}") from exc
        return self.values[i, :]
