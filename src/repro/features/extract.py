"""The 21 statistical features of Table 1.

All features are computable in O(nnz) and are architecture-invariant, which
is what makes the paper's clustering portable: *"these features are
completely invariant across architectures, so they have to be computed only
once"* (§4).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import MatrixRecord
from repro.features.stats import MatrixStats, compute_stats
from repro.features.table import FeatureTable
from repro.formats.coo import COOMatrix
from repro.obs import TELEMETRY
from repro.runtime.parallel import parallel_map

#: Feature order follows Table 1 of the paper.
FEATURE_NAMES: tuple[str, ...] = (
    "nrows",
    "ncols",
    "nnz",
    "nnz_frac",
    "nnz_mu",
    "nnz_min",
    "nnz_max",
    "nnz_sig",
    "max_mu",
    "mu_min",
    "csr_max",
    "sig_lower",
    "sig_higher",
    "hyb_ell_size",
    "hyb_coo",
    "hyb_ell_frac",
    "diagonals",
    "dia_size",
    "dia_frac",
    "ell_frac",
    "ell_size",
)


def _rms(deviations: np.ndarray) -> float:
    """Root mean square; 0 for an empty selection."""
    if deviations.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(deviations * deviations)))


def features_from_stats(stats: MatrixStats) -> np.ndarray:
    """Feature vector (length 21, Table-1 order) from structural stats."""
    lengths = stats.row_lengths.astype(np.float64)
    mu = stats.mean_row
    below = lengths[lengths < mu]
    above = lengths[lengths > mu]
    dia_size = stats.dia_size
    ell_size = stats.ell_padded
    return np.array(
        [
            stats.nrows,
            stats.ncols,
            stats.nnz,
            stats.nnz / (stats.nrows * stats.ncols),
            mu,
            stats.min_row,
            stats.max_row,
            stats.std_row,
            stats.max_row - mu,
            mu - stats.min_row,
            stats.csr_max,
            _rms(mu - below),
            _rms(above - mu),
            stats.hyb_ell_slots,
            stats.hyb_coo_entries,
            stats.hyb_ell_entries,
            stats.n_diagonals,
            dia_size,
            stats.nnz / dia_size if dia_size else 0.0,
            stats.nnz / ell_size if ell_size else 0.0,
            ell_size,
        ],
        dtype=np.float64,
    )


def stats_for_record(record: MatrixRecord) -> MatrixStats:
    """Picklable work unit: the structural pass for one record.

    This is what ``parallel_map`` ships to worker processes during the
    campaign's stats fan-out; ``compute_stats`` is pure, so results are
    identical for any worker count.
    """
    return compute_stats(record.matrix)


def features_from_stats_batch(stats: list[MatrixStats]) -> np.ndarray:
    """Feature matrix (n × 21, Table-1 order) for a whole stats batch.

    Derivation is vectorised across the batch: the scalar columns are
    assembled as arrays and combined with numpy ops instead of building
    one 21-vector per matrix and ``np.vstack``-ing.  Only ``sig_lower`` /
    ``sig_higher`` keep a per-matrix pass (they reduce each matrix's
    row-length distribution).  Values are bit-identical to stacking
    :func:`features_from_stats` row by row.
    """
    n = len(stats)
    if n == 0:
        return np.empty((0, len(FEATURE_NAMES)), dtype=np.float64)
    as_f64 = lambda attr: np.array(  # noqa: E731 - local column helper
        [getattr(s, attr) for s in stats], dtype=np.float64
    )
    nrows = as_f64("nrows")
    ncols = as_f64("ncols")
    nnz = as_f64("nnz")
    min_row = as_f64("min_row")
    max_row = as_f64("max_row")
    # mean/std go through the same cached scalar the per-matrix path uses.
    mu = as_f64("mean_row")
    sigma = as_f64("std_row")
    dia_size = as_f64("dia_size")
    ell_size = as_f64("ell_padded")

    sig_lower = np.empty(n, dtype=np.float64)
    sig_higher = np.empty(n, dtype=np.float64)
    for i, s in enumerate(stats):
        lengths = s.row_lengths.astype(np.float64)
        m = s.mean_row
        sig_lower[i] = _rms(m - lengths[lengths < m])
        sig_higher[i] = _rms(lengths[lengths > m] - m)

    def _guarded_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
        out = np.zeros(n, dtype=np.float64)
        nz = den != 0
        out[nz] = num[nz] / den[nz]
        return out

    columns = [
        nrows,
        ncols,
        nnz,
        nnz / (nrows * ncols),
        mu,
        min_row,
        max_row,
        sigma,
        max_row - mu,
        mu - min_row,
        as_f64("csr_max"),
        sig_lower,
        sig_higher,
        as_f64("hyb_ell_slots"),
        as_f64("hyb_coo_entries"),
        as_f64("hyb_ell_entries"),
        as_f64("n_diagonals"),
        dia_size,
        _guarded_ratio(nnz, dia_size),
        _guarded_ratio(nnz, ell_size),
        ell_size,
    ]
    return np.column_stack(columns)


def extract_features(matrix: COOMatrix) -> np.ndarray:
    """Feature vector for a single matrix."""
    with TELEMETRY.span("features.extract"):
        with TELEMETRY.span("features.stats"):
            stats = compute_stats(matrix)
        with TELEMETRY.span("features.derive"):
            vec = features_from_stats(stats)
    TELEMETRY.inc("features.matrices")
    return vec


def extract_features_collection(
    records: list[MatrixRecord],
    stats: list[MatrixStats] | None = None,
    jobs: int = 1,
) -> FeatureTable:
    """Feature table for a whole collection.

    ``stats`` may be shared with the GPU simulator to avoid recomputing
    the structural pass; with ``jobs > 1`` that pass fans out over a
    process pool (results are identical — ``compute_stats`` is pure).

    With telemetry enabled the two feature groups — the O(nnz)
    structural pass (``features.stats``) and the O(1) Table-1 derivation
    (``features.derive``) — are timed separately, and throughput lands
    in the ``features.matrices_per_sec`` gauge.
    """
    with TELEMETRY.span(
        "features.extract_collection", n_matrices=len(records), jobs=jobs
    ) as span:
        if stats is None:
            with TELEMETRY.span("features.stats") as s:
                stats = parallel_map(
                    stats_for_record, records, jobs=jobs,
                    label="features.stats",
                )
                TELEMETRY.gauge_set("features.stats_seconds", s.duration)
        if len(stats) != len(records):
            raise ValueError("stats and records lengths differ")
        with TELEMETRY.span("features.derive") as s:
            values = features_from_stats_batch(stats)
            TELEMETRY.gauge_set("features.derive_seconds", s.duration)
        TELEMETRY.inc("features.matrices", len(records))
        if TELEMETRY.enabled and span.duration > 0:
            TELEMETRY.gauge_set(
                "features.matrices_per_sec", len(records) / span.duration
            )
    return FeatureTable(
        names=[r.name for r in records],
        feature_names=list(FEATURE_NAMES),
        values=values,
    )
