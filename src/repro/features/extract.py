"""The 21 statistical features of Table 1.

All features are computable in O(nnz) and are architecture-invariant, which
is what makes the paper's clustering portable: *"these features are
completely invariant across architectures, so they have to be computed only
once"* (§4).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import MatrixRecord
from repro.features.stats import MatrixStats, compute_stats
from repro.features.table import FeatureTable
from repro.formats.coo import COOMatrix
from repro.obs import TELEMETRY

#: Feature order follows Table 1 of the paper.
FEATURE_NAMES: tuple[str, ...] = (
    "nrows",
    "ncols",
    "nnz",
    "nnz_frac",
    "nnz_mu",
    "nnz_min",
    "nnz_max",
    "nnz_sig",
    "max_mu",
    "mu_min",
    "csr_max",
    "sig_lower",
    "sig_higher",
    "hyb_ell_size",
    "hyb_coo",
    "hyb_ell_frac",
    "diagonals",
    "dia_size",
    "dia_frac",
    "ell_frac",
    "ell_size",
)


def _rms(deviations: np.ndarray) -> float:
    """Root mean square; 0 for an empty selection."""
    if deviations.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(deviations * deviations)))


def features_from_stats(stats: MatrixStats) -> np.ndarray:
    """Feature vector (length 21, Table-1 order) from structural stats."""
    lengths = stats.row_lengths.astype(np.float64)
    mu = stats.mean_row
    below = lengths[lengths < mu]
    above = lengths[lengths > mu]
    dia_size = stats.dia_size
    ell_size = stats.ell_padded
    return np.array(
        [
            stats.nrows,
            stats.ncols,
            stats.nnz,
            stats.nnz / (stats.nrows * stats.ncols),
            mu,
            stats.min_row,
            stats.max_row,
            stats.std_row,
            stats.max_row - mu,
            mu - stats.min_row,
            stats.csr_max,
            _rms(mu - below),
            _rms(above - mu),
            stats.hyb_ell_slots,
            stats.hyb_coo_entries,
            stats.hyb_ell_entries,
            stats.n_diagonals,
            dia_size,
            stats.nnz / dia_size if dia_size else 0.0,
            stats.nnz / ell_size if ell_size else 0.0,
            ell_size,
        ],
        dtype=np.float64,
    )


def extract_features(matrix: COOMatrix) -> np.ndarray:
    """Feature vector for a single matrix."""
    with TELEMETRY.span("features.extract"):
        with TELEMETRY.span("features.stats"):
            stats = compute_stats(matrix)
        with TELEMETRY.span("features.derive"):
            vec = features_from_stats(stats)
    TELEMETRY.inc("features.matrices")
    return vec


def extract_features_collection(
    records: list[MatrixRecord],
    stats: list[MatrixStats] | None = None,
) -> FeatureTable:
    """Feature table for a whole collection.

    ``stats`` may be shared with the GPU simulator to avoid recomputing
    the structural pass.

    With telemetry enabled the two feature groups — the O(nnz)
    structural pass (``features.stats``) and the O(1) Table-1 derivation
    (``features.derive``) — are timed separately, and throughput lands
    in the ``features.matrices_per_sec`` gauge.
    """
    with TELEMETRY.span(
        "features.extract_collection", n_matrices=len(records)
    ) as span:
        if stats is None:
            with TELEMETRY.span("features.stats") as s:
                stats = [compute_stats(r.matrix) for r in records]
                TELEMETRY.gauge_set("features.stats_seconds", s.duration)
        if len(stats) != len(records):
            raise ValueError("stats and records lengths differ")
        with TELEMETRY.span("features.derive") as s:
            values = np.vstack([features_from_stats(s_) for s_ in stats])
            TELEMETRY.gauge_set("features.derive_seconds", s.duration)
        TELEMETRY.inc("features.matrices", len(records))
        if TELEMETRY.enabled and span.duration > 0:
            TELEMETRY.gauge_set(
                "features.matrices_per_sec", len(records) / span.duration
            )
    return FeatureTable(
        names=[r.name for r in records],
        feature_names=list(FEATURE_NAMES),
        values=values,
    )
