"""The 21 statistical features of Table 1.

All features are computable in O(nnz) and are architecture-invariant, which
is what makes the paper's clustering portable: *"these features are
completely invariant across architectures, so they have to be computed only
once"* (§4).
"""

from __future__ import annotations

import numpy as np

from pathlib import Path
from typing import TextIO

from repro.datasets.generators import MatrixRecord
from repro.features.stats import MatrixStats, StreamingStats, compute_stats
from repro.features.table import FeatureTable
from repro.formats.coo import COOMatrix
from repro.formats.io import (
    DEFAULT_CHUNK_NNZ,
    DEFAULT_POLICY,
    ReadPolicy,
    assemble_matrix,
    read_matrix_market_streaming,
)
from repro.obs import TELEMETRY
from repro.runtime.parallel import parallel_map

#: Feature order follows Table 1 of the paper.
FEATURE_NAMES: tuple[str, ...] = (
    "nrows",
    "ncols",
    "nnz",
    "nnz_frac",
    "nnz_mu",
    "nnz_min",
    "nnz_max",
    "nnz_sig",
    "max_mu",
    "mu_min",
    "csr_max",
    "sig_lower",
    "sig_higher",
    "hyb_ell_size",
    "hyb_coo",
    "hyb_ell_frac",
    "diagonals",
    "dia_size",
    "dia_frac",
    "ell_frac",
    "ell_size",
)

#: The "cheap" subset a tier-1 selector can derive from row lengths alone
#: (no diagonal / warp / HYB analysis): dimensions, nnz, and the
#: row-length mean/min/max/std moments.
CHEAP_FEATURE_NAMES: tuple[str, ...] = (
    "nrows",
    "ncols",
    "nnz",
    "nnz_mu",
    "nnz_min",
    "nnz_max",
    "nnz_sig",
)

#: Column indices of the cheap subset inside the full Table-1 vector.
CHEAP_FEATURE_INDICES: tuple[int, ...] = tuple(
    FEATURE_NAMES.index(name) for name in CHEAP_FEATURE_NAMES
)


def _rms(deviations: np.ndarray) -> float:
    """Root mean square; 0 for an empty selection."""
    if deviations.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(deviations * deviations)))


def features_from_stats(stats: MatrixStats) -> np.ndarray:
    """Feature vector (length 21, Table-1 order) from structural stats."""
    lengths = stats.row_lengths.astype(np.float64)
    mu = stats.mean_row
    below = lengths[lengths < mu]
    above = lengths[lengths > mu]
    dia_size = stats.dia_size
    ell_size = stats.ell_padded
    return np.array(
        [
            stats.nrows,
            stats.ncols,
            stats.nnz,
            stats.nnz / (stats.nrows * stats.ncols),
            mu,
            stats.min_row,
            stats.max_row,
            stats.std_row,
            stats.max_row - mu,
            mu - stats.min_row,
            stats.csr_max,
            _rms(mu - below),
            _rms(above - mu),
            stats.hyb_ell_slots,
            stats.hyb_coo_entries,
            stats.hyb_ell_entries,
            stats.n_diagonals,
            dia_size,
            stats.nnz / dia_size if dia_size else 0.0,
            stats.nnz / ell_size if ell_size else 0.0,
            ell_size,
        ],
        dtype=np.float64,
    )


def stats_for_record(record: MatrixRecord) -> MatrixStats:
    """Picklable work unit: the structural pass for one record.

    This is what ``parallel_map`` ships to worker processes during the
    campaign's stats fan-out; ``compute_stats`` is pure, so results are
    identical for any worker count.
    """
    return compute_stats(record.matrix)


def features_from_stats_batch(stats: list[MatrixStats]) -> np.ndarray:
    """Feature matrix (n × 21, Table-1 order) for a whole stats batch.

    Derivation is vectorised across the batch: the scalar columns are
    assembled as arrays and combined with numpy ops instead of building
    one 21-vector per matrix and ``np.vstack``-ing.  Only ``sig_lower`` /
    ``sig_higher`` keep a per-matrix pass (they reduce each matrix's
    row-length distribution).  Values are bit-identical to stacking
    :func:`features_from_stats` row by row.
    """
    n = len(stats)
    if n == 0:
        return np.empty((0, len(FEATURE_NAMES)), dtype=np.float64)
    as_f64 = lambda attr: np.array(  # noqa: E731 - local column helper
        [getattr(s, attr) for s in stats], dtype=np.float64
    )
    nrows = as_f64("nrows")
    ncols = as_f64("ncols")
    nnz = as_f64("nnz")
    min_row = as_f64("min_row")
    max_row = as_f64("max_row")
    # mean/std go through the same cached scalar the per-matrix path uses.
    mu = as_f64("mean_row")
    sigma = as_f64("std_row")
    dia_size = as_f64("dia_size")
    ell_size = as_f64("ell_padded")

    sig_lower, sig_higher = _batched_sigs(stats, mu)

    def _guarded_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
        out = np.zeros(n, dtype=np.float64)
        nz = den != 0
        out[nz] = num[nz] / den[nz]
        return out

    columns = [
        nrows,
        ncols,
        nnz,
        nnz / (nrows * ncols),
        mu,
        min_row,
        max_row,
        sigma,
        max_row - mu,
        mu - min_row,
        as_f64("csr_max"),
        sig_lower,
        sig_higher,
        as_f64("hyb_ell_slots"),
        as_f64("hyb_coo_entries"),
        as_f64("hyb_ell_entries"),
        as_f64("n_diagonals"),
        dia_size,
        _guarded_ratio(nnz, dia_size),
        _guarded_ratio(nnz, ell_size),
        ell_size,
    ]
    return np.column_stack(columns)


def _batched_sigs(
    stats: list[MatrixStats], mu: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``sig_lower`` / ``sig_higher`` columns for a stats batch.

    One pass over the concatenated row-length distributions replaces the
    historical per-matrix mask/compact/RMS loop: the below/above masks,
    deviations, and squares are computed batch-wide, and per-matrix
    membership *counts* come from an ``np.add.reduceat`` over the
    concatenation boundaries (exact — integer addition is
    order-invariant).  The per-matrix *float* sums deliberately do not
    use ``reduceat``: its left-to-right accumulation is not bit-identical
    to the pairwise ``np.add.reduce`` inside ``np.mean``, so each
    matrix's sum reduces a contiguous slice of the compacted
    squared-deviation array — same values, same order, same pairwise
    tree as the per-matrix path, hence bit-identical output.
    """
    n = len(stats)
    counts = np.array([s.row_lengths.shape[0] for s in stats], dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    sig_lower = np.zeros(n, dtype=np.float64)
    sig_higher = np.zeros(n, dtype=np.float64)
    if total == 0:
        return sig_lower, sig_higher
    all_lengths = np.concatenate(
        [s.row_lengths for s in stats]
    ).astype(np.float64)
    mu_rep = np.repeat(mu, counts)

    for sign, out in ((1.0, sig_lower), (-1.0, sig_higher)):
        devs = sign * (mu_rep - all_lengths)
        member = devs > 0.0
        if counts.min() >= 1:
            seg_counts = np.add.reduceat(
                member.astype(np.int64), offsets[:-1]
            )
        else:  # reduceat cannot express empty segments
            cum = np.zeros(total + 1, dtype=np.int64)
            np.cumsum(member, out=cum[1:])
            seg_counts = cum[offsets[1:]] - cum[offsets[:-1]]
        sq = devs[member]
        sq *= sq
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(seg_counts, out=starts[1:])
        sums = np.zeros(n, dtype=np.float64)
        for i in range(n):
            lo, hi = starts[i], starts[i + 1]
            if hi > lo:
                sums[i] = np.add.reduce(sq[lo:hi])
        nz = seg_counts > 0
        out[nz] = np.sqrt(sums[nz] / seg_counts[nz])
    return sig_lower, sig_higher


def extract_features(matrix: COOMatrix) -> np.ndarray:
    """Feature vector for a single matrix."""
    with TELEMETRY.span("features.extract"):
        with TELEMETRY.span("features.stats"):
            stats = compute_stats(matrix)
        with TELEMETRY.span("features.derive"):
            vec = features_from_stats(stats)
    TELEMETRY.inc("features.matrices")
    return vec


def cheap_features_from_lengths(
    nrows: int, ncols: int, nnz: int, lengths: np.ndarray
) -> np.ndarray:
    """The :data:`CHEAP_FEATURE_NAMES` vector from canonical row lengths.

    Uses the same formulas as :class:`MatrixStats`'s cached scalars, so
    the result is bit-identical to
    ``features_from_stats(stats)[list(CHEAP_FEATURE_INDICES)]``.
    """
    return np.array(
        [
            nrows,
            ncols,
            nnz,
            float(nnz / nrows) if nrows else 0.0,
            int(lengths.min()) if lengths.size else 0,
            int(lengths.max(initial=0)),
            float(lengths.std()) if nrows else 0.0,
        ],
        dtype=np.float64,
    )


def stats_from_stream(
    source: str | Path | TextIO,
    policy: ReadPolicy = DEFAULT_POLICY,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> MatrixStats:
    """Structural stats straight from a MatrixMarket stream.

    Feeds :class:`StreamingStats` chunk-by-chunk while parsing, so the
    O(nnz) coordinate stream is never materialized; the result is
    bit-identical to ``compute_stats(read_matrix_market(source,
    policy))``.  Table-1 features depend only on the canonical
    *coordinate set* (values never matter), so canonicalisation reduces
    to deduplication: when duplicates are possible — summing policy, or
    symmetric mirroring that may collide with a stored transpose pair —
    8-byte row-major keys are retained per chunk and, only if a
    duplicate actually occurred, the accumulator is rebuilt from the
    deduplicated keys without re-reading the file.
    """
    stream = read_matrix_market_streaming(source, policy, chunk_nnz)
    header = next(stream)
    nrows, ncols = header.nrows, header.ncols
    if nrows * ncols > np.iinfo(np.int64).max:
        # Row-major keys would overflow; fall back to the materializing
        # path (such dimensions only occur with absurd forged headers
        # that a sane ReadPolicy rejects at the size line anyway).
        rows, cols, vals = [], [], []
        for block in stream:
            rows.append(block.rows)
            cols.append(block.cols)
            vals.append(block.vals)
        return compute_stats(assemble_matrix(header, rows, cols, vals))
    mirror = header.symmetry in ("symmetric", "skew-symmetric")
    # Under a rejecting policy the reader guarantees stored coordinates
    # are unique, so a plain general matrix needs no key bookkeeping.
    need_keys = mirror or policy.duplicates == "sum"
    acc = StreamingStats(nrows, ncols)
    key_chunks: list[np.ndarray] = []
    for block in stream:
        acc.update(block.rows, block.cols)
        if need_keys:
            key_chunks.append(block.rows * ncols + block.cols)
        if mirror:
            off = block.rows != block.cols
            m_rows, m_cols = block.cols[off], block.rows[off]
            acc.update(m_rows, m_cols)
            key_chunks.append(m_rows * ncols + m_cols)
    if need_keys and acc.nnz:
        keys = (
            np.concatenate(key_chunks)
            if len(key_chunks) > 1
            else key_chunks[0]
        )
        keys.sort()
        dup = keys[1:] == keys[:-1]
        if dup.any():
            mask = np.empty(keys.shape[0], dtype=bool)
            mask[0] = True
            np.logical_not(dup, out=mask[1:])
            uniq = keys[mask]
            acc = StreamingStats(nrows, ncols)
            for lo in range(0, uniq.shape[0], chunk_nnz):
                k = uniq[lo : lo + chunk_nnz]
                r = k // ncols
                acc.update(r, k - r * ncols)
    return acc.finalize()


def extract_features_streaming(
    source: str | Path | TextIO,
    policy: ReadPolicy = DEFAULT_POLICY,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> np.ndarray:
    """Feature vector straight from a MatrixMarket stream.

    Bit-identical to ``extract_features(read_matrix_market(source,
    policy))`` while keeping the working set at O(nrows + ncols) plus
    one chunk (general matrices under a rejecting policy) or O(nnz)
    8-byte keys (when duplicates must be collapsed).
    """
    with TELEMETRY.span("features.extract_streaming"):
        with TELEMETRY.span("features.stats"):
            stats = stats_from_stream(source, policy, chunk_nnz)
        with TELEMETRY.span("features.derive"):
            vec = features_from_stats(stats)
    TELEMETRY.inc("features.matrices")
    return vec


def extract_features_collection(
    records: list[MatrixRecord],
    stats: list[MatrixStats] | None = None,
    jobs: int = 1,
) -> FeatureTable:
    """Feature table for a whole collection.

    ``stats`` may be shared with the GPU simulator to avoid recomputing
    the structural pass; with ``jobs > 1`` that pass fans out over a
    process pool (results are identical — ``compute_stats`` is pure).

    With telemetry enabled the two feature groups — the O(nnz)
    structural pass (``features.stats``) and the O(1) Table-1 derivation
    (``features.derive``) — are timed separately, and throughput lands
    in the ``features.matrices_per_sec`` gauge.
    """
    with TELEMETRY.span(
        "features.extract_collection", n_matrices=len(records), jobs=jobs
    ) as span:
        if stats is None:
            with TELEMETRY.span("features.stats") as s:
                stats = parallel_map(
                    stats_for_record, records, jobs=jobs,
                    label="features.stats",
                )
                TELEMETRY.gauge_set("features.stats_seconds", s.duration)
        if len(stats) != len(records):
            raise ValueError("stats and records lengths differ")
        with TELEMETRY.span("features.derive") as s:
            values = features_from_stats_batch(stats)
            TELEMETRY.gauge_set("features.derive_seconds", s.duration)
        TELEMETRY.inc("features.matrices", len(records))
        if TELEMETRY.enabled and span.duration > 0:
            TELEMETRY.gauge_set(
                "features.matrices_per_sec", len(records) / span.duration
            )
    return FeatureTable(
        names=[r.name for r in records],
        feature_names=list(FEATURE_NAMES),
        values=values,
    )
