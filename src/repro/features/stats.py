"""Structural statistics computed once per matrix.

Both the Table-1 feature extractor and the GPU kernel cost models consume
the same structural quantities (row-length distribution, padding sizes, HYB
split, diagonal occupancy, locality).  Computing them in one O(nnz) pass
keeps benchmarking the full collection cheap — the paper makes the same
point about its features: *"We have chosen only features that can be
computed in time proportional to the number of nonzeros."*
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.formats.base import INDEX_BYTES, VALUE_BYTES
from repro.formats.coo import COOMatrix
from repro.formats.ell import DEFAULT_MAX_FILL
from repro.formats.hyb import optimal_ell_width

#: GPU warp width: CSR-scalar assigns one thread per row, 32 consecutive
#: rows per warp, so a warp's latency is set by its longest row.
WARP_SIZE = 32

#: Column distance within which an x-vector gather is considered local
#: (same neighbourhood of cache lines as the diagonal).
BAND_LOCALITY_WINDOW = 256


@dataclass(frozen=True)
class MatrixStats:
    """Immutable bag of structural statistics for one sparse matrix."""

    nrows: int
    ncols: int
    nnz: int
    row_lengths: np.ndarray
    #: Number of distinct occupied diagonals.
    n_diagonals: int
    #: Fraction of entries with |col - row| <= BAND_LOCALITY_WINDOW.
    band_fraction: float
    #: Mean |col - row| over stored entries (0 for empty matrices).
    mean_abs_offset: float
    #: Sum over warps of (WARP_SIZE * longest row in warp): the number of
    #: lane-slots the CSR-scalar kernel occupies including divergence idle.
    warp_divergence_slots: int
    #: Max number of rows a single warp-sized chunk of nonzeros spans in an
    #: nnz-balanced CSR kernel (the paper's csr_max feature).
    csr_max: int
    #: HYB split under CUSP's heuristic.
    hyb_width: int
    hyb_ell_entries: int
    hyb_coo_entries: int

    # -- row-length scalars ------------------------------------------------

    @cached_property
    def max_row(self) -> int:
        return int(self.row_lengths.max(initial=0))

    @cached_property
    def min_row(self) -> int:
        # NOT ``.min(initial=0)``: with ``initial`` the reduction includes
        # 0 as a candidate, which always wins over non-negative lengths
        # and would zero the Table-1 ``mu_min`` feature.
        return int(self.row_lengths.min()) if self.row_lengths.size else 0

    @cached_property
    def mean_row(self) -> float:
        return float(self.nnz / self.nrows) if self.nrows else 0.0

    @cached_property
    def std_row(self) -> float:
        return float(self.row_lengths.std()) if self.nrows else 0.0

    # -- ELL geometry --------------------------------------------------------

    @property
    def ell_width(self) -> int:
        return self.max_row

    @property
    def ell_padded(self) -> int:
        """Stored slot count of the full-ELL structure."""
        return self.nrows * self.max_row

    def ell_convertible(self, max_fill: float = DEFAULT_MAX_FILL) -> bool:
        """Whether CUSP's ELL conversion would accept this matrix."""
        if self.nnz == 0:
            return True
        padded = self.ell_padded
        return padded <= max_fill * self.nnz or padded <= 4096

    # -- HYB geometry ----------------------------------------------------

    @property
    def hyb_ell_slots(self) -> int:
        """Padded slot count of the HYB's ELL part."""
        return self.nrows * self.hyb_width

    # -- DIA geometry -----------------------------------------------------

    @property
    def dia_size(self) -> int:
        return self.n_diagonals * self.nrows

    # -- storage footprints (bytes, GPU-resident) ---------------------------

    def bytes_csr(self) -> int:
        return (self.nrows + 1 + self.nnz) * INDEX_BYTES + self.nnz * VALUE_BYTES

    def bytes_coo(self) -> int:
        return self.nnz * (2 * INDEX_BYTES + VALUE_BYTES)

    def bytes_ell(self) -> int:
        return self.ell_padded * (INDEX_BYTES + VALUE_BYTES)

    def bytes_hyb(self) -> int:
        return self.hyb_ell_slots * (
            INDEX_BYTES + VALUE_BYTES
        ) + self.hyb_coo_entries * (2 * INDEX_BYTES + VALUE_BYTES)

    def format_bytes(self, fmt: str) -> int:
        return {
            "csr": self.bytes_csr,
            "coo": self.bytes_coo,
            "ell": self.bytes_ell,
            "hyb": self.bytes_hyb,
        }[fmt]()


def compute_stats(matrix: COOMatrix) -> MatrixStats:
    """One-pass structural analysis of a COO matrix."""
    lengths = matrix.row_lengths()
    nrows, ncols = matrix.shape
    nnz = matrix.nnz

    # Diagonal occupancy and locality.
    if nnz:
        offs = matrix.cols - matrix.rows
        n_diagonals = int(np.unique(offs).shape[0])
        abs_offs = np.abs(offs)
        band_fraction = float(np.mean(abs_offs <= BAND_LOCALITY_WINDOW))
        mean_abs_offset = float(abs_offs.mean())
    else:
        n_diagonals = 0
        band_fraction = 1.0
        mean_abs_offset = 0.0

    warp_divergence_slots = _warp_divergence(lengths)
    csr_max = _csr_max(lengths, nnz)

    hyb_width = optimal_ell_width(lengths)
    hyb_ell_entries = int(np.minimum(lengths, hyb_width).sum())
    hyb_coo_entries = nnz - hyb_ell_entries

    return MatrixStats(
        nrows=nrows,
        ncols=ncols,
        nnz=nnz,
        row_lengths=lengths,
        n_diagonals=n_diagonals,
        band_fraction=band_fraction,
        mean_abs_offset=mean_abs_offset,
        warp_divergence_slots=warp_divergence_slots,
        csr_max=csr_max,
        hyb_width=hyb_width,
        hyb_ell_entries=hyb_ell_entries,
        hyb_coo_entries=hyb_coo_entries,
    )


def _warp_divergence(lengths: np.ndarray) -> int:
    """CSR-scalar warp divergence: group rows in warps of 32.

    ``np.maximum.reduceat`` over warp boundaries replaces the historical
    pad-with-zeros + reshape approach: integer maxima are exact and
    order-invariant, so the result is bit-identical while avoiding an
    O(nrows) copy on every extraction.  A final partial warp still costs
    ``WARP_SIZE`` lane-slots per longest row, exactly as padding did
    (padded zero rows never beat a real non-negative length).
    """
    nrows = lengths.shape[0]
    if not nrows:
        return 0
    starts = np.arange(0, nrows, WARP_SIZE)
    per_warp_max = np.maximum.reduceat(lengths, starts)
    return int(per_warp_max.sum()) * WARP_SIZE


class StreamingStats:
    """Single-pass accumulator form of :func:`compute_stats`.

    Feed canonical ``(rows, cols)`` coordinate chunks with :meth:`update`
    — in any order and any chunking — then call :meth:`finalize` for a
    :class:`MatrixStats` bit-identical to ``compute_stats`` on the same
    coordinate set (values never influence any Table-1 feature, so only
    coordinates are consumed).  This is what lets features be ready the
    moment a streamed MatrixMarket file ends.

    Exactness relies on every accumulator being order- and
    chunking-invariant:

    - row lengths via ``np.bincount`` (exact integer adds),
    - diagonal occupancy via a boolean presence array over the
      ``nrows + ncols - 1`` possible offsets (counting occupied slots
      equals ``len(np.unique(offs))`` exactly, with no per-pass sort),
    - band and offset moments as exact Python integer tallies; the final
      divisions ``count / nnz`` reproduce ``np.mean`` bit-for-bit because
      numpy's mean of a bool/integer array is (exact sum) / n in double
      precision whenever the sum stays below 2**53 — guaranteed here
      since ``|col - row| < 2**31`` and practical nnz keep the tally far
      under that,
    - warp divergence / csr_max / HYB split from the finished row-length
      histogram (exact integer reductions).

    The working set is O(nrows + ncols), the same order as the
    ``row_lengths`` array :class:`MatrixStats` must hold anyway — the
    O(nnz) coordinate stream itself is never materialized.

    The chunks must together form a *canonical* coordinate set (no
    duplicate coordinates): duplicates would inflate ``nnz`` and the row
    histogram, where the canonical :class:`~repro.formats.coo.COOMatrix`
    collapses them.  Callers that stream raw files deduplicate first
    (see ``repro.features.extract.stats_from_stream``).
    """

    def __init__(self, nrows: int, ncols: int) -> None:
        if nrows < 1 or ncols < 1:
            raise ValueError("StreamingStats requires positive dimensions")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.nnz = 0
        self._row_counts = np.zeros(self.nrows, dtype=np.int64)
        self._diag_seen = np.zeros(self.nrows + self.ncols - 1, dtype=bool)
        self._band_count = 0
        self._abs_offset_sum = 0

    def update(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Absorb one chunk of coordinates (int arrays of equal length)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows/cols must be equal-length 1-D arrays")
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self.nrows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.ncols:
            raise ValueError("column index out of range")
        self._row_counts += np.bincount(rows, minlength=self.nrows)
        offs = cols - rows
        self._diag_seen[offs + (self.nrows - 1)] = True
        abs_offs = np.abs(offs)
        self._band_count += int(
            np.count_nonzero(abs_offs <= BAND_LOCALITY_WINDOW)
        )
        self._abs_offset_sum += int(abs_offs.sum())
        self.nnz += int(rows.shape[0])

    def finalize(self) -> MatrixStats:
        """Close the accumulator and derive the full MatrixStats."""
        lengths = self._row_counts
        nnz = self.nnz
        if nnz:
            n_diagonals = int(np.count_nonzero(self._diag_seen))
            band_fraction = float(self._band_count) / nnz
            mean_abs_offset = float(self._abs_offset_sum) / nnz
        else:
            n_diagonals = 0
            band_fraction = 1.0
            mean_abs_offset = 0.0

        hyb_width = optimal_ell_width(lengths)
        hyb_ell_entries = int(np.minimum(lengths, hyb_width).sum())

        return MatrixStats(
            nrows=self.nrows,
            ncols=self.ncols,
            nnz=nnz,
            row_lengths=lengths,
            n_diagonals=n_diagonals,
            band_fraction=band_fraction,
            mean_abs_offset=mean_abs_offset,
            warp_divergence_slots=_warp_divergence(lengths),
            csr_max=_csr_max(lengths, nnz),
            hyb_width=hyb_width,
            hyb_ell_entries=hyb_ell_entries,
            hyb_coo_entries=nnz - hyb_ell_entries,
        )


def _csr_max(lengths: np.ndarray, nnz: int) -> int:
    """Table-1 ``csr_max``: *"maximum number of rows a particular warp will
    process in the CSR kernel."*

    We interpret the nnz-balanced CSR kernel: nonzeros are divided into
    contiguous chunks of ``WARP_SIZE * ceil(mean row length)`` entries (one
    warp's quota), and ``csr_max`` is the largest number of rows any chunk
    spans.  Matrices with many short/empty rows yield large values.
    """
    nrows = lengths.shape[0]
    if nnz == 0 or nrows == 0:
        return 0
    chunk = WARP_SIZE * max(1, int(np.ceil(nnz / nrows)))
    ends = np.cumsum(lengths)
    # For each chunk boundary b (multiples of `chunk`), the row containing
    # entry b is searchsorted(ends, b, side='right').
    bounds = np.arange(0, nnz + chunk, chunk)
    rows_at = np.searchsorted(ends, bounds, side="right")
    rows_at = np.minimum(rows_at, nrows - 1)
    spans = np.diff(rows_at) + 1
    return int(spans.max(initial=1))
