"""BatchPredictor: vectorized, sharded, fault-isolated inference.

The engine answers N feature vectors in one pass.  Its contract
(enforced by ``tests/inference/test_batch_equivalence.py``):

1. **Bit-identity.**  ``predict(X)[i]`` equals
   ``FrozenSelector.predict(X[i:i+1])[0]`` exactly, for every row, every
   dtype the input arrives in, and every shard count.  This holds
   because the whole inference chain runs on elementwise operations,
   per-row reductions, and the row-stable kernels of
   :mod:`repro.ml.linalg` — no BLAS gemm whose accumulation order could
   depend on the batch shape.
2. **Shard transparency.**  Shards are contiguous order-preserving
   slices (:mod:`repro.inference.planner`), executed inline or on the
   :func:`repro.runtime.parallel.parallel_map` pool; results are
   reassembled in item order, so the worker count never changes output.
3. **Fault isolation.**  A shard that raises degrades to per-item
   inference; items that still fail are quarantined
   (:class:`~repro.runtime.resilience.Quarantine`) and answered with the
   fallback format, so one poison vector cannot take down a collection
   run — the same graceful-degradation story as the campaign engine.

Telemetry (enabled mode): ``inference.batch_size`` histogram,
``inference.shard_seconds`` / ``inference.item_seconds`` latency
histograms, an ``inference.shard_utilization`` gauge (busy fraction of
the pool), and ``inference.predictions`` / ``inference.fallbacks``
counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.deploy import (
    DEFAULT_FALLBACK_FORMAT,
    FallbackSelector,
    FrozenSelector,
)
from repro.inference.planner import ShardPlan, plan_shards
from repro.ml.linalg import pairwise_sq_dists
from repro.obs import LATENCY_BUCKETS, TELEMETRY
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import Quarantine, TaskFailure

#: Histogram buckets for observed batch sizes (powers of two).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024
)


def _detailed(
    frozen: FrozenSelector, X: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(labels, centroid indices, nearest distances) for a batch.

    Shares one transform + one distance matrix across the three outputs;
    each is bitwise what the corresponding single-path method
    (``predict`` / ``assign`` / ``nearest_distance``) returns, because
    ``d2[i, argmin(d2[i])]`` is the same float ``min(d2[i])`` reads.
    """
    Z = frozen.transform(X)
    d2 = pairwise_sq_dists(Z, frozen.centroids)
    idx = np.argmin(d2, axis=1)
    labels = frozen.centroid_labels[idx]
    nearest = d2[np.arange(d2.shape[0]), idx]
    distances = np.sqrt(np.maximum(nearest, 0.0))
    return labels, idx, distances


def _shard_task(
    task: tuple[int, np.ndarray], frozen: FrozenSelector
) -> tuple[int, float, tuple[np.ndarray, np.ndarray, np.ndarray] | None, str | None]:
    """Pool-side shard body: predict one shard, never raise.

    The ``inference.shard`` span records in whichever telemetry is live
    where the shard runs: the parent's (inline path, ``jobs <= 1``) or
    the worker's child telemetry, whose subtree is stitched back under
    the request root by :mod:`repro.runtime.parallel`.
    """
    index, X = task
    start = time.perf_counter()
    try:
        with TELEMETRY.span("inference.shard", shard=index, rows=len(X)):
            out = _detailed(frozen, np.asarray(X, dtype=np.float64))
        return index, time.perf_counter() - start, out, None
    except Exception as exc:  # isolated: the parent retries per item
        message = f"{type(exc).__name__}: {exc}"
        return index, time.perf_counter() - start, None, message


@dataclass(frozen=True)
class ItemPrediction:
    """One matrix's recommendation with its provenance."""

    index: int
    name: str
    label: str
    centroid: int  # -1 when the fallback answered
    distance: float  # NaN when the fallback answered
    source: str  # "model" | "fallback"
    error: str | None = None

    def to_json(self) -> dict:
        record: dict = {
            "name": self.name,
            "format": self.label,
            "source": self.source,
        }
        if self.source == "model":
            record["centroid"] = self.centroid
            record["distance"] = self.distance
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class BatchReport:
    """Everything a sharded batch run produced."""

    items: list[ItemPrediction]
    plan: ShardPlan
    quarantine: Quarantine = field(default_factory=Quarantine)
    seconds: float = 0.0

    @property
    def labels(self) -> np.ndarray:
        return np.array([item.label for item in self.items], dtype=object)

    @property
    def n_fallback(self) -> int:
        return sum(1 for item in self.items if item.source == "fallback")


class BatchPredictor:
    """Batched inference over a frozen selector.

    Accepts a healthy :class:`FrozenSelector` or a (possibly degraded)
    :class:`FallbackSelector`; a degraded model answers every item with
    the fallback format, mirroring the single path's semantics.
    """

    def __init__(
        self,
        selector: FrozenSelector | FallbackSelector,
        fallback_format: str = DEFAULT_FALLBACK_FORMAT,
    ) -> None:
        if isinstance(selector, FallbackSelector):
            self.frozen = selector.selector
            self.fallback_format = selector.fallback_format
            self.degraded_cause = selector.cause
        else:
            self.frozen = selector
            self.fallback_format = fallback_format
            self.degraded_cause = None

    @property
    def degraded(self) -> bool:
        return self.frozen is None

    # -- vectorized core -------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Format labels for a stacked batch (empty batches allowed)."""
        labels, _, _ = self.predict_detailed(X)
        return labels

    def predict_detailed(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(labels, centroid indices, nearest distances) for a batch."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if n == 0:
            return (
                np.empty(0, dtype=object),
                np.empty(0, dtype=np.int64),
                np.empty(0),
            )
        if self.frozen is None:
            TELEMETRY.inc("inference.fallbacks", n)
            return (
                np.array([self.fallback_format] * n, dtype=object),
                np.full(n, -1, dtype=np.int64),
                np.full(n, np.nan),
            )
        labels, idx, distances = _detailed(self.frozen, X)
        TELEMETRY.inc("inference.predictions", n)
        return labels, idx, distances

    # -- sharded execution -----------------------------------------------

    def predict_sharded(
        self,
        X: np.ndarray,
        names: list[str] | None = None,
        jobs: int | None = 1,
        shard_size: int | None = None,
    ) -> BatchReport:
        """Predict a batch across shards with per-item fault isolation.

        ``names`` label the items in the report and the quarantine
        (defaults to the item index).  Output order always matches input
        order, and labels are bit-identical for every ``jobs`` /
        ``shard_size`` combination.
        """
        from repro.obs.context import request_scope

        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if names is None:
            names = [str(i) for i in range(n)]
        if len(names) != n:
            raise ValueError(f"{len(names)} names for {n} items")
        plan = plan_shards(n, jobs=jobs, shard_size=shard_size)
        with request_scope(
            "inference.request", n_items=n, jobs=plan.jobs,
            n_shards=plan.n_shards,
        ):
            return self._predict_sharded(X, names, plan)

    def _predict_sharded(
        self, X: np.ndarray, names: list[str], plan: ShardPlan
    ) -> BatchReport:
        n = X.shape[0]
        report = BatchReport(items=[], plan=plan)
        started = time.perf_counter()
        TELEMETRY.observe(
            "inference.batch_size", float(n), buckets=BATCH_SIZE_BUCKETS
        )
        if n == 0:
            return report

        if self.degraded:
            # No model: every shard answers with the fallback, inline.
            for i, name in enumerate(names):
                report.items.append(self._fallback_item(
                    i, name, self.degraded_cause or "degraded_model"
                ))
            report.seconds = time.perf_counter() - started
            return report

        tasks = [(shard.index, X[shard.slice]) for shard in plan]
        results = parallel_map(
            partial(_shard_task, frozen=self.frozen),
            tasks,
            jobs=plan.jobs,
            chunk=1,
            label="inference.shards",
        )
        busy = 0.0
        for shard, (index, seconds, out, error) in zip(plan, results):
            busy += seconds
            TELEMETRY.observe(
                "inference.shard_seconds", seconds, buckets=LATENCY_BUCKETS
            )
            if shard.size:
                TELEMETRY.observe(
                    "inference.item_seconds",
                    seconds / shard.size,
                    buckets=LATENCY_BUCKETS,
                )
            shard_names = names[shard.start : shard.stop]
            if error is None:
                labels, idx, distances = out
                for k, name in enumerate(shard_names):
                    report.items.append(ItemPrediction(
                        index=shard.start + k,
                        name=name,
                        label=str(labels[k]),
                        centroid=int(idx[k]),
                        distance=float(distances[k]),
                        source="model",
                    ))
            else:
                # The shard failed as a whole; isolate the poison items
                # by retrying each row on the single path.
                self._isolate(
                    report, X[shard.slice], shard.start, shard_names
                )
        wall = time.perf_counter() - started
        report.seconds = wall
        if wall > 0:
            TELEMETRY.gauge_set(
                "inference.shard_utilization",
                min(busy / (plan.jobs * wall), 1.0),
            )
        TELEMETRY.inc("inference.batches")
        return report

    def _isolate(
        self,
        report: BatchReport,
        X: np.ndarray,
        offset: int,
        names: list[str],
    ) -> None:
        """Per-item retry of a failed shard; quarantine what still fails."""
        for k, name in enumerate(names):
            try:
                labels, idx, distances = _detailed(
                    self.frozen, X[k : k + 1]
                )
                report.items.append(ItemPrediction(
                    index=offset + k,
                    name=name,
                    label=str(labels[0]),
                    centroid=int(idx[0]),
                    distance=float(distances[0]),
                    source="model",
                ))
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                report.quarantine.add(
                    name,
                    stage="inference",
                    failure=TaskFailure(
                        key=name, kind="error", attempts=2, message=message
                    ),
                )
                item = self._fallback_item(offset + k, name, "predict_error")
                report.items.append(ItemPrediction(
                    index=item.index,
                    name=item.name,
                    label=item.label,
                    centroid=item.centroid,
                    distance=item.distance,
                    source=item.source,
                    error=message,
                ))

    def _fallback_item(
        self, index: int, name: str, cause: str
    ) -> ItemPrediction:
        TELEMETRY.inc("inference.fallbacks")
        TELEMETRY.inc(f"deploy.fallback_cause.{cause}")
        return ItemPrediction(
            index=index,
            name=name,
            label=self.fallback_format,
            centroid=-1,
            distance=float("nan"),
            source="fallback",
        )
