"""Shard planning: contiguous, order-preserving slices of a batch.

Sharding must never influence predictions — the determinism contract
(DESIGN §11) requires ``concat(predict(shard) for shard in plan) ==
predict(batch)`` bitwise.  The planner therefore only ever produces
contiguous slices in item order, reusing the chunking rule of
:func:`repro.runtime.parallel.chunk_slices` so the batch engine inherits
the campaign pool's load-balancing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.parallel import chunk_slices, resolve_jobs


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of the batch."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)


@dataclass(frozen=True)
class ShardPlan:
    """An ordered cover of ``range(n_items)`` by disjoint shards."""

    n_items: int
    jobs: int
    shards: tuple[Shard, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)


def plan_shards(
    n_items: int,
    jobs: int | None = 1,
    shard_size: int | None = None,
) -> ShardPlan:
    """Plan shards for a batch of ``n_items`` feature vectors.

    ``jobs`` follows the ``--jobs`` convention (``None``/1 = inline,
    0/negative = all cores); ``shard_size`` forces a fixed shard length
    instead of the pool's chunks-per-worker heuristic.  ``n_items == 0``
    yields an empty plan (zero shards), which the engine answers with an
    empty result — planners and callers never special-case it.
    """
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    jobs = resolve_jobs(jobs)
    slices = chunk_slices(n_items, jobs, shard_size)
    shards = tuple(
        Shard(index=i, start=sl.start, stop=sl.stop)
        for i, sl in enumerate(slices)
    )
    return ShardPlan(n_items=n_items, jobs=jobs, shards=shards)
