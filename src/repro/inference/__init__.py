"""repro.inference — batched, sharded format prediction.

The single-matrix path (:meth:`repro.core.deploy.FrozenSelector.predict`)
answers one feature vector at a time; this package amortises selection
overhead across whole matrix collections, as Elafrou et al. and
Stylianou & Weiland argue a deployed selector must:

- :class:`BatchPredictor` stacks N feature vectors and runs the entire
  inference chain — sparse-distribution transform → min-max scale → PCA
  → nearest-centroid labeling — as vectorized NumPy operations on the
  row-stable kernels in :mod:`repro.ml.linalg`, so batch output is
  **bit-identical** to the single path for every row.
- :func:`plan_shards` splits large batches into contiguous shards for
  the :mod:`repro.runtime.parallel` pool with per-shard telemetry; a
  failing shard degrades to per-item inference and quarantines only the
  poison items (same taxonomy as the campaign's
  :class:`~repro.runtime.resilience.Quarantine`).

Surfaced on the CLI as ``repro predict-batch`` and inside ``repro
serve`` as admission-queue micro-batching.
"""

from repro.inference.engine import (
    BatchPredictor,
    BatchReport,
    ItemPrediction,
)
from repro.inference.planner import Shard, ShardPlan, plan_shards

__all__ = [
    "BatchPredictor",
    "BatchReport",
    "ItemPrediction",
    "Shard",
    "ShardPlan",
    "plan_shards",
]
