"""GPU architecture parameter sets (Table 2 of the paper).

Hardware parameters (SM count, caches, memory, bandwidth) come straight
from Table 2.  The kernel-efficiency dials encode the architecture effects
the paper describes in §3 and §5: Pascal's weaker latency hiding punishes
skewed rows (more HYB wins), Turing's cheap atomics favour COO (Table 3
shows 415 COO wins on Turing vs 4 on Volta), and Volta's huge bandwidth and
thread count make the row-based formats dominate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUArchitecture:
    """One simulated GPU platform."""

    name: str
    microarchitecture: str
    model: str
    # --- Table 2 hardware parameters ---
    num_sms: int
    l1_kib_per_sm: int
    l2_kib: int
    memory_gb: int
    bandwidth_gbs: float
    # --- kernel model dials ---
    #: Sustained fraction of peak bandwidth for streaming sparse kernels.
    bandwidth_efficiency: float
    #: CSR coalescing floor: the efficiency of the CSR kernel on
    #: single-entry rows relative to long streaming rows.  Newer memory
    #: systems (better sector caching) have a higher floor; this is the
    #: main source of architecture-dependent CSR/ELL label boundaries.
    csr_coalesce_min: float
    #: Aggregate lane throughput (simple kernel slots per second).
    lane_rate: float
    #: Exposed per-entry latency of a serial per-thread row walk (seconds);
    #: governs how badly long rows hurt CSR/ELL when occupancy is low.
    serial_entry_latency: float
    #: Per-entry lane-cost multiplier of the COO segmented-reduction /
    #: atomics kernel relative to a coalesced ELL slot.
    coo_lane_cost: float
    #: How many times the COO kernel's multi-pass segmented reduction
    #: re-streams the matrix data (1.0 = single pass).  Architectures with
    #: fast atomics (Turing) keep this near 1, which is what lets COO win
    #: on short scattered rows there.
    coo_pass_factor: float
    #: Kernel launch overhead (seconds).
    launch_overhead: float
    #: Extra overhead of HYB's two-kernel dispatch (seconds).
    hyb_extra_overhead: float
    #: Simulated device-memory capacity available to one matrix, in bytes.
    #: The paper's matrices occupy a few % of real GPU memory; the synthetic
    #: collection is ~1000× smaller, so capacity is scaled by the same
    #: factor to preserve the "very large matrices cannot be run on some
    #: GPUs" exclusion behaviour (§5.1).
    capacity_bytes: int

    @property
    def l2_bytes(self) -> int:
        return self.l2_kib * 1024

    @property
    def max_resident_threads(self) -> int:
        return self.num_sms * 2048

    @property
    def effective_bandwidth(self) -> float:
        """Sustained bytes/second."""
        return self.bandwidth_gbs * 1e9 * self.bandwidth_efficiency


_CAPACITY_SCALE = 1_000  # collection matrices are ~1000x smaller than SuiteSparse

PASCAL = GPUArchitecture(
    name="pascal",
    microarchitecture="Pascal",
    model="GeForce GTX 1080",
    num_sms=20,
    l1_kib_per_sm=48,
    l2_kib=2048,
    memory_gb=8,
    bandwidth_gbs=320.0,
    bandwidth_efficiency=0.68,
    csr_coalesce_min=0.68,
    lane_rate=0.55e12,
    serial_entry_latency=5.0e-9,
    coo_lane_cost=2.4,
    coo_pass_factor=1.55,
    launch_overhead=5.0e-6,
    hyb_extra_overhead=1.0e-6,
    capacity_bytes=8 * 10**9 // _CAPACITY_SCALE,
)

VOLTA = GPUArchitecture(
    name="volta",
    microarchitecture="Volta",
    model="V100 SXM3",
    num_sms=80,
    l1_kib_per_sm=128,
    l2_kib=6144,
    memory_gb=32,
    bandwidth_gbs=897.0,
    bandwidth_efficiency=0.74,
    csr_coalesce_min=0.76,
    lane_rate=1.6e12,
    serial_entry_latency=2.2e-9,
    coo_lane_cost=3.2,
    coo_pass_factor=1.65,
    launch_overhead=4.0e-6,
    hyb_extra_overhead=9.0e-6,
    capacity_bytes=32 * 10**9 // _CAPACITY_SCALE,
)

TURING = GPUArchitecture(
    name="turing",
    microarchitecture="Turing",
    model="Quadro RTX 8000",
    num_sms=72,
    l1_kib_per_sm=64,
    l2_kib=6144,
    memory_gb=48,
    bandwidth_gbs=672.0,
    bandwidth_efficiency=0.72,
    csr_coalesce_min=0.70,
    lane_rate=1.3e12,
    serial_entry_latency=2.6e-9,
    coo_lane_cost=1.45,
    coo_pass_factor=1.28,
    launch_overhead=4.0e-6,
    hyb_extra_overhead=6.0e-6,
    capacity_bytes=48 * 10**9 // _CAPACITY_SCALE,
)

#: Registry by architecture name.
ARCHITECTURES: dict[str, GPUArchitecture] = {
    a.name: a for a in (PASCAL, VOLTA, TURING)
}
