"""The benchmark harness: simulated SpMV timing over a matrix collection.

Replaces the paper's two-day GPU benchmarking campaign (§5.4, Table 8).
For every matrix it produces per-format averaged times, the best format
(the training label), and the exclusion status that the paper applies
("very large matrices cannot be run on some GPUs, and they are omitted.
We also omit matrices where the CUSP library failed to generate the ELL
variant").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.datasets.generators import MatrixRecord
from repro.features.stats import MatrixStats, compute_stats
from repro.formats.coo import COOMatrix
from repro.gpu.arch import GPUArchitecture
from repro.gpu.kernels import (
    MODELED_FORMATS,
    FormatInfeasibleError,
    KernelModel,
    NoFeasibleFormatError,
    OpSpec,
    parse_op,
)
from repro.gpu.noise import DEFAULT_SIGMA, averaged_measurement
from repro.obs import TELEMETRY
from repro.runtime.parallel import parallel_map

#: Table 8's relative conversion costs, normalised to one CSR SpMV:
#: "COO 9, ELL 102, HYB 147" (adapted from prior work [39]).
CONVERSION_COST_RELATIVE: dict[str, float] = {
    "csr": 0.0,  # matrices are read in CSR; no conversion needed
    "coo": 9.0,
    "ell": 102.0,
    "hyb": 147.0,
}

#: §5.4: "assuming an average time of 5 seconds for reading the .mtx files".
MTX_READ_SECONDS = 5.0


@dataclass(frozen=True)
class BenchmarkResult:
    """Outcome of benchmarking one matrix on one architecture."""

    name: str
    arch: str
    #: Averaged time per feasible format (seconds).
    times: dict[str, float]
    #: Formats excluded on this architecture, with the reason.
    excluded: dict[str, str] = field(default_factory=dict)
    #: Operation benchmarked ("spmv", "spmm:<k>", or "spgemm").
    op: str = "spmv"

    @property
    def runnable(self) -> bool:
        """The paper only keeps matrices that run in *all* four formats."""
        return len(self.excluded) == 0

    @property
    def best_format(self) -> str:
        if not self.times:
            raise NoFeasibleFormatError(
                f"no feasible formats for {self.name} "
                f"(op={self.op}: {'; '.join(self.excluded.values())})"
            )
        return min(self.times, key=self.times.__getitem__)

    @property
    def op_label(self) -> str:
        """The compound ``format@op`` training label for this result."""
        return f"{self.best_format}@{self.op}"

    def speedup_over(self, fmt: str) -> float:
        """time(fmt) / time(best): how much picking best beats ``fmt``."""
        return self.times[fmt] / self.times[self.best_format]


class GPUSimulator:
    """Simulated benchmarking of a matrix collection on one architecture.

    Parameters
    ----------
    arch
        Architecture parameter set.
    trials
        Timing repetitions averaged per (matrix, format) — the paper
        uses 100.
    sigma
        Per-trial relative measurement noise.
    seed
        Seed of the measurement-noise stream (labels are deterministic
        given the seed).
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        trials: int = 100,
        sigma: float = DEFAULT_SIGMA,
        seed: int = 0,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.arch = arch
        self.trials = trials
        self.sigma = sigma
        self._seed = seed
        self.model = KernelModel(arch)

    def _rng_for(self, name: str, op: OpSpec) -> np.random.Generator:
        # Name-keyed streams: benchmarking a subset produces the same
        # measurements as benchmarking the full collection.  The SpMV key
        # omits the op suffix so every pre-existing campaign stays
        # byte-identical; other ops get their own independent stream.
        key = f"{self._seed}:{self.arch.name}:{name}"
        if op.kind != "spmv":
            key = f"{key}:{op.canonical}"
        h = np.frombuffer(key.encode(), dtype=np.uint8)
        return np.random.default_rng([self._seed, *h.tolist()])

    def benchmark_stats(
        self, name: str, stats: MatrixStats, op: str | OpSpec = "spmv"
    ) -> BenchmarkResult:
        """Benchmark from precomputed structural statistics.

        With telemetry enabled, every call counts into
        ``gpu.benchmark_calls`` and each format records both the
        *simulated* SpMV time it predicts and the *wall* time the model
        evaluation itself costs — the simulated-vs-wall ratio is the
        simulator's whole reason to exist (Table 8's two-day campaign
        compressed to milliseconds).
        """
        spec = parse_op(op)
        observing = TELEMETRY.enabled
        rng = self._rng_for(name, spec)
        times: dict[str, float] = {}
        excluded: dict[str, str] = {}
        for fmt in MODELED_FORMATS:
            wall0 = time.perf_counter() if observing else 0.0
            try:
                base = self.model.time(fmt, stats, spec)
            except FormatInfeasibleError as exc:
                excluded[fmt] = str(exc)
                if observing:
                    TELEMETRY.inc(f"gpu.excluded.{fmt}")
                continue
            times[fmt] = averaged_measurement(
                base, self.trials, rng, self.sigma
            )
            if observing:
                TELEMETRY.inc(f"gpu.format_calls.{fmt}")
                TELEMETRY.observe(
                    f"gpu.simulated_seconds.{fmt}", self.trials * times[fmt]
                )
                TELEMETRY.observe(
                    f"gpu.wall_seconds.{fmt}", time.perf_counter() - wall0
                )
        TELEMETRY.inc("gpu.benchmark_calls")
        return BenchmarkResult(
            name=name,
            arch=self.arch.name,
            times=times,
            excluded=excluded,
            op=spec.canonical,
        )

    def benchmark(
        self, name: str, matrix: COOMatrix, op: str | OpSpec = "spmv"
    ) -> BenchmarkResult:
        return self.benchmark_stats(name, compute_stats(matrix), op)

    def benchmark_collection(
        self,
        records: list[MatrixRecord],
        stats: list[MatrixStats] | None = None,
        jobs: int = 1,
        op: str | OpSpec = "spmv",
    ) -> list[BenchmarkResult]:
        """Benchmark every record; ``stats`` may be precomputed and shared.

        With ``jobs > 1`` the per-matrix simulations fan out over a
        process pool.  Noise streams are keyed by matrix name (not call
        order), so results are identical for every worker count.
        """
        with TELEMETRY.span(
            "gpu.benchmark_collection",
            arch=self.arch.name,
            n_matrices=len(records),
            jobs=jobs,
        ):
            if stats is None:
                stats = parallel_map(
                    _stats_unit, records, jobs=jobs, label="gpu.stats"
                )
            if len(stats) != len(records):
                raise ValueError("stats and records lengths differ")
            canonical = parse_op(op).canonical
            return parallel_map(
                partial(_benchmark_unit, self, canonical),
                [(rec.name, st) for rec, st in zip(records, stats)],
                jobs=jobs,
                label=f"gpu.benchmark.{self.arch.name}",
            )

    # -- benchmarking-campaign cost model (Table 8) --------------------------

    def campaign_seconds(
        self, results: list[BenchmarkResult], read_seconds: float = MTX_READ_SECONDS
    ) -> float:
        """Estimated wall-clock cost of a real benchmarking campaign.

        §5.4: time = file reading + format conversions + ``trials``
        SpMV repetitions per format.  Conversion costs use Table 8's
        relative constants (multiples of one CSR SpMV).

        Vectorised over the collected times: one flat (result, format)
        pass builds the measurement and conversion-weight arrays, and
        two dot products replace the per-result Python loops.
        """
        kept = [res for res in results if "csr" in res.times]
        if not kept:
            return 0.0
        csr_weights = np.array(
            [
                sum(CONVERSION_COST_RELATIVE[fmt] for fmt in res.times)
                for res in kept
            ],
            dtype=np.float64,
        )
        csr_times = np.array(
            [res.times["csr"] for res in kept], dtype=np.float64
        )
        all_times = np.fromiter(
            (t for res in kept for t in res.times.values()),
            dtype=np.float64,
        )
        return float(
            len(kept) * read_seconds
            + csr_weights @ csr_times
            + self.trials * all_times.sum()
        )


def _stats_unit(record: MatrixRecord) -> MatrixStats:
    """Picklable work unit: structural pass for one record."""
    return compute_stats(record.matrix)


def _benchmark_unit(
    sim: "GPUSimulator", op: str, item: tuple[str, MatrixStats]
) -> BenchmarkResult:
    """Picklable work unit: simulate one (matrix, architecture, op) triple.

    The simulator travels to the worker by pickle (it is a small bag of
    architecture parameters); the name-keyed noise stream makes the
    result independent of which worker runs it.
    """
    name, stats = item
    return sim.benchmark_stats(name, stats, op)


def label_distribution(results: list[BenchmarkResult]) -> dict[str, int]:
    """Best-format counts over runnable matrices (a Table-3 column)."""
    counts = {fmt: 0 for fmt in MODELED_FORMATS}
    for res in results:
        if res.runnable:
            counts[res.best_format] += 1
    return counts


def op_label_distribution(
    results: list[BenchmarkResult],
) -> dict[str, int]:
    """Compound ``format@op`` counts over runnable results (Table 10 rows).

    Keys appear in deterministic (op, format) order so table rows and
    goldens are stable across runs.
    """
    ops = sorted({res.op for res in results})
    counts = {f"{fmt}@{op}": 0 for op in ops for fmt in MODELED_FORMATS}
    for res in results:
        if res.runnable:
            counts[res.op_label] += 1
    return counts
