"""Analytical GPU performance-model simulator.

Substitutes for the paper's benchmarking substrate (CUSP SpMV kernels on
NVIDIA GTX 1080 / V100 / RTX 8000).  The simulator predicts per-format SpMV
time from structural matrix statistics and architecture parameters, adds
measurement noise, and averages over trials — producing the per-matrix
best-format labels that the ML layers learn, with the same qualitative
shape as the paper's Table 3 (CSR-dominated, architecture-dependent
COO/HYB minorities).
"""

from repro.gpu.arch import ARCHITECTURES, GPUArchitecture, PASCAL, TURING, VOLTA
from repro.gpu.kernels import (
    DEFAULT_SPMM_WIDTH,
    InfeasibleFormat,
    KernelModel,
    NoFeasibleFormatError,
    OP_KINDS,
    OpSpec,
    best_format,
    feasible_times,
    parse_op,
    predict_times,
)
from repro.gpu.simulator import BenchmarkResult, GPUSimulator

__all__ = [
    "ARCHITECTURES",
    "BenchmarkResult",
    "DEFAULT_SPMM_WIDTH",
    "GPUArchitecture",
    "GPUSimulator",
    "InfeasibleFormat",
    "KernelModel",
    "NoFeasibleFormatError",
    "OP_KINDS",
    "OpSpec",
    "PASCAL",
    "TURING",
    "VOLTA",
    "best_format",
    "feasible_times",
    "parse_op",
    "predict_times",
]
