"""Measurement-noise model for simulated benchmarks.

Real SpMV timings jitter from clock boosting, contention, and timer
resolution; the paper averages each (matrix, format) pair over 100 trials
to control it.  We model multiplicative lognormal noise per trial, which
keeps times positive and gives near-tie matrices genuinely noisy labels —
the irreducible class confusion real benchmark data has.
"""

from __future__ import annotations

import numpy as np

#: Per-trial relative jitter of a single timing measurement.
DEFAULT_SIGMA = 0.04


def noisy_trials(
    base_time: float,
    trials: int,
    rng: np.random.Generator,
    sigma: float = DEFAULT_SIGMA,
) -> np.ndarray:
    """Simulate ``trials`` timing measurements around ``base_time``."""
    if base_time <= 0:
        raise ValueError(f"base_time must be positive, got {base_time}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    # E[lognormal(mu=-sigma^2/2, sigma)] == 1, so trial means are unbiased.
    factors = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=trials)
    return base_time * factors


def averaged_measurement(
    base_time: float,
    trials: int,
    rng: np.random.Generator,
    sigma: float = DEFAULT_SIGMA,
) -> float:
    """Mean of ``trials`` noisy measurements (the paper's §5.1 protocol)."""
    return float(noisy_trials(base_time, trials, rng, sigma).mean())
