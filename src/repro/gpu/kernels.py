"""Per-format kernel cost models: SpMV, SpMM, and SpGEMM.

Each model predicts the noiseless execution time of one kernel as

    T = launch + max(T_mem, T_exec)

``T_mem`` is memory-traffic time: bytes moved over the *format-specific*
sustained bandwidth.  SpMV is memory-bandwidth-bound (§1), so most label
decisions happen here; the per-format effects are:

- **CSR** (CUSP row-per-thread/warp kernels): coalescing quality depends on
  the mean row length — long rows stream, short scattered rows waste
  sectors.  Additionally, at low occupancy a warp's lanes idle until the
  longest row finishes, and the single longest row becomes a serial
  critical path (the source of the paper's 194.85× CSR worst case).
- **ELL**: slot-major layout gives perfect coalescing (best effective
  bandwidth), but the kernel is charged the full padded volume
  ``nrows × nnz_max`` and is infeasible when CUSP's fill bound rejects the
  conversion or the structure exceeds device memory (§5.1 exclusions).
- **COO**: entry-parallel segmented reduction — immune to row skew, but
  the multi-pass reduction re-streams data by an architecture-dependent
  factor (``coo_pass_factor``; Turing's cheap atomics make it low, which
  reproduces Table 3's 415 COO winners on Turing vs 4 on Volta).
- **HYB**: ELL model on the regular part + COO model on the overflow +
  a two-kernel dispatch overhead.  Wins on moderately-skewed matrices,
  more often on Pascal where the absolute overhead is smaller relative
  to its slow memory system (Table 3: 217 HYB on Pascal vs 3 on Volta).

**Operations beyond SpMV.**  GNN workloads interleave SpMV and SpMM on
the *same* sparse operand (arXiv 2111.00352), and the winning format
flips with the op and the dense-side width ``k``, so selection must be
op-aware.  Three ops are modeled:

- ``spmv`` — the original models above, untouched.
- ``spmm:k`` — sparse @ dense with ``k`` output columns.  The sparse
  structure is read *once* regardless of ``k`` while the dense traffic
  (B-row gathers, C writes) and the lane work scale with ``k``, so
  matrix-traffic-heavy formats (COO's multi-pass reduction re-streams
  ``k``-wide partials) lose ground to the coalesced ones as ``k`` grows.
  **Invariant:** at ``k=1`` every SpMM model degenerates *bit-exactly*
  to its SpMV model (the k-scalings are exact no-ops at 1), enforced by
  the property suite.
- ``spgemm`` — sparse @ sparse (structure-alike operand).  Work is
  driven by the expected intermediate-product count ``nnz · mean_row``:
  row-gather formats (CSR) run Gustavson cheaply, COO pays an
  expand/sort/compress re-streaming penalty, ELL expands *padded* rows
  against padded operand rows.

Infeasibility is typed rather than silent: :func:`predict_times` maps an
infeasible format to an :class:`InfeasibleFormat` marker, and
:func:`best_format` raises :class:`NoFeasibleFormatError` when nothing
runs (reachable for SpMM when the dense operands exceed device capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.stats import MatrixStats
from repro.formats.base import INDEX_BYTES, VALUE_BYTES
from repro.gpu.arch import GPUArchitecture

#: Formats the simulator can time, in the paper's order.
MODELED_FORMATS = ("coo", "csr", "ell", "hyb")

#: Operation kinds the cost layer can time.
OP_KINDS = ("spmv", "spmm", "spgemm")

#: Dense-side width assumed when ``--op spmm`` gives no ``:k`` suffix
#: (a typical GNN hidden dimension).
DEFAULT_SPMM_WIDTH = 32

#: CSR coalescing saturation: rows of at least this many entries stream at
#: full efficiency; shorter rows degrade towards the architecture's
#: ``csr_coalesce_min`` floor.
_CSR_COALESCE_SATURATION = 32

#: Weight of the CSR warp-divergence bandwidth waste: lanes that idle while
#: the warp's longest row finishes still occupy a share of each memory
#: transaction, and tail rows keep whole warps resident, so the waste grows
#: superlinearly with the divergence ratio.
_CSR_DIVERGENCE_WASTE = 0.18

#: ELL/COO sustained-bandwidth multipliers relative to the architecture's
#: base streaming efficiency.
_ELL_COALESCE = 1.0
_COO_COALESCE = 0.95


class FormatInfeasibleError(RuntimeError):
    """The format cannot be run for this matrix on this architecture."""


class NoFeasibleFormatError(ValueError):
    """Every modeled format is infeasible for this (matrix, op, arch).

    Subclasses :class:`ValueError` so call sites that guarded the old
    "empty argmin" ``ValueError`` keep working, while new code can catch
    the typed condition precisely.
    """


@dataclass(frozen=True)
class InfeasibleFormat:
    """Typed per-format infeasibility marker returned by the cost layer.

    :func:`predict_times` used to *silently omit* infeasible formats; now
    every modeled format is present in its result, mapped either to a
    float time or to this marker carrying the reason.
    """

    fmt: str
    op: str
    reason: str

    def __bool__(self) -> bool:  # an infeasible entry is never a "time"
        return False


@dataclass(frozen=True)
class OpSpec:
    """A parsed sparse operation: kind plus dense-side width.

    ``k`` is the dense operand's column count for ``spmm`` and must be 1
    for ``spmv``/``spgemm`` (there is no dense side).
    """

    kind: str
    k: int = 1

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown op kind {self.kind!r}; choose from {OP_KINDS}"
            )
        if self.k < 1:
            raise ValueError(f"dense width k must be >= 1, got {self.k}")
        if self.kind != "spmm" and self.k != 1:
            raise ValueError(f"op {self.kind!r} takes no dense width")

    @property
    def canonical(self) -> str:
        """Stable string form: ``spmv``, ``spmm:<k>``, or ``spgemm``."""
        if self.kind == "spmm":
            return f"spmm:{self.k}"
        return self.kind


def parse_op(spec: "str | OpSpec") -> OpSpec:
    """Parse ``"spmv"`` / ``"spmm"`` / ``"spmm:64"`` / ``"spgemm"``.

    A bare ``"spmm"`` gets :data:`DEFAULT_SPMM_WIDTH`; a :class:`OpSpec`
    passes through unchanged.
    """
    if isinstance(spec, OpSpec):
        return spec
    text = str(spec).strip().lower()
    if ":" in text:
        kind, _, width = text.partition(":")
        if kind != "spmm":
            raise ValueError(f"op {kind!r} takes no :k suffix")
        try:
            k = int(width)
        except ValueError:
            raise ValueError(f"bad dense width {width!r} in {spec!r}") from None
        return OpSpec("spmm", k)
    if text == "spmm":
        return OpSpec("spmm", DEFAULT_SPMM_WIDTH)
    return OpSpec(text)


def _csr_coalesce(mean_row: float, arch: GPUArchitecture) -> float:
    frac = min(1.0, mean_row / _CSR_COALESCE_SATURATION)
    return arch.csr_coalesce_min + (1.0 - arch.csr_coalesce_min) * frac


def _gather_bytes(stats: MatrixStats, arch: GPUArchitecture, nnz: int) -> float:
    """Bytes moved to gather ``x[col]`` for ``nnz`` entries.

    If x fits comfortably in L2, gathers hit cache after the first pass
    (8 B each).  Otherwise each non-local gather costs a 32 B sector;
    locality is approximated by the band fraction.
    """
    x_bytes = stats.ncols * VALUE_BYTES
    if x_bytes <= 0.5 * arch.l2_bytes:
        return nnz * VALUE_BYTES
    miss = 1.0 - stats.band_fraction
    sector_factor = 1.0 + 3.0 * miss  # 8 B hit .. 32 B full sector miss
    return nnz * VALUE_BYTES * sector_factor


def _vector_io_bytes(stats: MatrixStats) -> float:
    """Write of y plus one streaming read of x."""
    return (stats.nrows + stats.ncols) * VALUE_BYTES


def _exec_time(
    slots: float,
    critical_path_entries: float,
    parallel_units: int,
    arch: GPUArchitecture,
) -> float:
    """Lane-occupancy time with a low-occupancy critical-path floor."""
    throughput_time = slots / arch.lane_rate
    occupancy = min(1.0, parallel_units / arch.max_resident_threads)
    latency_floor = (
        critical_path_entries * arch.serial_entry_latency * (1.0 - occupancy)
    )
    return max(throughput_time, latency_floor)


def time_csr(stats: MatrixStats, arch: GPUArchitecture) -> float:
    # Divergence waste: the ratio of occupied lane-slots (including idle
    # lanes waiting on the warp's longest row) to useful entries.
    if stats.nnz:
        divergence = max(1.0, stats.warp_divergence_slots / stats.nnz)
    else:
        divergence = 1.0
    waste = 1.0 + _CSR_DIVERGENCE_WASTE * (divergence - 1.0) ** 2
    bytes_moved = (
        stats.nnz * (INDEX_BYTES + VALUE_BYTES) * waste
        + (stats.nrows + 1) * INDEX_BYTES
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _csr_coalesce(stats.mean_row, arch)
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(stats.warp_divergence_slots),
        critical_path_entries=float(stats.max_row),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_coo(stats: MatrixStats, arch: GPUArchitecture) -> float:
    matrix_bytes = stats.nnz * (2 * INDEX_BYTES + VALUE_BYTES)
    bytes_moved = (
        matrix_bytes * arch.coo_pass_factor
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _COO_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=stats.nnz * arch.coo_lane_cost,
        critical_path_entries=arch.coo_lane_cost,
        parallel_units=stats.nnz,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_ell(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    if check_feasible:
        if not stats.ell_convertible():
            raise FormatInfeasibleError(
                "CUSP ELL conversion rejected (fill bound exceeded)"
            )
        if stats.bytes_ell() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"ELL structure ({stats.bytes_ell()} B) exceeds device "
                f"capacity ({arch.capacity_bytes} B)"
            )
    padded = stats.ell_padded
    bytes_moved = (
        padded * (INDEX_BYTES + VALUE_BYTES)
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _ELL_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(padded),
        critical_path_entries=float(stats.ell_width),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_hyb(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    if check_feasible and stats.bytes_hyb() > arch.capacity_bytes:
        raise FormatInfeasibleError(
            f"HYB structure ({stats.bytes_hyb()} B) exceeds device capacity"
        )
    # ELL part: padded slots at full coalescing.
    ell_bytes = stats.hyb_ell_slots * (INDEX_BYTES + VALUE_BYTES) + _gather_bytes(
        stats, arch, stats.hyb_ell_entries
    )
    t_ell_mem = ell_bytes / (arch.effective_bandwidth * _ELL_COALESCE)
    t_ell = max(
        t_ell_mem,
        _exec_time(
            slots=float(stats.hyb_ell_slots),
            critical_path_entries=float(stats.hyb_width),
            parallel_units=stats.nrows,
            arch=arch,
        ),
    )
    # COO overflow part.
    t_coo = 0.0
    if stats.hyb_coo_entries:
        coo_bytes = (
            stats.hyb_coo_entries
            * (2 * INDEX_BYTES + VALUE_BYTES)
            * arch.coo_pass_factor
            + _gather_bytes(stats, arch, stats.hyb_coo_entries)
        )
        t_coo_mem = coo_bytes / (arch.effective_bandwidth * _COO_COALESCE)
        t_coo = max(
            t_coo_mem,
            _exec_time(
                slots=stats.hyb_coo_entries * arch.coo_lane_cost,
                critical_path_entries=arch.coo_lane_cost,
                parallel_units=stats.hyb_coo_entries,
                arch=arch,
            ),
        )
    t_vec = _vector_io_bytes(stats) / arch.effective_bandwidth
    return (
        arch.launch_overhead + arch.hyb_extra_overhead + t_ell + t_coo + t_vec
    )


# ---------------------------------------------------------------------------
# SpMM: sparse @ dense with k output columns
# ---------------------------------------------------------------------------

#: Bytes each COO extra reduction pass moves per (entry, extra dense
#: column): the k-wide partial sums are written and re-read once.
_COO_SPMM_PARTIAL_BYTES = 2 * VALUE_BYTES


def _dense_gather_bytes(
    stats: MatrixStats, arch: GPUArchitecture, nnz: int, k: int
) -> float:
    """Bytes moved to gather the k-wide rows ``B[col, :]`` for ``nnz`` entries.

    The k=1 case is *bit-exactly* :func:`_gather_bytes` (every k-scaling
    is an exact no-op at 1): that identity is what makes SpMM(k=1)
    degenerate to the SpMV model.  For k > 1 the gathered row is k
    contiguous values, so the 32 B sector-miss surcharge amortises as
    ``3·miss/k``.
    """
    b_bytes = stats.ncols * k * VALUE_BYTES
    if b_bytes <= 0.5 * arch.l2_bytes:
        return nnz * k * VALUE_BYTES
    miss = 1.0 - stats.band_fraction
    sector_factor = 1.0 + 3.0 * miss / k
    return nnz * k * VALUE_BYTES * sector_factor


def _dense_io_bytes(stats: MatrixStats, k: int) -> float:
    """Write of the k-wide C plus one streaming read of the k-wide B."""
    return (stats.nrows + stats.ncols) * k * VALUE_BYTES


def _check_dense_feasible(
    stats: MatrixStats,
    arch: GPUArchitecture,
    k: int,
    structure_bytes: int,
    fmt: str,
) -> None:
    """SpMM needs B and C resident next to the sparse structure.

    This is the one infeasibility that can strike *all four* formats at
    once (wide k on a large matrix), which is why the selection layer
    needs :class:`NoFeasibleFormatError` rather than an empty argmin.
    """
    dense_bytes = (stats.nrows + stats.ncols) * k * VALUE_BYTES
    if structure_bytes + dense_bytes > arch.capacity_bytes:
        raise FormatInfeasibleError(
            f"SpMM dense operands (k={k}, {dense_bytes} B) plus the {fmt} "
            f"structure ({structure_bytes} B) exceed device capacity "
            f"({arch.capacity_bytes} B)"
        )


def time_csr_spmm(
    stats: MatrixStats,
    arch: GPUArchitecture,
    k: int = DEFAULT_SPMM_WIDTH,
    check_feasible: bool = True,
) -> float:
    if check_feasible:
        _check_dense_feasible(stats, arch, k, stats.bytes_csr(), "csr")
    if stats.nnz:
        divergence = max(1.0, stats.warp_divergence_slots / stats.nnz)
    else:
        divergence = 1.0
    waste = 1.0 + _CSR_DIVERGENCE_WASTE * (divergence - 1.0) ** 2
    # The sparse structure is read once regardless of k; only the dense
    # traffic scales.
    bytes_moved = (
        stats.nnz * (INDEX_BYTES + VALUE_BYTES) * waste
        + (stats.nrows + 1) * INDEX_BYTES
        + _dense_gather_bytes(stats, arch, stats.nnz, k)
        + _dense_io_bytes(stats, k)
    )
    bw = arch.effective_bandwidth * _csr_coalesce(stats.mean_row, arch)
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(stats.warp_divergence_slots * k),
        critical_path_entries=float(stats.max_row * k),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_coo_spmm(
    stats: MatrixStats,
    arch: GPUArchitecture,
    k: int = DEFAULT_SPMM_WIDTH,
    check_feasible: bool = True,
) -> float:
    if check_feasible:
        _check_dense_feasible(stats, arch, k, stats.bytes_coo(), "coo")
    matrix_bytes = stats.nnz * (2 * INDEX_BYTES + VALUE_BYTES)
    # The multi-pass segmented reduction re-streams k-wide partial sums:
    # the (k-1) term vanishes exactly at k=1 and makes COO lose ground to
    # the row formats as the dense side widens.
    bytes_moved = (
        matrix_bytes * arch.coo_pass_factor
        + (arch.coo_pass_factor - 1.0)
        * stats.nnz
        * (k - 1)
        * _COO_SPMM_PARTIAL_BYTES
        + _dense_gather_bytes(stats, arch, stats.nnz, k)
        + _dense_io_bytes(stats, k)
    )
    bw = arch.effective_bandwidth * _COO_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=stats.nnz * arch.coo_lane_cost * k,
        critical_path_entries=arch.coo_lane_cost * k,
        parallel_units=stats.nnz,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_ell_spmm(
    stats: MatrixStats,
    arch: GPUArchitecture,
    k: int = DEFAULT_SPMM_WIDTH,
    check_feasible: bool = True,
) -> float:
    if check_feasible:
        if not stats.ell_convertible():
            raise FormatInfeasibleError(
                "CUSP ELL conversion rejected (fill bound exceeded)"
            )
        if stats.bytes_ell() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"ELL structure ({stats.bytes_ell()} B) exceeds device "
                f"capacity ({arch.capacity_bytes} B)"
            )
        _check_dense_feasible(stats, arch, k, stats.bytes_ell(), "ell")
    padded = stats.ell_padded
    bytes_moved = (
        padded * (INDEX_BYTES + VALUE_BYTES)
        + _dense_gather_bytes(stats, arch, stats.nnz, k)
        + _dense_io_bytes(stats, k)
    )
    bw = arch.effective_bandwidth * _ELL_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(padded * k),
        critical_path_entries=float(stats.ell_width * k),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_hyb_spmm(
    stats: MatrixStats,
    arch: GPUArchitecture,
    k: int = DEFAULT_SPMM_WIDTH,
    check_feasible: bool = True,
) -> float:
    if check_feasible:
        if stats.bytes_hyb() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"HYB structure ({stats.bytes_hyb()} B) exceeds device capacity"
            )
        _check_dense_feasible(stats, arch, k, stats.bytes_hyb(), "hyb")
    ell_bytes = stats.hyb_ell_slots * (
        INDEX_BYTES + VALUE_BYTES
    ) + _dense_gather_bytes(stats, arch, stats.hyb_ell_entries, k)
    t_ell_mem = ell_bytes / (arch.effective_bandwidth * _ELL_COALESCE)
    t_ell = max(
        t_ell_mem,
        _exec_time(
            slots=float(stats.hyb_ell_slots * k),
            critical_path_entries=float(stats.hyb_width * k),
            parallel_units=stats.nrows,
            arch=arch,
        ),
    )
    t_coo = 0.0
    if stats.hyb_coo_entries:
        coo_bytes = (
            stats.hyb_coo_entries
            * (2 * INDEX_BYTES + VALUE_BYTES)
            * arch.coo_pass_factor
            + (arch.coo_pass_factor - 1.0)
            * stats.hyb_coo_entries
            * (k - 1)
            * _COO_SPMM_PARTIAL_BYTES
            + _dense_gather_bytes(stats, arch, stats.hyb_coo_entries, k)
        )
        t_coo_mem = coo_bytes / (arch.effective_bandwidth * _COO_COALESCE)
        t_coo = max(
            t_coo_mem,
            _exec_time(
                slots=stats.hyb_coo_entries * arch.coo_lane_cost * k,
                critical_path_entries=arch.coo_lane_cost * k,
                parallel_units=stats.hyb_coo_entries,
                arch=arch,
            ),
        )
    t_vec = _dense_io_bytes(stats, k) / arch.effective_bandwidth
    return (
        arch.launch_overhead + arch.hyb_extra_overhead + t_ell + t_coo + t_vec
    )


# ---------------------------------------------------------------------------
# SpGEMM: sparse @ sparse (structure-alike operand)
# ---------------------------------------------------------------------------

#: Per-intermediate-product lane cost (hash/merge accumulate) relative to
#: a coalesced ELL slot.
_SPGEMM_LANE_COST = {"csr": 2.0, "coo": 3.5, "ell": 1.5, "hyb": 2.2}

#: COO SpGEMM's expand-sort-compress re-streams the intermediate products
#: this many extra times (radix-style passes).
_SPGEMM_SORT_PASSES = 3.0


def _spgemm_workload(stats: MatrixStats) -> tuple[float, float]:
    """(intermediate products, estimated output nnz) for ``A @ B``.

    Each stored entry ``(i, j)`` of A pairs with the operand's row ``j``;
    with a structure-alike operand that row holds ``mean_row`` entries in
    expectation, so the intermediate count is ``nnz · mean_row``.  The
    output can never exceed the dense ``nrows × ncols`` footprint.
    """
    inter = stats.nnz * max(stats.mean_row, 1.0)
    c_nnz = min(inter, float(stats.nrows) * max(stats.ncols, 1))
    return inter, c_nnz


def _check_spgemm_feasible(
    stats: MatrixStats,
    arch: GPUArchitecture,
    structure_bytes: int,
    fmt: str,
) -> None:
    """Both sparse operands plus the estimated output must be resident."""
    _, c_nnz = _spgemm_workload(stats)
    out_bytes = c_nnz * (INDEX_BYTES + VALUE_BYTES)
    if 2 * structure_bytes + out_bytes > arch.capacity_bytes:
        raise FormatInfeasibleError(
            f"SpGEMM operands (2 x {structure_bytes} B {fmt}) plus output "
            f"estimate ({out_bytes:.0f} B) exceed device capacity "
            f"({arch.capacity_bytes} B)"
        )


def time_csr_spgemm(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    """Row-wise Gustavson: stream A, gather operand rows, accumulate C."""
    if check_feasible:
        _check_spgemm_feasible(stats, arch, stats.bytes_csr(), "csr")
    inter, c_nnz = _spgemm_workload(stats)
    bytes_moved = (
        stats.bytes_csr()
        + inter * (INDEX_BYTES + VALUE_BYTES)
        + c_nnz * (INDEX_BYTES + VALUE_BYTES)
    )
    bw = arch.effective_bandwidth * _csr_coalesce(stats.mean_row, arch)
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=inter * _SPGEMM_LANE_COST["csr"],
        critical_path_entries=float(stats.max_row) * max(stats.mean_row, 1.0),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_coo_spgemm(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    """Expand / sort / compress: re-streams every intermediate product."""
    if check_feasible:
        _check_spgemm_feasible(stats, arch, stats.bytes_coo(), "coo")
    inter, c_nnz = _spgemm_workload(stats)
    record = 2 * INDEX_BYTES + VALUE_BYTES
    bytes_moved = (
        stats.bytes_coo()
        + inter * record * (1.0 + _SPGEMM_SORT_PASSES)
        + c_nnz * record
    )
    bw = arch.effective_bandwidth * _COO_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=inter * _SPGEMM_LANE_COST["coo"],
        critical_path_entries=_SPGEMM_LANE_COST["coo"],
        parallel_units=max(stats.nnz, 1),
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_ell_spgemm(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    """Padded expansion: every padded slot walks a *padded* operand row."""
    if check_feasible:
        if not stats.ell_convertible():
            raise FormatInfeasibleError(
                "CUSP ELL conversion rejected (fill bound exceeded)"
            )
        if stats.bytes_ell() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"ELL structure ({stats.bytes_ell()} B) exceeds device "
                f"capacity ({arch.capacity_bytes} B)"
            )
        _check_spgemm_feasible(stats, arch, stats.bytes_ell(), "ell")
    _, c_nnz = _spgemm_workload(stats)
    padded_inter = float(stats.ell_padded) * max(stats.ell_width, 1)
    bytes_moved = (
        stats.bytes_ell()
        + padded_inter * (INDEX_BYTES + VALUE_BYTES)
        + c_nnz * (INDEX_BYTES + VALUE_BYTES)
    )
    bw = arch.effective_bandwidth * _ELL_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=padded_inter * _SPGEMM_LANE_COST["ell"],
        critical_path_entries=float(stats.ell_width) * max(stats.ell_width, 1),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_hyb_spgemm(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    """ELL-part Gustavson on the regular rows + COO expansion overflow."""
    if check_feasible:
        if stats.bytes_hyb() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"HYB structure ({stats.bytes_hyb()} B) exceeds device capacity"
            )
        _check_spgemm_feasible(stats, arch, stats.bytes_hyb(), "hyb")
    mean = max(stats.mean_row, 1.0)
    record = 2 * INDEX_BYTES + VALUE_BYTES
    inter_ell = float(stats.hyb_ell_slots) * max(stats.hyb_width, 1)
    inter_coo = stats.hyb_coo_entries * mean
    ell_bytes = stats.hyb_ell_slots * (
        INDEX_BYTES + VALUE_BYTES
    ) + inter_ell * (INDEX_BYTES + VALUE_BYTES)
    t_ell = max(
        ell_bytes / (arch.effective_bandwidth * _ELL_COALESCE),
        _exec_time(
            slots=inter_ell * _SPGEMM_LANE_COST["hyb"],
            critical_path_entries=float(stats.hyb_width)
            * max(stats.hyb_width, 1),
            parallel_units=stats.nrows,
            arch=arch,
        ),
    )
    t_coo = 0.0
    if stats.hyb_coo_entries:
        coo_bytes = (
            stats.hyb_coo_entries * record
            + inter_coo * record * (1.0 + _SPGEMM_SORT_PASSES)
        )
        t_coo = max(
            coo_bytes / (arch.effective_bandwidth * _COO_COALESCE),
            _exec_time(
                slots=inter_coo * _SPGEMM_LANE_COST["coo"],
                critical_path_entries=_SPGEMM_LANE_COST["coo"],
                parallel_units=stats.hyb_coo_entries,
                arch=arch,
            ),
        )
    _, c_nnz = _spgemm_workload(stats)
    t_out = (
        c_nnz * (INDEX_BYTES + VALUE_BYTES) / arch.effective_bandwidth
    )
    return (
        arch.launch_overhead + arch.hyb_extra_overhead + t_ell + t_coo + t_out
    )


_KERNELS = {
    "csr": time_csr,
    "coo": time_coo,
    "ell": time_ell,
    "hyb": time_hyb,
}

_SPMM_KERNELS = {
    "csr": time_csr_spmm,
    "coo": time_coo_spmm,
    "ell": time_ell_spmm,
    "hyb": time_hyb_spmm,
}

_SPGEMM_KERNELS = {
    "csr": time_csr_spgemm,
    "coo": time_coo_spgemm,
    "ell": time_ell_spgemm,
    "hyb": time_hyb_spgemm,
}


@dataclass(frozen=True)
class KernelModel:
    """Callable bundle: noiseless per-format kernel time for one architecture.

    ``op`` defaults to ``"spmv"`` everywhere, so pre-existing call sites
    are untouched and byte-identical.
    """

    arch: GPUArchitecture

    def time(
        self, fmt: str, stats: MatrixStats, op: "str | OpSpec" = "spmv"
    ) -> float:
        """Noiseless kernel time in seconds; raises if infeasible."""
        spec = parse_op(op)
        if spec.kind == "spmv":
            return _KERNELS[fmt](stats, self.arch)
        if spec.kind == "spmm":
            return _SPMM_KERNELS[fmt](stats, self.arch, spec.k)
        return _SPGEMM_KERNELS[fmt](stats, self.arch)

    def feasible(
        self, fmt: str, stats: MatrixStats, op: "str | OpSpec" = "spmv"
    ) -> bool:
        try:
            self.time(fmt, stats, op)
            return True
        except FormatInfeasibleError:
            return False


def predict_times(
    stats: MatrixStats, arch: GPUArchitecture, op: "str | OpSpec" = "spmv"
) -> "dict[str, float | InfeasibleFormat]":
    """Noiseless time per format; infeasible formats map to a typed marker.

    Every modeled format appears in the result: feasible ones as float
    seconds, infeasible ones as :class:`InfeasibleFormat` (the old
    contract silently omitted them, which made "excluded" and "forgot to
    model" indistinguishable).  Use :func:`feasible_times` for the float
    subset and :func:`best_format` for a typed argmin.
    """
    spec = parse_op(op)
    model = KernelModel(arch)
    out: "dict[str, float | InfeasibleFormat]" = {}
    for fmt in MODELED_FORMATS:
        try:
            out[fmt] = model.time(fmt, stats, spec)
        except FormatInfeasibleError as exc:
            out[fmt] = InfeasibleFormat(
                fmt=fmt, op=spec.canonical, reason=str(exc)
            )
    return out


def feasible_times(
    times: "dict[str, float | InfeasibleFormat]",
) -> dict[str, float]:
    """The float-valued (feasible) subset of a :func:`predict_times` result."""
    return {
        fmt: t for fmt, t in times.items()
        if not isinstance(t, InfeasibleFormat)
    }


def best_format(times: "dict[str, float | InfeasibleFormat]") -> str:
    """Fastest feasible format of a :func:`predict_times` result.

    Raises :class:`NoFeasibleFormatError` — never an empty ``min()`` —
    when every format carries an :class:`InfeasibleFormat` marker.
    """
    runnable = feasible_times(times)
    if not runnable:
        reasons = "; ".join(
            f"{fmt}: {t.reason}"
            for fmt, t in times.items()
            if isinstance(t, InfeasibleFormat)
        )
        raise NoFeasibleFormatError(
            f"no feasible format for this matrix ({reasons})"
        )
    return min(runnable, key=runnable.__getitem__)
