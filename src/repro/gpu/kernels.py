"""Per-format SpMV kernel cost models.

Each model predicts the noiseless execution time of one SpMV as

    T = launch + max(T_mem, T_exec)

``T_mem`` is memory-traffic time: bytes moved over the *format-specific*
sustained bandwidth.  SpMV is memory-bandwidth-bound (§1), so most label
decisions happen here; the per-format effects are:

- **CSR** (CUSP row-per-thread/warp kernels): coalescing quality depends on
  the mean row length — long rows stream, short scattered rows waste
  sectors.  Additionally, at low occupancy a warp's lanes idle until the
  longest row finishes, and the single longest row becomes a serial
  critical path (the source of the paper's 194.85× CSR worst case).
- **ELL**: slot-major layout gives perfect coalescing (best effective
  bandwidth), but the kernel is charged the full padded volume
  ``nrows × nnz_max`` and is infeasible when CUSP's fill bound rejects the
  conversion or the structure exceeds device memory (§5.1 exclusions).
- **COO**: entry-parallel segmented reduction — immune to row skew, but
  the multi-pass reduction re-streams data by an architecture-dependent
  factor (``coo_pass_factor``; Turing's cheap atomics make it low, which
  reproduces Table 3's 415 COO winners on Turing vs 4 on Volta).
- **HYB**: ELL model on the regular part + COO model on the overflow +
  a two-kernel dispatch overhead.  Wins on moderately-skewed matrices,
  more often on Pascal where the absolute overhead is smaller relative
  to its slow memory system (Table 3: 217 HYB on Pascal vs 3 on Volta).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.stats import MatrixStats
from repro.formats.base import INDEX_BYTES, VALUE_BYTES
from repro.gpu.arch import GPUArchitecture

#: Formats the simulator can time, in the paper's order.
MODELED_FORMATS = ("coo", "csr", "ell", "hyb")

#: CSR coalescing saturation: rows of at least this many entries stream at
#: full efficiency; shorter rows degrade towards the architecture's
#: ``csr_coalesce_min`` floor.
_CSR_COALESCE_SATURATION = 32

#: Weight of the CSR warp-divergence bandwidth waste: lanes that idle while
#: the warp's longest row finishes still occupy a share of each memory
#: transaction, and tail rows keep whole warps resident, so the waste grows
#: superlinearly with the divergence ratio.
_CSR_DIVERGENCE_WASTE = 0.18

#: ELL/COO sustained-bandwidth multipliers relative to the architecture's
#: base streaming efficiency.
_ELL_COALESCE = 1.0
_COO_COALESCE = 0.95


class FormatInfeasibleError(RuntimeError):
    """The format cannot be run for this matrix on this architecture."""


def _csr_coalesce(mean_row: float, arch: GPUArchitecture) -> float:
    frac = min(1.0, mean_row / _CSR_COALESCE_SATURATION)
    return arch.csr_coalesce_min + (1.0 - arch.csr_coalesce_min) * frac


def _gather_bytes(stats: MatrixStats, arch: GPUArchitecture, nnz: int) -> float:
    """Bytes moved to gather ``x[col]`` for ``nnz`` entries.

    If x fits comfortably in L2, gathers hit cache after the first pass
    (8 B each).  Otherwise each non-local gather costs a 32 B sector;
    locality is approximated by the band fraction.
    """
    x_bytes = stats.ncols * VALUE_BYTES
    if x_bytes <= 0.5 * arch.l2_bytes:
        return nnz * VALUE_BYTES
    miss = 1.0 - stats.band_fraction
    sector_factor = 1.0 + 3.0 * miss  # 8 B hit .. 32 B full sector miss
    return nnz * VALUE_BYTES * sector_factor


def _vector_io_bytes(stats: MatrixStats) -> float:
    """Write of y plus one streaming read of x."""
    return (stats.nrows + stats.ncols) * VALUE_BYTES


def _exec_time(
    slots: float,
    critical_path_entries: float,
    parallel_units: int,
    arch: GPUArchitecture,
) -> float:
    """Lane-occupancy time with a low-occupancy critical-path floor."""
    throughput_time = slots / arch.lane_rate
    occupancy = min(1.0, parallel_units / arch.max_resident_threads)
    latency_floor = (
        critical_path_entries * arch.serial_entry_latency * (1.0 - occupancy)
    )
    return max(throughput_time, latency_floor)


def time_csr(stats: MatrixStats, arch: GPUArchitecture) -> float:
    # Divergence waste: the ratio of occupied lane-slots (including idle
    # lanes waiting on the warp's longest row) to useful entries.
    if stats.nnz:
        divergence = max(1.0, stats.warp_divergence_slots / stats.nnz)
    else:
        divergence = 1.0
    waste = 1.0 + _CSR_DIVERGENCE_WASTE * (divergence - 1.0) ** 2
    bytes_moved = (
        stats.nnz * (INDEX_BYTES + VALUE_BYTES) * waste
        + (stats.nrows + 1) * INDEX_BYTES
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _csr_coalesce(stats.mean_row, arch)
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(stats.warp_divergence_slots),
        critical_path_entries=float(stats.max_row),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_coo(stats: MatrixStats, arch: GPUArchitecture) -> float:
    matrix_bytes = stats.nnz * (2 * INDEX_BYTES + VALUE_BYTES)
    bytes_moved = (
        matrix_bytes * arch.coo_pass_factor
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _COO_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=stats.nnz * arch.coo_lane_cost,
        critical_path_entries=arch.coo_lane_cost,
        parallel_units=stats.nnz,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_ell(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    if check_feasible:
        if not stats.ell_convertible():
            raise FormatInfeasibleError(
                "CUSP ELL conversion rejected (fill bound exceeded)"
            )
        if stats.bytes_ell() > arch.capacity_bytes:
            raise FormatInfeasibleError(
                f"ELL structure ({stats.bytes_ell()} B) exceeds device "
                f"capacity ({arch.capacity_bytes} B)"
            )
    padded = stats.ell_padded
    bytes_moved = (
        padded * (INDEX_BYTES + VALUE_BYTES)
        + _gather_bytes(stats, arch, stats.nnz)
        + _vector_io_bytes(stats)
    )
    bw = arch.effective_bandwidth * _ELL_COALESCE
    t_mem = bytes_moved / bw
    t_exec = _exec_time(
        slots=float(padded),
        critical_path_entries=float(stats.ell_width),
        parallel_units=stats.nrows,
        arch=arch,
    )
    return arch.launch_overhead + max(t_mem, t_exec)


def time_hyb(
    stats: MatrixStats, arch: GPUArchitecture, check_feasible: bool = True
) -> float:
    if check_feasible and stats.bytes_hyb() > arch.capacity_bytes:
        raise FormatInfeasibleError(
            f"HYB structure ({stats.bytes_hyb()} B) exceeds device capacity"
        )
    # ELL part: padded slots at full coalescing.
    ell_bytes = stats.hyb_ell_slots * (INDEX_BYTES + VALUE_BYTES) + _gather_bytes(
        stats, arch, stats.hyb_ell_entries
    )
    t_ell_mem = ell_bytes / (arch.effective_bandwidth * _ELL_COALESCE)
    t_ell = max(
        t_ell_mem,
        _exec_time(
            slots=float(stats.hyb_ell_slots),
            critical_path_entries=float(stats.hyb_width),
            parallel_units=stats.nrows,
            arch=arch,
        ),
    )
    # COO overflow part.
    t_coo = 0.0
    if stats.hyb_coo_entries:
        coo_bytes = (
            stats.hyb_coo_entries
            * (2 * INDEX_BYTES + VALUE_BYTES)
            * arch.coo_pass_factor
            + _gather_bytes(stats, arch, stats.hyb_coo_entries)
        )
        t_coo_mem = coo_bytes / (arch.effective_bandwidth * _COO_COALESCE)
        t_coo = max(
            t_coo_mem,
            _exec_time(
                slots=stats.hyb_coo_entries * arch.coo_lane_cost,
                critical_path_entries=arch.coo_lane_cost,
                parallel_units=stats.hyb_coo_entries,
                arch=arch,
            ),
        )
    t_vec = _vector_io_bytes(stats) / arch.effective_bandwidth
    return (
        arch.launch_overhead + arch.hyb_extra_overhead + t_ell + t_coo + t_vec
    )


_KERNELS = {
    "csr": time_csr,
    "coo": time_coo,
    "ell": time_ell,
    "hyb": time_hyb,
}


@dataclass(frozen=True)
class KernelModel:
    """Callable bundle: noiseless per-format SpMV time for one architecture."""

    arch: GPUArchitecture

    def time(self, fmt: str, stats: MatrixStats) -> float:
        """Noiseless SpMV time in seconds; raises if infeasible."""
        return _KERNELS[fmt](stats, self.arch)

    def feasible(self, fmt: str, stats: MatrixStats) -> bool:
        try:
            self.time(fmt, stats)
            return True
        except FormatInfeasibleError:
            return False


def predict_times(
    stats: MatrixStats, arch: GPUArchitecture
) -> dict[str, float]:
    """Noiseless time per feasible format; infeasible formats are omitted."""
    model = KernelModel(arch)
    out: dict[str, float] = {}
    for fmt in MODELED_FORMATS:
        try:
            out[fmt] = model.time(fmt, stats)
        except FormatInfeasibleError:
            pass
    return out
