"""Structural families of synthetic sparse matrices.

Each generator returns a :class:`~repro.formats.coo.COOMatrix` built from a
seeded :class:`numpy.random.Generator`, so collections are reproducible.
The families map onto the SuiteSparse structure spectrum:

===================  =====================================================
Family               SuiteSparse analogue / format affinity
===================  =====================================================
banded               FD/FEM discretisations — DIA/ELL friendly
stencil_2d/3d        structured grids — uniform rows, ELL friendly
multi_diagonal       pure banded operators — DIA/ELL
random_uniform       Erdős–Rényi — Poisson rows, CSR territory
power_law_rows       web/social graphs — heavy skew, HYB/COO territory
rmat                 Graph500 R-MAT — skew + locality structure
block_diagonal       multibody/circuit — uniform blocks
arrow                bordered systems — one catastrophic row for ELL
row_blocks           mixed-physics stacks — few distinct row lengths
rectangular          least-squares / LP constraint matrices
small_world          Watts–Strogatz ring lattices — near-banded
scale_free_graph     Barabási–Albert adjacency — power-law degrees
===================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.formats.coo import COOMatrix


@dataclass(frozen=True)
class MatrixRecord:
    """A generated matrix plus its provenance metadata."""

    name: str
    family: str
    matrix: COOMatrix
    params: dict = field(default_factory=dict)

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Nonzero values: unit-scale, bounded away from zero."""
    v = rng.standard_normal(n)
    return np.where(np.abs(v) < 1e-3, 1e-3, v)


def _dedup_coo(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    rng: np.random.Generator,
) -> COOMatrix:
    """Assemble a COO matrix, letting the constructor collapse duplicates."""
    return COOMatrix(shape, rows, cols, _values(rng, len(rows)))


# ---------------------------------------------------------------------------
# Regular / banded families
# ---------------------------------------------------------------------------


def banded(
    rng: np.random.Generator,
    n: int = 1024,
    bandwidth: int = 5,
    density: float = 1.0,
) -> COOMatrix:
    """Entries within ``|col - row| <= bandwidth``, each kept with ``density``."""
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_list, cols_list = [], []
    for off in offsets:
        i_lo, i_hi = max(0, -off), min(n, n - off)
        idx = np.arange(i_lo, i_hi, dtype=INDEX_DTYPE)
        if density < 1.0:
            idx = idx[rng.random(idx.shape[0]) < density]
        rows_list.append(idx)
        cols_list.append(idx + off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((n, n), rows, cols, rng)


def multi_diagonal(
    rng: np.random.Generator,
    n: int = 2048,
    ndiags: int = 7,
    max_offset: int | None = None,
) -> COOMatrix:
    """``ndiags`` fully-populated diagonals at random distinct offsets."""
    if max_offset is None:
        max_offset = max(n // 4, ndiags)
    pool = np.arange(-max_offset, max_offset + 1)
    offsets = rng.choice(pool, size=min(ndiags, pool.size), replace=False)
    if 0 not in offsets:  # keep the main diagonal: realistic operators have it
        offsets[0] = 0
    rows_list, cols_list = [], []
    for off in np.unique(offsets):
        i_lo, i_hi = max(0, -off), min(n, n - off)
        idx = np.arange(i_lo, i_hi, dtype=INDEX_DTYPE)
        rows_list.append(idx)
        cols_list.append(idx + off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((n, n), rows, cols, rng)


def stencil_2d(
    rng: np.random.Generator, nx: int = 48, ny: int = 48, points: int = 5
) -> COOMatrix:
    """5- or 9-point finite-difference stencil on an ``nx × ny`` grid."""
    if points == 5:
        offs = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    elif points == 9:
        offs = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1)]
    else:
        raise ValueError(f"unsupported 2-D stencil: {points}-point")
    n = nx * ny
    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    ii, jj = ii.ravel(), jj.ravel()
    rows_list, cols_list = [], []
    for di, dj in offs:
        ni, nj = ii + di, jj + dj
        ok = (ni >= 0) & (ni < nx) & (nj >= 0) & (nj < ny)
        rows_list.append((ii[ok] * ny + jj[ok]).astype(INDEX_DTYPE))
        cols_list.append((ni[ok] * ny + nj[ok]).astype(INDEX_DTYPE))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((n, n), rows, cols, rng)


def stencil_3d(
    rng: np.random.Generator, n1: int = 14, points: int = 7
) -> COOMatrix:
    """7- or 27-point stencil on an ``n1³`` grid."""
    if points == 7:
        offs = [
            (0, 0, 0),
            (-1, 0, 0),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ]
    elif points == 27:
        offs = [
            (a, b, c)
            for a in (-1, 0, 1)
            for b in (-1, 0, 1)
            for c in (-1, 0, 1)
        ]
    else:
        raise ValueError(f"unsupported 3-D stencil: {points}-point")
    n = n1**3
    grid = np.arange(n1)
    ii, jj, kk = np.meshgrid(grid, grid, grid, indexing="ij")
    ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()
    rows_list, cols_list = [], []
    for da, db, dc in offs:
        na, nb, nc = ii + da, jj + db, kk + dc
        ok = (
            (na >= 0)
            & (na < n1)
            & (nb >= 0)
            & (nb < n1)
            & (nc >= 0)
            & (nc < n1)
        )
        rows_list.append(
            ((ii[ok] * n1 + jj[ok]) * n1 + kk[ok]).astype(INDEX_DTYPE)
        )
        cols_list.append(
            ((na[ok] * n1 + nb[ok]) * n1 + nc[ok]).astype(INDEX_DTYPE)
        )
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((n, n), rows, cols, rng)


# ---------------------------------------------------------------------------
# Random / skewed families
# ---------------------------------------------------------------------------


def random_uniform(
    rng: np.random.Generator,
    nrows: int = 2048,
    ncols: int | None = None,
    density: float = 0.002,
) -> COOMatrix:
    """Erdős–Rényi: each entry present independently with ``density``."""
    if ncols is None:
        ncols = nrows
    target = max(1, int(round(density * nrows * ncols)))
    # Oversample to survive duplicate collapse, then trim.
    k = int(target * 1.15) + 8
    rows = rng.integers(0, nrows, size=k, dtype=INDEX_DTYPE)
    cols = rng.integers(0, ncols, size=k, dtype=INDEX_DTYPE)
    return _dedup_coo((nrows, ncols), rows[:k], cols[:k], rng)


def power_law_rows(
    rng: np.random.Generator,
    nrows: int = 2048,
    ncols: int | None = None,
    avg_nnz_per_row: float = 8.0,
    alpha: float = 1.8,
    max_over_mean: float | None = None,
) -> COOMatrix:
    """Row lengths follow a Zipf-like power law — the ELL worst case.

    ``max_over_mean`` bounds the skew (``nnz_max / nnz_mu``); values below
    CUSP's fill bound of 3 keep the matrix ELL-convertible, larger or
    unbounded values mimic the matrices the paper excludes because the ELL
    variant cannot be generated.
    """
    if ncols is None:
        ncols = nrows
    raw = rng.zipf(alpha, size=nrows).astype(np.float64)
    raw = np.minimum(raw, ncols)
    if max_over_mean is not None:
        # Clip to a fixed point: clipping lowers the mean, which can
        # re-violate the ratio for heavy tails (alpha < 2), so iterate.
        for _ in range(64):
            bound = max(1.0, max_over_mean * raw.mean())
            if raw.max() <= bound + 1e-9:
                break
            raw = np.minimum(raw, bound)
    lengths = np.maximum(
        1, np.round(raw * avg_nnz_per_row / max(raw.mean(), 1.0)).astype(int)
    )
    lengths = np.minimum(lengths, ncols)
    rows = np.repeat(
        np.arange(nrows, dtype=INDEX_DTYPE), lengths
    )
    cols = rng.integers(0, ncols, size=rows.shape[0], dtype=INDEX_DTYPE)
    return _dedup_coo((nrows, ncols), rows, cols, rng)


def rmat(
    rng: np.random.Generator,
    scale: int = 11,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> COOMatrix:
    """Graph500-style recursive Kronecker (R-MAT) adjacency matrix."""
    n = 1 << scale
    nedges = edge_factor * n
    rows = np.zeros(nedges, dtype=INDEX_DTYPE)
    cols = np.zeros(nedges, dtype=INDEX_DTYPE)
    for level in range(scale):
        r = rng.random(nedges)
        # Quadrant probabilities: a (TL), b (TR), c (BL), d (BR).
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        bit = 1 << (scale - 1 - level)
        rows += down * bit
        cols += right * bit
    return _dedup_coo((n, n), rows, cols, rng)


def scale_free_graph(
    rng: np.random.Generator, n: int = 2048, m_attach: int = 4
) -> COOMatrix:
    """Barabási–Albert preferential attachment adjacency (symmetrised).

    Implemented directly (repeated-endpoint sampling) so the dataset layer
    does not depend on networkx; networkx remains a dev-convenience for the
    examples.
    """
    targets = list(range(m_attach))
    repeated: list[int] = []
    src_list: list[int] = []
    dst_list: list[int] = []
    for v in range(m_attach, n):
        if repeated:
            pool = np.asarray(repeated)
            chosen = rng.choice(pool, size=m_attach, replace=True)
        else:
            chosen = np.asarray(targets[:m_attach])
        chosen = np.unique(chosen)
        for t in chosen:
            src_list.append(v)
            dst_list.append(int(t))
        repeated.extend(int(t) for t in chosen)
        repeated.extend([v] * len(chosen))
    src = np.asarray(src_list, dtype=INDEX_DTYPE)
    dst = np.asarray(dst_list, dtype=INDEX_DTYPE)
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    return _dedup_coo((n, n), rows, cols, rng)


def small_world(
    rng: np.random.Generator, n: int = 2048, k: int = 6, p_rewire: float = 0.05
) -> COOMatrix:
    """Watts–Strogatz ring lattice with random rewiring (near-banded)."""
    half = max(1, k // 2)
    src_list, dst_list = [], []
    base = np.arange(n, dtype=INDEX_DTYPE)
    for d in range(1, half + 1):
        dst = (base + d) % n
        rewire = rng.random(n) < p_rewire
        dst = np.where(rewire, rng.integers(0, n, size=n), dst)
        keep = dst != base
        src_list.append(base[keep])
        dst_list.append(dst[keep].astype(INDEX_DTYPE))
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    return _dedup_coo((n, n), rows, cols, rng)


# ---------------------------------------------------------------------------
# Structured composites
# ---------------------------------------------------------------------------


def block_diagonal(
    rng: np.random.Generator,
    nblocks: int = 32,
    block_size: int = 48,
    density: float = 0.4,
) -> COOMatrix:
    """Dense-ish square blocks along the diagonal (uniform row lengths)."""
    n = nblocks * block_size
    per_block = max(1, int(density * block_size * block_size))
    rows_list, cols_list = [], []
    for blk in range(nblocks):
        base = blk * block_size
        r = rng.integers(0, block_size, size=per_block) + base
        c = rng.integers(0, block_size, size=per_block) + base
        rows_list.append(r.astype(INDEX_DTYPE))
        cols_list.append(c.astype(INDEX_DTYPE))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((n, n), rows, cols, rng)


def arrow(
    rng: np.random.Generator,
    n: int = 2048,
    band: int = 2,
    arm_density: float = 1.0,
) -> COOMatrix:
    """Arrowhead: banded core plus a dense first row and column.

    One huge row makes ``nnz_max ≈ n`` while ``nnz_mu`` stays tiny — the
    canonical matrix where ELL explodes and HYB shines.
    """
    core = banded(rng, n=n, bandwidth=band, density=1.0)
    arm = np.arange(1, n, dtype=INDEX_DTYPE)
    if arm_density < 1.0:
        arm = arm[rng.random(arm.shape[0]) < arm_density]
    rows = np.concatenate([core.rows, np.zeros_like(arm), arm])
    cols = np.concatenate([core.cols, arm, np.zeros_like(arm)])
    return _dedup_coo((n, n), rows, cols, rng)


def row_blocks(
    rng: np.random.Generator,
    nrows: int = 2048,
    ncols: int | None = None,
    lengths: tuple[int, ...] = (2, 8, 32),
) -> COOMatrix:
    """Contiguous row groups with distinct fixed lengths (mixed physics)."""
    if ncols is None:
        ncols = nrows
    ngroups = len(lengths)
    bounds = np.linspace(0, nrows, ngroups + 1).astype(int)
    rows_list, cols_list = [], []
    for g, length in enumerate(lengths):
        length = min(length, ncols)
        group_rows = np.arange(bounds[g], bounds[g + 1], dtype=INDEX_DTYPE)
        rows_list.append(np.repeat(group_rows, length))
        cols_list.append(
            rng.integers(
                0, ncols, size=group_rows.shape[0] * length, dtype=INDEX_DTYPE
            )
        )
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _dedup_coo((nrows, ncols), rows, cols, rng)


def rectangular(
    rng: np.random.Generator,
    nrows: int = 3072,
    ncols: int = 512,
    nnz_per_row: int = 6,
) -> COOMatrix:
    """Tall-skinny constraint-style matrix with near-uniform rows."""
    lengths = np.maximum(
        1, rng.poisson(nnz_per_row, size=nrows)
    )
    lengths = np.minimum(lengths, ncols)
    rows = np.repeat(np.arange(nrows, dtype=INDEX_DTYPE), lengths)
    cols = rng.integers(0, ncols, size=rows.shape[0], dtype=INDEX_DTYPE)
    return _dedup_coo((nrows, ncols), rows, cols, rng)


# ---------------------------------------------------------------------------
# DLMC-style pruned-weight families (deep-learning matrix collection)
# ---------------------------------------------------------------------------
#
# Sparse weight matrices left behind by neural-network pruning: a dense
# ``nrows x ncols`` weight tensor with a fraction ``sparsity`` of entries
# removed.  The three pruning regimes below produce structurally distinct
# survivors — magnitude pruning keeps the heavy tail of a Gaussian,
# random pruning is an unstructured Bernoulli mask, and block pruning
# keeps whole ``b x b`` tiles — which is exactly the structural variation
# the SpMM format-selection workload needs.


def magnitude_pruned(
    rng: np.random.Generator,
    nrows: int = 1024,
    ncols: int = 1024,
    sparsity: float = 0.9,
) -> COOMatrix:
    """Keep the largest-|w| entries of a dense Gaussian weight matrix.

    Magnitude pruning removes the smallest weights globally; survivors are
    i.i.d. positioned (the Gaussian has no spatial structure) but their
    *values* are the distribution's tails, and per-row populations vary
    binomially around ``(1 - sparsity) * ncols``.
    """
    if not 0.0 < sparsity < 1.0:
        raise ValueError("sparsity must be in (0, 1)")
    weights = rng.standard_normal((nrows, ncols))
    keep = max(1, int(round(nrows * ncols * (1.0 - sparsity))))
    flat = np.abs(weights).ravel()
    # Global magnitude threshold: exactly `keep` survivors (ties broken by
    # argpartition order, deterministic for a fixed rng draw).
    kept_idx = np.argpartition(flat, -keep)[-keep:]
    rows = (kept_idx // ncols).astype(INDEX_DTYPE)
    cols = (kept_idx % ncols).astype(INDEX_DTYPE)
    values = weights.ravel()[kept_idx]
    return COOMatrix((nrows, ncols), rows, cols, values)


def random_pruned(
    rng: np.random.Generator,
    nrows: int = 1024,
    ncols: int = 1024,
    sparsity: float = 0.9,
) -> COOMatrix:
    """Unstructured Bernoulli pruning: each weight survives i.i.d."""
    if not 0.0 < sparsity < 1.0:
        raise ValueError("sparsity must be in (0, 1)")
    mask = rng.random((nrows, ncols)) >= sparsity
    if not mask.any():
        mask[0, 0] = True
    rows, cols = np.nonzero(mask)
    rows = rows.astype(INDEX_DTYPE)
    cols = cols.astype(INDEX_DTYPE)
    return COOMatrix((nrows, ncols), rows, cols, _values(rng, rows.shape[0]))


def block_pruned(
    rng: np.random.Generator,
    nrows: int = 1024,
    ncols: int = 1024,
    sparsity: float = 0.9,
    block: int = 4,
) -> COOMatrix:
    """Structured pruning: whole ``block x block`` tiles survive or die.

    Dimensions are rounded up to a multiple of ``block`` so every
    surviving tile is complete — the property the metamorphic test
    checks.  Survivor tiles are drawn i.i.d. with probability
    ``1 - sparsity``; at least one tile always survives.
    """
    if not 0.0 < sparsity < 1.0:
        raise ValueError("sparsity must be in (0, 1)")
    if block < 1:
        raise ValueError("block must be >= 1")
    brows = -(-nrows // block)
    bcols = -(-ncols // block)
    nrows, ncols = brows * block, bcols * block
    tile_mask = rng.random((brows, bcols)) >= sparsity
    if not tile_mask.any():
        tile_mask[0, 0] = True
    trow, tcol = np.nonzero(tile_mask)
    # Expand each surviving tile into its block x block entries.
    within = np.arange(block, dtype=INDEX_DTYPE)
    dr, dc = np.meshgrid(within, within, indexing="ij")
    rows = (
        trow.astype(INDEX_DTYPE)[:, None] * block + dr.ravel()[None, :]
    ).ravel()
    cols = (
        tcol.astype(INDEX_DTYPE)[:, None] * block + dc.ravel()[None, :]
    ).ravel()
    return COOMatrix((nrows, ncols), rows, cols, _values(rng, rows.shape[0]))


#: Name → generator registry used by the collection builder.
GENERATORS: dict[str, Callable[..., COOMatrix]] = {
    "banded": banded,
    "multi_diagonal": multi_diagonal,
    "stencil_2d": stencil_2d,
    "stencil_3d": stencil_3d,
    "random_uniform": random_uniform,
    "power_law_rows": power_law_rows,
    "rmat": rmat,
    "scale_free_graph": scale_free_graph,
    "small_world": small_world,
    "block_diagonal": block_diagonal,
    "arrow": arrow,
    "row_blocks": row_blocks,
    "rectangular": rectangular,
    "magnitude_pruned": magnitude_pruned,
    "random_pruned": random_pruned,
    "block_pruned": block_pruned,
}

#: The pruned-weight trio (DLMC-style); the SpMM campaign mixes these
#: into the classic SpMV families.
PRUNED_FAMILIES: tuple[str, ...] = (
    "magnitude_pruned",
    "random_pruned",
    "block_pruned",
)
