"""Reproducible synthetic matrix collection.

``build_collection(seed, size)`` assembles a deterministic list of
:class:`~repro.datasets.generators.MatrixRecord` spanning all families with
randomised parameters, mimicking the breadth of the SuiteSparse subset the
paper uses (1929 matrices; the default collection is size-configurable so
the test-suite can run on a small one and the benchmark harness on the full
one).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator, Sequence

import numpy as np

from repro.datasets.generators import GENERATORS, MatrixRecord
from repro.obs import TELEMETRY
from repro.runtime.parallel import parallel_map

#: Relative weight of each family in the collection.  Skewed families are
#: weighted so the induced label distribution is CSR-heavy with meaningful
#: ELL and small COO/HYB classes, like Table 3.
FAMILY_WEIGHTS: dict[str, float] = {
    "banded": 0.7,
    "multi_diagonal": 0.5,
    "stencil_2d": 0.7,
    "stencil_3d": 0.5,
    "random_uniform": 2.4,
    "power_law_rows": 2.0,
    "rmat": 0.8,
    "scale_free_graph": 0.4,
    "small_world": 0.5,
    "block_diagonal": 1.2,
    "arrow": 0.4,
    "row_blocks": 1.6,
    "rectangular": 1.2,
    # Pruned-weight families only enter via explicit `families=` (SpMM
    # campaigns); they are NOT in DEFAULT_FAMILIES, so classic SpMV
    # collections are unchanged.
    "magnitude_pruned": 1.0,
    "random_pruned": 1.0,
    "block_pruned": 1.0,
}

#: The family list ``build_collection`` uses when none is given.  Pinned
#: to the original 13 SpMV-era families: registering new generators must
#: never silently reshuffle existing seeded campaigns (byte-identity of
#: Tables 2-9 depends on this).
DEFAULT_FAMILIES: tuple[str, ...] = (
    "banded",
    "multi_diagonal",
    "stencil_2d",
    "stencil_3d",
    "random_uniform",
    "power_law_rows",
    "rmat",
    "scale_free_graph",
    "small_world",
    "block_diagonal",
    "arrow",
    "row_blocks",
    "rectangular",
)

#: Mixed family list for the op-aware SpMM campaign: the classic suite
#: plus the DLMC-style pruned-weight trio.
SPMM_FAMILIES: tuple[str, ...] = DEFAULT_FAMILIES + (
    "magnitude_pruned",
    "random_pruned",
    "block_pruned",
)


def _sample_params(
    family: str, rng: np.random.Generator
) -> dict:
    """Randomise generator parameters within family-appropriate ranges."""
    if family == "banded":
        return {
            "n": int(rng.integers(256, 6144)),
            "bandwidth": int(rng.integers(1, 16)),
            "density": float(rng.uniform(0.5, 1.0)),
        }
    if family == "multi_diagonal":
        return {
            "n": int(rng.integers(256, 6144)),
            "ndiags": int(rng.integers(3, 24)),
        }
    if family == "stencil_2d":
        side = int(rng.integers(16, 80))
        return {"nx": side, "ny": side, "points": int(rng.choice([5, 9]))}
    if family == "stencil_3d":
        return {
            "n1": int(rng.integers(8, 19)),
            "points": int(rng.choice([7, 27])),
        }
    if family == "random_uniform":
        n = int(rng.integers(512, 6144))
        return {
            "nrows": n,
            "ncols": n,
            "density": float(10 ** rng.uniform(-3.3, -1.7)),
        }
    if family == "power_law_rows":
        # Bound the tail: roughly half the draws stay within CUSP's ELL
        # fill bound (max/mean <= 3), the rest mimic the matrices the
        # paper excludes because the ELL variant cannot be generated.
        return {
            "nrows": int(rng.integers(512, 6144)),
            "avg_nnz_per_row": float(rng.uniform(3, 24)),
            "alpha": float(rng.uniform(1.6, 2.8)),
            "max_over_mean": float(rng.uniform(1.3, 6.0)),
        }
    if family == "rmat":
        return {
            "scale": int(rng.integers(9, 13)),
            "edge_factor": int(rng.integers(4, 16)),
        }
    if family == "scale_free_graph":
        return {
            "n": int(rng.integers(512, 3072)),
            "m_attach": int(rng.integers(2, 8)),
        }
    if family == "small_world":
        return {
            "n": int(rng.integers(512, 6144)),
            "k": int(rng.integers(4, 16)),
            "p_rewire": float(rng.uniform(0.0, 0.2)),
        }
    if family == "block_diagonal":
        return {
            "nblocks": int(rng.integers(8, 96)),
            "block_size": int(rng.integers(8, 80)),
            "density": float(rng.uniform(0.2, 0.9)),
        }
    if family == "arrow":
        return {
            "n": int(rng.integers(512, 6144)),
            "band": int(rng.integers(1, 6)),
            "arm_density": float(rng.uniform(0.3, 1.0)),
        }
    if family == "row_blocks":
        nlens = int(rng.integers(2, 5))
        lengths = tuple(
            int(v) for v in np.sort(rng.integers(1, 64, size=nlens))
        )
        return {"nrows": int(rng.integers(512, 6144)), "lengths": lengths}
    if family == "rectangular":
        return {
            "nrows": int(rng.integers(1024, 6144)),
            "ncols": int(rng.integers(128, 1024)),
            "nnz_per_row": int(rng.integers(2, 16)),
        }
    # DLMC-style pruned weight tensors: transformer-ish layer shapes at
    # the sparsity grid the DLMC benchmark sweeps (0.5 .. 0.98).
    if family == "magnitude_pruned":
        return {
            "nrows": int(rng.integers(256, 2048)),
            "ncols": int(rng.integers(256, 2048)),
            "sparsity": float(rng.choice([0.5, 0.7, 0.8, 0.9, 0.95, 0.98])),
        }
    if family == "random_pruned":
        return {
            "nrows": int(rng.integers(256, 2048)),
            "ncols": int(rng.integers(256, 2048)),
            "sparsity": float(rng.choice([0.5, 0.7, 0.8, 0.9, 0.95, 0.98])),
        }
    if family == "block_pruned":
        return {
            "nrows": int(rng.integers(256, 2048)),
            "ncols": int(rng.integers(256, 2048)),
            "sparsity": float(rng.choice([0.5, 0.7, 0.8, 0.9, 0.95, 0.98])),
            "block": int(rng.choice([2, 4, 8, 16])),
        }
    raise KeyError(f"unknown family {family!r}")


@dataclass
class SyntheticCollection:
    """An ordered, named collection of generated matrices."""

    records: list[MatrixRecord]
    seed: int

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[MatrixRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> MatrixRecord:
        return self.records[idx]

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.records]

    def families(self) -> dict[str, int]:
        """Family → count, for collection summaries."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.family] = out.get(rec.family, 0) + 1
        return out

    def total_nnz(self) -> int:
        return sum(r.nnz for r in self.records)

    def subset(self, indices: Sequence[int]) -> "SyntheticCollection":
        return SyntheticCollection(
            [self.records[i] for i in indices], seed=self.seed
        )


def _generate_record(
    task: tuple[int, np.random.SeedSequence],
    families: tuple[str, ...],
    weights: np.ndarray,
) -> MatrixRecord:
    """Picklable per-matrix work unit.

    ``task`` carries the matrix index and its own spawned
    :class:`~numpy.random.SeedSequence`, so generation is a pure function
    of the task — the determinism seam the parallel engine relies on.
    ``default_rng`` of a spawned SeedSequence is bit-identical to the
    Generator that ``master.spawn(size)[i]`` would produce.
    """
    index, seed_seq = task
    child = np.random.default_rng(seed_seq)
    family = str(
        child.choice(np.asarray(families, dtype=object), p=weights)
    )
    params = _sample_params(family, child)
    matrix = GENERATORS[family](child, **params)
    return MatrixRecord(
        name=f"{family}_{index:05d}",
        family=family,
        matrix=matrix,
        params=params,
    )


def build_collection(
    seed: int = 20210809,  # the workshop's opening date
    size: int = 400,
    families: Sequence[str] | None = None,
    jobs: int = 1,
) -> SyntheticCollection:
    """Build a deterministic collection of ``size`` matrices.

    Family draws follow :data:`FAMILY_WEIGHTS`; each matrix gets its own
    child seed, so changing ``size`` only appends/truncates rather than
    reshuffling earlier matrices — and, with ``jobs > 1``, matrices are
    generated by a process pool with bit-identical results.
    """
    if families is None:
        families = list(DEFAULT_FAMILIES)
    weights = np.asarray(
        [FAMILY_WEIGHTS.get(f, 1.0) for f in families], dtype=float
    )
    weights /= weights.sum()
    child_seeds = np.random.SeedSequence(seed).spawn(size)
    with TELEMETRY.span("datasets.build_collection", size=size, jobs=jobs):
        records = parallel_map(
            partial(
                _generate_record,
                families=tuple(families),
                weights=weights,
            ),
            list(enumerate(child_seeds)),
            jobs=jobs,
            label="datasets.generate",
        )
        TELEMETRY.inc("datasets.matrices_generated", size)
    return SyntheticCollection(records, seed=seed)
