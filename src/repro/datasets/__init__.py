"""Synthetic sparse-matrix collection standing in for SuiteSparse.

The paper trains and evaluates on 1929 matrices from the SuiteSparse Matrix
Collection (augmented with row/column permutations).  SuiteSparse is not
available offline, so :mod:`repro.datasets.generators` provides twelve
structural families spanning the axes that drive format choice — row-length
uniformity vs. skew, diagonal locality, density, aspect ratio — and
:mod:`repro.datasets.suite` assembles a reproducible collection from them.
:mod:`repro.datasets.augment` reproduces the paper's permutation
augmentation.
"""

from repro.datasets.augment import permutation_augment
from repro.datasets.generators import GENERATORS, MatrixRecord
from repro.datasets.io import export_collection, load_collection
from repro.datasets.suite import SyntheticCollection, build_collection

__all__ = [
    "GENERATORS",
    "MatrixRecord",
    "SyntheticCollection",
    "build_collection",
    "export_collection",
    "load_collection",
    "permutation_augment",
]
