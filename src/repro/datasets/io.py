"""Collection persistence: directories of MatrixMarket files + metadata.

Two purposes:

- Export a synthetic collection to disk so external tools (or a real GPU
  benchmarking harness) can consume it.
- Load a directory of ``.mtx`` files — e.g. a locally downloaded slice of
  the real SuiteSparse collection — into :class:`MatrixRecord` objects,
  so the entire pipeline (features → labels → selectors → tables) runs
  unchanged on real data when it is available.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.datasets.generators import MatrixRecord
from repro.formats.io import read_matrix_market, write_matrix_market

_META_NAME = "collection.json"


def export_collection(
    records: list[MatrixRecord], directory: str | Path
) -> Path:
    """Write each matrix as ``<name>.mtx`` plus a metadata JSON.

    Returns the directory path.  Refuses to overwrite an existing
    metadata file — exports are immutable campaign inputs.

    The export is staged in a temporary sibling directory and only moved
    into place once every matrix has serialised successfully, with the
    metadata file written last as the commit marker (the same
    temp-then-rename convention as the artifact cache).  A mid-export
    failure therefore leaves no partial collection behind: without a
    ``collection.json`` the target is never a loadable export, and a
    retry is not blocked by debris from the failed attempt.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta_path = directory / _META_NAME
    if meta_path.exists():
        raise FileExistsError(f"{meta_path} already exists")
    staging = Path(
        tempfile.mkdtemp(
            dir=directory.parent, prefix=f".{directory.name}-partial-"
        )
    )
    try:
        meta = []
        for rec in records:
            filename = f"{rec.name}.mtx"
            write_matrix_market(
                rec.matrix,
                staging / filename,
                comment=f"family: {rec.family}",
            )
            meta.append(
                {
                    "name": rec.name,
                    "family": rec.family,
                    "file": filename,
                    "params": _jsonable(rec.params),
                }
            )
        (staging / _META_NAME).write_text(
            json.dumps(meta, indent=2), encoding="utf-8"
        )
        # Publish: matrices first, the metadata commit marker last.
        for item in sorted(staging.iterdir()):
            if item.name != _META_NAME:
                os.replace(item, directory / item.name)
        os.replace(staging / _META_NAME, meta_path)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return directory


def load_collection(directory: str | Path) -> list[MatrixRecord]:
    """Load a collection directory.

    With a ``collection.json`` (our own exports) names/families/params are
    restored; without one (e.g. a folder of SuiteSparse downloads) every
    ``*.mtx`` file is loaded with its stem as the name and family
    ``"external"``.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    meta_path = directory / _META_NAME
    records: list[MatrixRecord] = []
    if meta_path.exists():
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        for entry in meta:
            matrix = read_matrix_market(directory / entry["file"])
            records.append(
                MatrixRecord(
                    name=entry["name"],
                    family=entry["family"],
                    matrix=matrix,
                    params=entry.get("params", {}),
                )
            )
        return records
    mtx_files = sorted(directory.glob("*.mtx"))
    if not mtx_files:
        raise FileNotFoundError(f"no .mtx files in {directory}")
    for path in mtx_files:
        records.append(
            MatrixRecord(
                name=path.stem,
                family="external",
                matrix=read_matrix_market(path),
                params={"source": str(path)},
            )
        )
    return records


def _jsonable(params: dict) -> dict:
    """Coerce generator params (tuples, numpy scalars) to JSON types."""
    out = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif hasattr(value, "item"):
            out[key] = value.item()
        else:
            out[key] = value
    return out
