"""Permutation augmentation.

The paper (§5.1): *"To effectively train the CNN model, we derived
additional instances from the SuiteSparse matrices by performing simple row
and column permutations similar to prior work. We thus generated an
augmented dataset combining the original SuiteSparse and the permuted
matrices."*
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import MatrixRecord


def permutation_augment(
    records: list[MatrixRecord],
    copies: int = 1,
    seed: int = 7,
    permute_rows: bool = True,
    permute_cols: bool = True,
) -> list[MatrixRecord]:
    """Return the originals followed by ``copies`` permuted variants each.

    Permutations preserve nnz and the multiset of row lengths when only
    rows are permuted; full row+column permutation destroys diagonal
    locality, which is exactly the augmentation effect the paper relies on
    to densify the training distribution.
    """
    rng = np.random.default_rng(seed)
    out = list(records)
    for rec in records:
        for c in range(copies):
            m = rec.matrix
            row_perm = rng.permutation(m.nrows) if permute_rows else None
            col_perm = rng.permutation(m.ncols) if permute_cols else None
            out.append(
                MatrixRecord(
                    name=f"{rec.name}_perm{c}",
                    family=rec.family,
                    matrix=m.permute(row_perm, col_perm),
                    params={**rec.params, "augmented_from": rec.name},
                )
            )
    return out
