"""Permutation augmentation.

The paper (§5.1): *"To effectively train the CNN model, we derived
additional instances from the SuiteSparse matrices by performing simple row
and column permutations similar to prior work. We thus generated an
augmented dataset combining the original SuiteSparse and the permuted
matrices."*
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import MatrixRecord
from repro.obs import TELEMETRY
from repro.runtime.parallel import parallel_map


def _apply_permutation(
    task: tuple[MatrixRecord, np.ndarray | None, np.ndarray | None, str],
) -> MatrixRecord:
    """Picklable work unit: apply pre-drawn permutations to one record.

    Drawing the permutations happens serially in the parent (one shared
    RNG stream), so only the expensive ``permute`` — the COO rebuild and
    re-sort — runs in the pool, and results match the serial path
    bit-for-bit.
    """
    rec, row_perm, col_perm, name = task
    return MatrixRecord(
        name=name,
        family=rec.family,
        matrix=rec.matrix.permute(row_perm, col_perm),
        params={**rec.params, "augmented_from": rec.name},
    )


def permutation_augment(
    records: list[MatrixRecord],
    copies: int = 1,
    seed: int = 7,
    permute_rows: bool = True,
    permute_cols: bool = True,
    jobs: int = 1,
) -> list[MatrixRecord]:
    """Return the originals followed by ``copies`` permuted variants each.

    Permutations preserve nnz and the multiset of row lengths when only
    rows are permuted; full row+column permutation destroys diagonal
    locality, which is exactly the augmentation effect the paper relies on
    to densify the training distribution.
    """
    rng = np.random.default_rng(seed)
    tasks: list[tuple[MatrixRecord, np.ndarray | None, np.ndarray | None, str]] = []
    for rec in records:
        for c in range(copies):
            m = rec.matrix
            row_perm = rng.permutation(m.nrows) if permute_rows else None
            col_perm = rng.permutation(m.ncols) if permute_cols else None
            tasks.append((rec, row_perm, col_perm, f"{rec.name}_perm{c}"))
    with TELEMETRY.span(
        "datasets.permutation_augment", n_tasks=len(tasks), jobs=jobs
    ):
        augmented = parallel_map(
            _apply_permutation, tasks, jobs=jobs, label="datasets.augment"
        )
    return list(records) + augmented
