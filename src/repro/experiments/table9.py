"""Table 9: training times of the models in the transfer setting.

Wall-clock seconds to (re)train each model with 0 / 25 / 50% of the
target platform's training data added, averaged over folds.  The paper's
qualitative findings to reproduce: K-Means variants are the cheapest by a
wide margin, the classical supervised models are moderate and grow with
the training-set size, and the CNN is orders of magnitude above everything
else.
"""

from __future__ import annotations

import numpy as np

from repro.core.semisupervised import ClusterFormatSelector
from repro.core.transfer import (
    RETRAIN_FRACTIONS,
    _retrain_mask,
    transfer_training_set,
)
from repro.core.supervised import SupervisedFormatSelector
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.ml.model_selection import train_test_split
from repro.ml.neural import CNNClassifier, density_image
from repro.obs import TELEMETRY

#: Rows of the paper's Table 9.
MODEL_ORDER = (
    "DT",
    "RF",
    "SVM",
    "KNN",
    "XGBoost",
    "CNN",
    "K-Means-VOTE",
    "K-Means-LR",
    "K-Means-RF",
)


def _time_model(
    data: ExperimentData,
    model: str,
    source_arch: str,
    target_arch: str,
    fraction: float,
    repeats: int = 1,
) -> float:
    cfg = data.config
    source = data.common[source_arch]
    target = data.common[target_arch]
    train_idx, _ = train_test_split(
        len(source),
        cfg.transfer_test_fraction,
        y=source.labels,
        seed=cfg.seed % 2**31,
    )
    mask = _retrain_mask(
        len(train_idx), fraction, source.labels[train_idx],
        seed=cfg.seed % 2**31,
    )
    X_train, y_train = transfer_training_set(source, target, train_idx, mask)
    elapsed = []
    for rep in range(repeats):
        # TELEMETRY.timer measures via time.perf_counter whether or not
        # telemetry is enabled (monotonic — the table's numbers must not
        # jump with wall-clock adjustments), and contributes
        # ``table9.train`` spans to the trace when profiling.
        if model.startswith("K-Means"):
            labeler = {"VOTE": "vote", "LR": "lr", "RF": "rf"}[
                model.split("-")[-1]
            ]
            nc = min(cfg.nc_grid[len(cfg.nc_grid) // 2], len(train_idx) // 2)
            with TELEMETRY.timer(
                "table9.train", model=model, fraction=fraction
            ) as t:
                sel = ClusterFormatSelector("kmeans", labeler, nc, seed=rep)
                sel.fit_clusters(source.X[train_idx])
                sel.label_clusters(
                    target.labels[train_idx],
                    benchmarked=mask,
                    source_y=source.labels[train_idx],
                )
            elapsed.append(t.duration)
        elif model == "CNN":
            by_name = {r.name: r for r in data.records}
            images = np.stack(
                [
                    density_image(by_name[source.names[i]].matrix)
                    for i in train_idx
                ]
            )
            with TELEMETRY.timer(
                "table9.train", model=model, fraction=fraction
            ) as t:
                CNNClassifier(epochs=8, seed=rep).fit(
                    images, source.labels[train_idx]
                )
            elapsed.append(t.duration)
        else:
            with TELEMETRY.timer(
                "table9.train", model=model, fraction=fraction
            ) as t:
                SupervisedFormatSelector(model, seed=rep).fit(
                    X_train, y_train
                )
            elapsed.append(t.duration)
    return float(np.mean(elapsed))


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_ORDER,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    archs = data.arch_names
    source_arch, target_arch = archs[0], archs[1]
    headers = ["Model"] + [
        f"train time @{int(f*100)}% (s)" for f in RETRAIN_FRACTIONS
    ]
    table = TableResult(
        table_id="Table 9",
        title="Average training times of the models in the transfer setting",
        headers=headers,
    )
    for model in models:
        row: list = [model]
        for frac in RETRAIN_FRACTIONS:
            row.append(
                round(
                    _time_model(data, model, source_arch, target_arch, frac),
                    4,
                )
            )
        table.rows.append(row)
    table.notes.append(
        "paper shape: K-Means variants cheapest, classical models moderate "
        "and growing with training-set size, CNN orders of magnitude above"
    )
    return table
