"""Table 7: supervised classifiers in the transfer setting.

Five (source → target) scenarios (the paper omits Volta→Pascal as
redundant with Turing→Pascal) × five models × {0, 25, 50}% retraining,
reporting ACC / F1 / MCC / GT / CSR per fraction.
"""

from __future__ import annotations

import numpy as np

from repro.core.transfer import RETRAIN_FRACTIONS, transfer_supervised
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.ml.model_selection import StratifiedKFold

#: The paper's transfer scenarios (§5.3: Volta→Pascal omitted).
def transfer_scenarios(archs: list[str]) -> list[tuple[str, str]]:
    pairs = [(s, t) for s in archs for t in archs if s != t]
    return [p for p in pairs if p != ("volta", "pascal")]


#: Supervised models evaluated in the transfer case (the paper omits the
#: CNN here: "each experiment takes ~15 hours to complete").
MODEL_ORDER = ("DT", "RF", "SVM", "KNN", "XGBoost")


def evaluate_transfer_model(
    data: ExperimentData,
    source_arch: str,
    target_arch: str,
    model: str,
    fractions: tuple[float, ...] = RETRAIN_FRACTIONS,
) -> dict[float, dict[str, float]]:
    cfg = data.config
    source = data.common[source_arch]
    target = data.common[target_arch]
    skf = StratifiedKFold(cfg.n_folds, seed=cfg.seed % 2**31)
    agg: dict[float, dict[str, list[float]]] = {
        f: {"ACC": [], "F1": [], "MCC": [], "GT": [], "CSR": []}
        for f in fractions
    }
    for train, test in skf.split(source.labels):
        for frac in fractions:
            scores = transfer_supervised(
                model, source, target, train, test, frac,
                seed=cfg.seed % 2**31,
            )
            agg[frac]["ACC"].append(scores.accuracy * 100.0)
            agg[frac]["F1"].append(scores.f1)
            agg[frac]["MCC"].append(scores.mcc)
            agg[frac]["GT"].append(scores.speedups.gt_speedup)
            agg[frac]["CSR"].append(scores.speedups.csr_speedup)
    return {
        f: {k: float(np.mean(v)) for k, v in vals.items()}
        for f, vals in agg.items()
    }


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_ORDER,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    headers = ["Scenario", "MLM"]
    for frac in RETRAIN_FRACTIONS:
        pct = int(frac * 100)
        headers += [
            f"ACC@{pct}%", f"F1@{pct}%", f"MCC@{pct}%",
            f"GT@{pct}%", f"CSR@{pct}%",
        ]
    table = TableResult(
        table_id="Table 7",
        title=(
            "Supervised sparse format selection with transfer learning "
            "across GPUs"
        ),
        headers=headers,
    )
    for source_arch, target_arch in transfer_scenarios(data.arch_names):
        scenario = f"{source_arch} to {target_arch}"
        for model in models:
            results = evaluate_transfer_model(
                data, source_arch, target_arch, model
            )
            row: list = [scenario, model]
            for frac in RETRAIN_FRACTIONS:
                r = results[frac]
                row += [
                    round(r["ACC"], 2), r["F1"], r["MCC"],
                    r["GT"], r["CSR"],
                ]
            table.rows.append(row)
    table.notes.append(
        "paper shape: transfer MCC clearly below the local MCC of Table 6; "
        "retraining improves supervised models more than the semi-"
        "supervised approach of Table 5"
    )
    return table
