"""The op-aware SpMM campaign and Table 10.

The classic campaign (Tables 2-9) selects formats for SpMV alone.  This
module opens the second workload axis: the same structural features, but
benchmarked under a *mix* of operations (SpMV, SpMM at a dense width k,
SpGEMM) over a collection that adds DLMC-style pruned-weight matrices to
the classic families.  The selector's label becomes the compound
``format@op`` pair, and Table 10 reports the induced label distribution
plus the op-aware selector's cross-validated accuracy against every
static single-format policy.

This campaign is deliberately separate from
:func:`repro.experiments.data.build_experiment_data`: the SpMV campaign's
artifacts (and its cache keys) stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.labeling import LabeledDataset, build_op_labeled_dataset
from repro.core.semisupervised import ClusterFormatSelector
from repro.datasets.suite import SPMM_FAMILIES, build_collection
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.features.extract import FEATURE_NAMES, features_from_stats_batch
from repro.features.stats import MatrixStats, compute_stats
from repro.features.table import FeatureTable
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.gpu.kernels import MODELED_FORMATS
from repro.gpu.simulator import BenchmarkResult, op_label_distribution
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import StratifiedKFold
from repro.obs import TELEMETRY

#: The operation mix of the campaign: classic SpMV, SpMM at a GNN-ish
#: hidden width, and SpGEMM.
SPMM_OPS: tuple[str, ...] = ("spmv", "spmm:32", "spgemm")

#: Architecture the mixed campaign runs on (one suffices for Table 10;
#: the cross-architecture story stays with Tables 3-7).
SPMM_ARCH = "volta"


@dataclass
class SpmmCampaign:
    """Everything Table 10 and the SpMM bench consume."""

    config: ExperimentConfig
    arch: str
    stats: list[MatrixStats]
    features: FeatureTable
    #: op → benchmark results, aligned with ``features.names``.
    results_by_op: dict[str, list[BenchmarkResult]]
    #: Stacked compound-label dataset (one op-augmented copy per op).
    dataset: LabeledDataset


def build_spmm_campaign(
    config: ExperimentConfig | None = None,
    arch: str = SPMM_ARCH,
    ops: tuple[str, ...] = SPMM_OPS,
) -> SpmmCampaign:
    """Run the mixed-op campaign over the classic + pruned families."""
    if config is None:
        config = ExperimentConfig.small()
    with TELEMETRY.span(
        "experiments.spmm_campaign",
        arch=arch,
        ops=",".join(ops),
        size=config.collection_size,
    ):
        collection = build_collection(
            seed=config.seed,
            size=config.collection_size,
            families=SPMM_FAMILIES,
            jobs=config.jobs,
        )
        stats = [compute_stats(rec.matrix) for rec in collection]
        features = FeatureTable(
            names=collection.names,
            feature_names=list(FEATURE_NAMES),
            values=features_from_stats_batch(stats),
        )
        sim = GPUSimulator(
            ARCHITECTURES[arch], trials=config.trials, seed=config.seed
        )
        results_by_op = {
            op: [
                sim.benchmark_stats(rec.name, st, op)
                for rec, st in zip(collection, stats)
            ]
            for op in ops
        }
        dataset = build_op_labeled_dataset(arch, features, results_by_op)
    return SpmmCampaign(
        config=config,
        arch=arch,
        stats=stats,
        features=features,
        results_by_op=results_by_op,
        dataset=dataset,
    )


def static_format_accuracy(dataset: LabeledDataset) -> dict[str, float]:
    """Accuracy of always choosing one format, whatever the (matrix, op).

    A static policy knows the op at hand (it is part of the request), so
    its prediction for a row labeled ``fmt@op`` is ``static_fmt@op`` —
    correct exactly when the winning *format* matches.
    """
    chosen = np.asarray(
        [str(label).split("@", 1)[0] for label in dataset.labels],
        dtype=object,
    )
    return {
        fmt: float(np.mean(chosen == fmt)) for fmt in MODELED_FORMATS
    }


def evaluate_op_selector(
    dataset: LabeledDataset,
    config: ExperimentConfig,
) -> dict[str, float]:
    """Cross-validated accuracy of the op-aware K-Means-VOTE selector.

    The NC grid is swept like Table 4 (best mean accuracy wins); the
    op-indicator feature columns let one clustering separate regimes
    where the same structure prefers different formats per op.
    """
    best_acc = 0.0
    best_nc = 0
    seed = config.seed % 2**31
    for nc in config.nc_grid:
        if nc >= len(dataset) // 2:
            continue
        accs = []
        skf = StratifiedKFold(config.n_folds, seed=seed)
        for train, test in skf.split(dataset.labels):
            sel = ClusterFormatSelector("kmeans", "vote", nc, seed=seed)
            sel.fit(dataset.X[train], dataset.labels[train])
            pred = sel.predict(dataset.X[test])
            accs.append(accuracy_score(dataset.labels[test], pred))
        acc = float(np.mean(accs))
        if acc > best_acc:
            best_acc, best_nc = acc, nc
    if best_nc == 0:
        raise ValueError("NC grid has no feasible entry for this dataset")
    return {"ACC": best_acc, "NC": float(best_nc)}


def generate(
    data=None,
    config: ExperimentConfig | None = None,
    campaign: SpmmCampaign | None = None,
) -> TableResult:
    """Table 10: op-aware label distribution and selector accuracy.

    ``data`` (the shared SpMV :class:`ExperimentData`) is accepted for
    runner compatibility but only its config is used — the mixed-op
    campaign is built separately so the SpMV artifacts stay untouched.
    """
    if config is None:
        config = data.config if data is not None else ExperimentConfig.small()
    if campaign is None:
        campaign = build_spmm_campaign(config)
    runnable = [
        res
        for results in campaign.results_by_op.values()
        for res in results
        if res.runnable
    ]
    counts = op_label_distribution(runnable)
    static = static_format_accuracy(campaign.dataset)
    best_static_fmt = max(static, key=static.__getitem__)
    scores = evaluate_op_selector(campaign.dataset, config)
    table = TableResult(
        table_id="Table 10",
        title=(
            "Op-aware format selection on the mixed "
            "SpMV/SpMM/SpGEMM campaign"
        ),
        headers=["Quantity", "Value"],
    )
    for label in sorted(counts):
        table.add_row(f"n[{label}]", counts[label])
    table.add_row("labeled pairs", len(campaign.dataset))
    table.add_row("NC (K-Means-VOTE)", int(scores["NC"]))
    table.add_row("ACC op-aware selector", scores["ACC"])
    for fmt in MODELED_FORMATS:
        table.add_row(f"ACC static {fmt.upper()}", static[fmt])
    table.add_row("best static format", best_static_fmt.upper())
    table.add_row(
        "selector beats best static",
        "yes" if scores["ACC"] > static[best_static_fmt] else "no",
    )
    table.notes.append(
        "labels are format@op pairs; the static policies pick one format "
        "for every request, the selector conditions on structure + op"
    )
    return table
