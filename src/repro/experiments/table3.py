"""Table 3: distribution of the best sparse formats across GPUs."""

from __future__ import annotations

from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.gpu.kernels import MODELED_FORMATS


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    archs = data.arch_names
    table = TableResult(
        table_id="Table 3",
        title="Distribution of the best sparse formats across GPUs",
        headers=["Format"]
        + [a.capitalize() for a in archs]
        + [f"Common {a.capitalize()}" for a in archs],
    )
    per_arch = {a: data.datasets[a].class_distribution() for a in archs}
    per_common = {a: data.common[a].class_distribution() for a in archs}
    for fmt in MODELED_FORMATS:
        table.add_row(
            fmt.upper(),
            *[per_arch[a][fmt] for a in archs],
            *[per_common[a][fmt] for a in archs],
        )
    table.add_row(
        "Total",
        *[len(data.datasets[a]) for a in archs],
        *[len(data.common[a]) for a in archs],
    )
    table.notes.append(
        "paper shape: CSR majority everywhere; ELL a strong minority; "
        "COO most frequent on Turing; HYB essentially Pascal-only"
    )
    return table
