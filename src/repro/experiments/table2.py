"""Table 2: the GPU platforms used in the experiments."""

from __future__ import annotations

from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData
from repro.gpu import ARCHITECTURES


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
) -> TableResult:
    """Render the architecture parameter sets (static, from Table 2)."""
    table = TableResult(
        table_id="Table 2",
        title="Different NVIDIA GPUs used in our experiments (simulated)",
        headers=[
            "µ-architecture",
            "Model",
            "# of SMs",
            "L1 cache per SM (KiB)",
            "L2 cache (KiB)",
            "Memory (GB)",
            "Memory bandwidth (GB/s)",
        ],
    )
    for arch in ARCHITECTURES.values():
        table.add_row(
            arch.microarchitecture,
            arch.model,
            arch.num_sms,
            arch.l1_kib_per_sm,
            arch.l2_kib,
            arch.memory_gb,
            arch.bandwidth_gbs,
        )
    table.notes.append(
        "hardware parameters reproduce the paper's Table 2; the kernel-model "
        "dials (bandwidth efficiency, COO pass factor, overheads) are this "
        "reproduction's simulator calibration"
    )
    return table
