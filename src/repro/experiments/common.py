"""Shared result container for the experiment tables."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """A rendered experiment table: header row plus data rows."""

    table_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        row = list(values)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, header: str) -> list:
        j = self.headers.index(header)
        return [row[j] for row in self.rows]

    def format_text(self) -> str:
        """Plain-text rendering in the style of the paper's tables."""

        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        cells = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(r[j]) for r in cells) for j in range(len(self.headers))
        ]
        lines = [f"{self.table_id}: {self.title}"]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        lines = [f"### {self.table_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)
