"""Table 5: semi-supervised transfer across GPUs with 0/25/50% retraining.

Six (source → target) pairs × nine (clusterer × labeler) combinations.
Clusters are built from the architecture-invariant features of the common
subset; labels come from the source architecture plus the re-benchmarked
fraction of target labels.
"""

from __future__ import annotations

import numpy as np

from repro.core.semisupervised import CLUSTERERS, LABELERS, ClusterFormatSelector
from repro.core.transfer import RETRAIN_FRACTIONS, transfer_semisupervised
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.experiments.table4 import COMBO_NAMES
from repro.ml.model_selection import StratifiedKFold


def transfer_pairs(archs: list[str]) -> list[tuple[str, str]]:
    """All ordered (source, target) pairs — the paper's six combinations."""
    return [(s, t) for s in archs for t in archs if s != t]


def evaluate_transfer_combo(
    data: ExperimentData,
    source_arch: str,
    target_arch: str,
    clusterer: str,
    labeler: str,
    n_clusters: int | None,
    fractions: tuple[float, ...] = RETRAIN_FRACTIONS,
) -> dict[float, dict[str, float]]:
    """CV-averaged transfer scores per retraining fraction."""
    cfg = data.config
    source = data.common[source_arch]
    target = data.common[target_arch]
    skf = StratifiedKFold(cfg.n_folds, seed=cfg.seed % 2**31)
    agg: dict[float, dict[str, list[float]]] = {
        f: {"MCC": [], "ACC": [], "F1": [], "NC": []} for f in fractions
    }
    for train, test in skf.split(source.labels):
        for frac in fractions:
            sel = ClusterFormatSelector(
                clusterer, labeler, n_clusters, seed=cfg.seed % 2**31
            )
            scores = transfer_semisupervised(
                sel, source, target, train, test, frac,
                seed=cfg.seed % 2**31,
            )
            agg[frac]["MCC"].append(scores.mcc)
            agg[frac]["ACC"].append(scores.accuracy)
            agg[frac]["F1"].append(scores.f1)
            agg[frac]["NC"].append(sel.n_clusters_)
    return {
        f: {k: float(np.mean(v)) for k, v in vals.items()}
        for f, vals in agg.items()
    }


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    cfg = data.config
    headers = ["Scenario", "Algorithm", "NC"]
    for frac in RETRAIN_FRACTIONS:
        pct = int(frac * 100)
        headers += [f"MCC@{pct}%", f"ACC@{pct}%", f"F1@{pct}%"]
    table = TableResult(
        table_id="Table 5",
        title=(
            "Semi-supervised sparse format selection with transfer "
            "learning across GPUs"
        ),
        headers=headers,
    )
    # One mid-grid NC per clusterer keeps the transfer sweep tractable —
    # the paper also fixes NC per scenario (reported in its NC column).
    nc_default = cfg.nc_grid[len(cfg.nc_grid) // 2]
    for source_arch, target_arch in transfer_pairs(data.arch_names):
        scenario = f"{source_arch} to {target_arch}"
        for clusterer in CLUSTERERS:
            nc = None if clusterer == "meanshift" else nc_default
            for labeler in LABELERS:
                results = evaluate_transfer_combo(
                    data, source_arch, target_arch, clusterer, labeler, nc
                )
                row: list = [scenario, COMBO_NAMES[(clusterer, labeler)]]
                row.append(int(round(results[RETRAIN_FRACTIONS[0]]["NC"])))
                for frac in RETRAIN_FRACTIONS:
                    row += [
                        results[frac]["MCC"],
                        results[frac]["ACC"],
                        results[frac]["F1"],
                    ]
                table.rows.append(row)
    table.notes.append(
        "paper shape: K-Means-VOTE / K-Means-RF best in every scenario; "
        "retraining helps only moderately (clusters are platform-invariant)"
    )
    return table
