"""Table 6: supervised classifiers, local setting.

DT / RF / SVM / KNN / XGBoost / CNN per architecture with 5-fold CV,
reporting ACC, F1, MCC and the speedup metrics GT / CSR / Threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core.labeling import LabeledDataset
from repro.core.speedup import speedup_metrics
from repro.core.supervised import SupervisedFormatSelector
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.ml.metrics import accuracy_score, f1_macro, matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold
from repro.ml.neural import CNNClassifier, density_image

#: Paper order of the evaluated models.
MODEL_ORDER = ("DT", "RF", "SVM", "KNN", "XGBoost", "CNN")


def _cnn_images(data: ExperimentData, ds: LabeledDataset) -> np.ndarray:
    """Density images aligned with the dataset's matrices."""
    by_name = {r.name: r for r in data.records}
    return np.stack(
        [density_image(by_name[n].matrix) for n in ds.names]
    )


def evaluate_model(
    data: ExperimentData,
    ds: LabeledDataset,
    model: str,
    n_folds: int,
    seed: int = 0,
) -> dict[str, float]:
    """Cross-validated local scores for one model on one architecture.

    Predictions of all folds are pooled before the speedup metrics, so GT /
    CSR / Threshold cover every matrix exactly once (as in the paper).
    """
    images = _cnn_images(data, ds) if model == "CNN" else None
    skf = StratifiedKFold(n_folds, seed=seed)
    accs, f1s, mccs = [], [], []
    pooled_pred = np.empty(len(ds), dtype=object)
    for train, test in skf.split(ds.labels):
        if model == "CNN":
            clf = CNNClassifier(epochs=8, seed=seed)
            clf.fit(images[train], ds.labels[train])
            pred = clf.predict(images[test])
        else:
            sup = SupervisedFormatSelector(model, seed=seed)
            sup.fit(ds.X[train], ds.labels[train])
            pred = sup.predict(ds.X[test])
        accs.append(accuracy_score(ds.labels[test], pred))
        f1s.append(f1_macro(ds.labels[test], pred))
        mccs.append(matthews_corrcoef(ds.labels[test], pred))
        pooled_pred[test] = pred
    sp = speedup_metrics(pooled_pred, ds.times)
    return {
        "ACC": float(np.mean(accs)) * 100.0,
        "F1": float(np.mean(f1s)),
        "MCC": float(np.mean(mccs)),
        "GT": sp.gt_speedup,
        "CSR": sp.csr_speedup,
        "Threshold": float(sp.threshold_count),
    }


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_ORDER,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    cfg = data.config
    table = TableResult(
        table_id="Table 6",
        title="Performance of ML models on different GPUs",
        headers=["Arch", "MLM", "ACC", "F1", "MCC", "GT", "CSR", "Thresh."],
    )
    for arch in data.arch_names:
        ds = data.datasets[arch]
        for model in models:
            scores = evaluate_model(
                data, ds, model, cfg.n_folds, seed=cfg.seed % 2**31
            )
            table.add_row(
                arch,
                model,
                round(scores["ACC"], 2),
                scores["F1"],
                scores["MCC"],
                scores["GT"],
                scores["CSR"],
                int(scores["Threshold"]),
            )
    table.notes.append(
        "paper shape: RF and XGBoost lead on MCC; CNN trails with weak MCC "
        "on the unbalanced classes; GT <= 1 and CSR > 1 for good models"
    )
    return table
