"""Table 4: semi-supervised performance, local setting.

Nine (clusterer × labeler) combinations per architecture, 5-fold CV,
reporting NC / MCC / ACC / F1.  For K-Means and Birch the cluster count is
chosen from the configured NC grid by MCC (the paper: *"We ran a series of
preliminary experiments to determine a good choice of K for each clustering
algorithm and architecture"*); Mean-Shift determines NC itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.labeling import LabeledDataset
from repro.core.semisupervised import CLUSTERERS, LABELERS, ClusterFormatSelector
from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.ml.metrics import accuracy_score, f1_macro, matthews_corrcoef
from repro.ml.model_selection import StratifiedKFold

#: Display names matching the paper's rows.
COMBO_NAMES = {
    ("kmeans", "vote"): "K-Means-VOTE",
    ("kmeans", "lr"): "K-Means-LR",
    ("kmeans", "rf"): "K-Means-RF",
    ("meanshift", "vote"): "Mean-Shift-VOTE",
    ("meanshift", "lr"): "Mean-Shift-LR",
    ("meanshift", "rf"): "Mean-Shift-RF",
    ("birch", "vote"): "Birch-VOTE",
    ("birch", "lr"): "Birch-LR",
    ("birch", "rf"): "Birch-RF",
}


def evaluate_combo(
    ds: LabeledDataset,
    clusterer: str,
    labeler: str,
    n_clusters: int | None,
    n_folds: int,
    seed: int = 0,
) -> dict[str, float]:
    """Cross-validated scores of one (clusterer, labeler, NC) choice."""
    accs, f1s, mccs, ncs = [], [], [], []
    skf = StratifiedKFold(n_folds, seed=seed)
    for train, test in skf.split(ds.labels):
        sel = ClusterFormatSelector(
            clusterer, labeler, n_clusters, seed=seed
        )
        sel.fit(ds.X[train], ds.labels[train])
        pred = sel.predict(ds.X[test])
        accs.append(accuracy_score(ds.labels[test], pred))
        f1s.append(f1_macro(ds.labels[test], pred))
        mccs.append(matthews_corrcoef(ds.labels[test], pred))
        ncs.append(sel.n_clusters_)
    return {
        "NC": float(np.mean(ncs)),
        "ACC": float(np.mean(accs)),
        "F1": float(np.mean(f1s)),
        "MCC": float(np.mean(mccs)),
    }


def best_nc(
    ds: LabeledDataset,
    clusterer: str,
    labeler: str,
    nc_grid: tuple[int, ...],
    n_folds: int,
    seed: int = 0,
) -> tuple[int | None, dict[str, float]]:
    """Pick the grid NC with the best cross-validated MCC."""
    if clusterer == "meanshift":
        return None, evaluate_combo(ds, clusterer, labeler, None, n_folds, seed)
    best: tuple[int | None, dict[str, float]] | None = None
    for nc in nc_grid:
        if nc >= len(ds) // 2:
            continue
        scores = evaluate_combo(ds, clusterer, labeler, nc, n_folds, seed)
        if best is None or scores["MCC"] > best[1]["MCC"]:
            best = (nc, scores)
    if best is None:
        raise ValueError("NC grid has no feasible entry for this dataset")
    return best


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    cfg = data.config
    table = TableResult(
        table_id="Table 4",
        title=(
            "Performance of the semi-supervised approach using different "
            "clustering algorithms on different GPUs"
        ),
        headers=["Arch", "Algorithm", "NC", "MCC", "ACC", "F1"],
    )
    for arch in data.arch_names:
        ds = data.datasets[arch]
        for clusterer in CLUSTERERS:
            for labeler in LABELERS:
                _, scores = best_nc(
                    ds, clusterer, labeler, cfg.nc_grid, cfg.n_folds,
                    seed=cfg.seed % 2**31,
                )
                table.add_row(
                    arch,
                    COMBO_NAMES[(clusterer, labeler)],
                    int(round(scores["NC"])),
                    scores["MCC"],
                    scores["ACC"],
                    scores["F1"],
                )
    table.notes.append(
        "paper shape: K-Means-VOTE / K-Means-RF / Birch-VOTE strong, all "
        "Mean-Shift variants weak (too few clusters)"
    )
    return table
