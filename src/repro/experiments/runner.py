"""Regenerate the paper's full evaluation.

Usage::

    python -m repro.experiments.runner            # full (paper preset)
    python -m repro.experiments.runner --small    # quick pass

Prints every table and optionally writes a Markdown report.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.experiments import (
    spmm,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_experiment_data
from repro.obs import TELEMETRY

TABLE_MODULES = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": spmm,
}


def run_all(
    config: ExperimentConfig,
    only: list[str] | None = None,
    markdown_path: str | None = None,
) -> dict[str, "TableResult"]:
    names = only or list(TABLE_MODULES)
    # timer() measures even with telemetry off (so the per-table report
    # lines always appear) and contributes spans to the trace when on.
    with TELEMETRY.timer("experiments.build_data") as t:
        data = build_experiment_data(config)
    print(f"[experiment data built in {t.duration:.1f}s]\n")
    if data.degradation is not None:
        print(data.degradation.to_text() + "\n")
    results = {}
    md_parts = []
    for name in names:
        module = TABLE_MODULES[name]
        with TELEMETRY.timer(f"experiments.{name}") as t:
            result = module.generate(data, config)
        results[name] = result
        print(result.format_text())
        print(f"[{name} generated in {t.duration:.1f}s]\n")
        md_parts.append(result.to_markdown())
    if markdown_path:
        with open(markdown_path, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(md_parts) + "\n")
        print(f"markdown report written to {markdown_path}")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true", help="use the fast test preset"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(TABLE_MODULES),
        help="generate only these tables",
    )
    parser.add_argument(
        "--markdown", default=None, help="also write a Markdown report here"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the campaign (0 = all cores; results "
             "are identical for any value)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist campaign artifacts here (warm runs skip the "
             "campaign; default: $REPRO_CACHE_DIR or off)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per campaign task before quarantining it",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for campaign tasks",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint campaign progress every N benchmark tasks "
             "(0 = off; needs --cache-dir)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse a previous run's checkpoint from the cache dir",
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig.small() if args.small else ExperimentConfig.paper()
    retry = None
    if args.retries is not None or args.task_timeout is not None:
        from repro.runtime import RetryPolicy

        overrides = {}
        if args.retries is not None:
            overrides["max_attempts"] = args.retries
        if args.task_timeout is not None:
            overrides["task_timeout"] = args.task_timeout
        retry = RetryPolicy(**overrides)
    config = dataclasses.replace(
        config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retry=retry,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    run_all(config, only=args.only, markdown_path=args.markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
