"""Build (and cache) the shared experiment dataset.

Everything downstream of the simulated benchmarking campaign — features,
per-architecture labels, common subsets — is deterministic in the
configuration, so one build is shared by all tables and benches.

Two layers make repeat builds cheap:

- an in-process memo keyed by the campaign's content address, and
- the persistent :class:`~repro.runtime.cache.ArtifactCache` (opt-in via
  ``cache_dir`` / ``--cache-dir`` / ``$REPRO_CACHE_DIR``), which lets a
  warm ``repro tables`` run skip the campaign entirely.

The campaign fan-outs (generation, permutation, stats, per-architecture
benchmarking) all run through :func:`repro.runtime.parallel.parallel_map`,
so ``jobs=8`` produces byte-identical artifacts to ``jobs=1``: every work
unit carries its own spawned seed or name-keyed noise stream.

**Survivability.**  When fault injection is active (``config.faults`` or
``$REPRO_FAULTS``), a retry policy is set, checkpointing is on, or a
resume is requested, the campaign switches to the fault-tolerant path:
per-matrix work runs through
:func:`repro.runtime.resilience.resilient_map` (bounded retry with
exponential backoff, optional per-task timeouts), matrices that fail
every attempt land in a quarantine, and the campaign *completes* with
the quarantined records excluded and reported via
:class:`DegradationReport` instead of crashing.  Because fault injection
is keyed by matrix name and wraps *around* the pure task functions,
surviving matrices produce byte-identical features, times, and labels to
a fault-free run.  Partial progress is checkpointed to the artifact
cache so a killed campaign resumes (``--resume``) without redoing
completed benchmarks.  Degraded campaigns (injected faults or a
non-empty quarantine) are never written to the shared artifact cache or
the in-process memo — only canonical, complete results are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Any

from repro.core.labeling import LabeledDataset, build_labeled_dataset, common_subset
from repro.datasets import build_collection, permutation_augment
from repro.datasets.generators import MatrixRecord
from repro.experiments.config import ExperimentConfig
from repro.features import stats_for_record
from repro.features.extract import FEATURE_NAMES, features_from_stats_batch
from repro.features.stats import MatrixStats
from repro.features.table import FeatureTable
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.gpu.simulator import BenchmarkResult, _benchmark_unit
from repro.obs import TELEMETRY
from repro.runtime import (
    ArtifactCache,
    FaultSpec,
    Quarantine,
    RetryPolicy,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
    injector_for,
    parallel_map,
    resilient_map,
    reset_abort_counter,
    spec_from_env,
)

#: Benchmark tasks per checkpoint batch when resuming without an explicit
#: ``checkpoint_every`` (small enough that a kill loses little work,
#: large enough that checkpoint I/O stays negligible).
DEFAULT_CHECKPOINT_EVERY = 64

#: Cache-entry prefix separating partial-progress checkpoints from final
#: campaign artifacts (same content address, different namespace).
CHECKPOINT_PREFIX = "ckpt-"

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_SCHEMA = 1


@dataclass
class DegradationReport:
    """What the fault-tolerant campaign absorbed, skipped, and reused."""

    n_records: int
    n_survivors: int
    quarantine: Quarantine
    retried: int = 0
    resumed_stats: int = 0
    resumed_benchmarks: int = 0

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    def to_text(self) -> str:
        lines = [
            "campaign degradation report",
            f"  records     : {self.n_records}",
            f"  survivors   : {self.n_survivors}",
            f"  quarantined : {self.n_quarantined}",
            f"  retries     : {self.retried}",
        ]
        if self.resumed_stats or self.resumed_benchmarks:
            lines.append(
                f"  resumed     : {self.resumed_stats} stats, "
                f"{self.resumed_benchmarks} benchmarks"
            )
        lines.extend("  " + line for line in self.quarantine.report_lines())
        return "\n".join(lines)


@dataclass
class ExperimentData:
    """Everything the table generators consume."""

    config: ExperimentConfig
    stats: list[MatrixStats]
    features: FeatureTable
    #: arch name → benchmark results (all surviving matrices).
    results: dict[str, list[BenchmarkResult]]
    #: arch name → per-architecture labeled dataset (runnable matrices).
    datasets: dict[str, LabeledDataset]
    #: arch name → dataset restricted to the cross-arch common subset.
    common: dict[str, LabeledDataset]
    #: Generated matrices; ``None`` after a warm-cache load (matrices are
    #: deliberately not persisted — they dwarf every other artifact) and
    #: regenerated on first access via :attr:`records`.
    _records: list[MatrixRecord] | None = None
    #: Set by the fault-tolerant campaign path; ``None`` for plain runs.
    degradation: DegradationReport | None = None

    @property
    def records(self) -> list[MatrixRecord]:
        """The generated matrix records, rebuilding them if needed.

        Warm-cache loads start without matrices; consumers that need the
        raw structures (the CNN density images of Tables 6/9) trigger a
        generation-only rebuild — no stats or benchmarking re-runs.
        Quarantined matrices (if any) are excluded, keeping the records
        aligned with :attr:`features`.
        """
        if self._records is None:
            with TELEMETRY.span("experiments.records_rebuild"):
                rebuilt = _build_records(self.config, self.config.jobs)
                keep = set(self.features.names)
                self._records = [r for r in rebuilt if r.name in keep]
        return self._records

    @property
    def arch_names(self) -> list[str]:
        return list(self.datasets)


#: In-process memo: campaign content address → built data.
_CACHE: dict[str, ExperimentData] = {}


def campaign_key(config: ExperimentConfig) -> str:
    """Content address of this configuration's campaign artifacts."""
    return artifact_key(config.campaign_fields())


def checkpoint_key(config: ExperimentConfig) -> str:
    """Cache key of this configuration's partial-progress checkpoint."""
    return CHECKPOINT_PREFIX + campaign_key(config)


def _build_records(config: ExperimentConfig, jobs: int) -> list[MatrixRecord]:
    """Generation (+ augmentation) only: the matrices of the campaign."""
    collection = build_collection(
        seed=config.seed, size=config.collection_size, jobs=jobs
    )
    if not config.augment_copies:
        return list(collection.records)
    return permutation_augment(
        collection.records,
        copies=config.augment_copies,
        seed=config.seed,
        jobs=jobs,
    )

def _benchmark_all_architectures(
    records: list[MatrixRecord],
    stats: list[MatrixStats],
    config: ExperimentConfig,
    jobs: int,
) -> dict[str, list[BenchmarkResult]]:
    """Benchmark every (architecture, matrix) pair through one pool.

    The three architectures' loops are flattened into a single item list
    so they run concurrently instead of one pool drain per architecture.
    Results are re-grouped per architecture in record order.
    """
    sims = {
        name: GPUSimulator(arch, trials=config.trials, seed=config.seed)
        for name, arch in ARCHITECTURES.items()
    }
    items: list[tuple[str, tuple[str, MatrixStats]]] = [
        (arch_name, (rec.name, st))
        for arch_name in sims
        for rec, st in zip(records, stats)
    ]
    with TELEMETRY.span(
        "experiments.benchmark_all",
        n_arches=len(sims),
        n_matrices=len(records),
        jobs=jobs,
    ):
        flat = parallel_map(
            partial(_arch_benchmark_unit, sims),
            items,
            jobs=jobs,
            label="experiments.benchmark",
        )
    n = len(records)
    return {
        arch_name: flat[i * n : (i + 1) * n]
        for i, arch_name in enumerate(sims)
    }


def _arch_benchmark_unit(
    sims: dict[str, GPUSimulator], item: tuple[str, tuple[str, MatrixStats]]
) -> BenchmarkResult:
    """Picklable work unit: one (architecture, matrix) simulation."""
    arch_name, pair = item
    return _benchmark_unit(sims[arch_name], "spmv", pair)


def _record_key(record: MatrixRecord) -> str:
    """Fault/quarantine key of a generation/stats task: the matrix name."""
    return record.name


def _bench_item_key(item: tuple[str, tuple[str, MatrixStats]]) -> str:
    """Fault key of a benchmark task: ``arch:matrix-name``."""
    arch_name, pair = item
    return f"{arch_name}:{pair[0]}"


def _validate_benchmark(result: Any) -> str | None:
    """Reject garbage benchmark results (the corruption seam)."""
    if not isinstance(result, BenchmarkResult):
        return f"expected BenchmarkResult, got {type(result).__name__}"
    for fmt, seconds in result.times.items():
        if not math.isfinite(seconds) or seconds < 0:
            return f"non-finite or negative time for format {fmt!r}"
    return None


def _campaign_artifact(data: ExperimentData) -> dict[str, Any]:
    """The persistable campaign outputs (everything but the matrices)."""
    return {
        "names": list(data.features.names),
        "feature_names": list(data.features.feature_names),
        "features": data.features.values,
        "stats": data.stats,
        "results": data.results,
    }


def _data_from_artifact(
    config: ExperimentConfig, artifact: dict[str, Any]
) -> ExperimentData:
    """Reassemble :class:`ExperimentData` from cached campaign outputs.

    Labeling and subsetting are recomputed (they are cheap and pure in
    the cached results); the matrices themselves stay lazy.
    """
    features = FeatureTable(
        names=list(artifact["names"]),
        feature_names=list(artifact["feature_names"]),
        values=artifact["features"],
    )
    results: dict[str, list[BenchmarkResult]] = artifact["results"]
    datasets = {
        arch: build_labeled_dataset(arch, features, res)
        for arch, res in results.items()
    }
    return ExperimentData(
        config=config,
        stats=artifact["stats"],
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
        _records=None,
    )


def _load_checkpoint(
    disk: ArtifactCache | None, config: ExperimentConfig
) -> dict[str, Any] | None:
    """A prior run's partial progress, or ``None``."""
    if disk is None:
        return None
    payload = disk.load(checkpoint_key(config))
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != CHECKPOINT_SCHEMA
    ):
        return None
    TELEMETRY.inc("resilience.checkpoint_loads")
    return payload


def _store_checkpoint(
    disk: ArtifactCache,
    config: ExperimentConfig,
    stats_by_name: dict[str, MatrixStats],
    results_by_arch: dict[str, dict[str, BenchmarkResult]],
) -> None:
    """Persist partial progress (atomic, via the cache's store path)."""
    disk.store(
        checkpoint_key(config),
        {
            "schema": CHECKPOINT_SCHEMA,
            "stats": stats_by_name,
            "results": results_by_arch,
        },
        meta={
            "checkpoint": True,
            "config": config.campaign_fields(),
            "n_stats": len(stats_by_name),
            "n_benchmarks": sum(len(r) for r in results_by_arch.values()),
        },
    )
    TELEMETRY.inc("resilience.checkpoint_stores")


def _build_campaign(config: ExperimentConfig, jobs: int) -> ExperimentData:
    """The plain (fault-intolerant, zero-overhead) campaign build."""
    with TELEMETRY.span(
        "experiments.campaign",
        collection_size=config.collection_size,
        jobs=jobs,
    ):
        records = _build_records(config, jobs)
        with TELEMETRY.span("experiments.stats", n_matrices=len(records)):
            stats = parallel_map(
                stats_for_record, records, jobs=jobs, label="experiments.stats"
            )
        with TELEMETRY.span("experiments.features"):
            features = FeatureTable(
                names=[r.name for r in records],
                feature_names=list(FEATURE_NAMES),
                values=features_from_stats_batch(stats),
            )
        results = _benchmark_all_architectures(records, stats, config, jobs)
        datasets = {
            arch: build_labeled_dataset(arch, features, res)
            for arch, res in results.items()
        }
    return ExperimentData(
        config=config,
        stats=stats,
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
        _records=records,
    )


def _build_resilient(
    config: ExperimentConfig,
    jobs: int,
    disk: ArtifactCache | None,
    faults: FaultSpec | None,
) -> ExperimentData:
    """The fault-tolerant campaign build: retry, quarantine, checkpoint.

    Work units run through :func:`resilient_map`; matrices whose stats or
    benchmark tasks fail every attempt are quarantined and excluded, and
    the campaign completes with a :class:`DegradationReport` attached.
    Progress is checkpointed to ``disk`` between benchmark batches, so a
    crash (or an injected :class:`~repro.runtime.faults.CampaignAbort`)
    leaves a resumable trail.
    """
    policy = config.retry or RetryPolicy()
    injector = injector_for(faults)
    if injector is not None:
        reset_abort_counter()
    checkpoint_every = config.checkpoint_every
    if config.resume and checkpoint_every <= 0:
        checkpoint_every = DEFAULT_CHECKPOINT_EVERY
    checkpointing = disk is not None and checkpoint_every > 0
    ckpt = _load_checkpoint(disk, config) if config.resume else None
    quarantine = Quarantine()
    retried = 0

    stats_by_name: dict[str, MatrixStats] = dict(ckpt["stats"]) if ckpt else {}
    results_by_arch: dict[str, dict[str, BenchmarkResult]] = (
        {arch: dict(res) for arch, res in ckpt["results"].items()}
        if ckpt
        else {}
    )

    with TELEMETRY.span(
        "experiments.campaign",
        collection_size=config.collection_size,
        jobs=jobs,
        resilient=True,
    ):
        records = _build_records(config, jobs)
        resumed_stats = sum(1 for r in records if r.name in stats_by_name)
        todo = [r for r in records if r.name not in stats_by_name]
        stats_fn = (
            injector.wrap(stats_for_record, _record_key)
            if injector is not None
            else stats_for_record
        )
        if todo:
            with TELEMETRY.span("experiments.stats", n_matrices=len(todo)):
                outcome = resilient_map(
                    stats_fn,
                    todo,
                    keys=[r.name for r in todo],
                    jobs=jobs,
                    policy=policy,
                    label="experiments.stats",
                )
            retried += outcome.retried
            for rec, value, ok in zip(todo, outcome.values, outcome.ok):
                if ok:
                    stats_by_name[rec.name] = value
            for index, failure in outcome.failures.items():
                quarantine.add(todo[index].name, "stats", failure)
            if checkpointing:
                _store_checkpoint(disk, config, stats_by_name, results_by_arch)
        survivors = [r for r in records if r.name in stats_by_name]
        stats = [stats_by_name[r.name] for r in survivors]

        sims = {
            name: GPUSimulator(arch, trials=config.trials, seed=config.seed)
            for name, arch in ARCHITECTURES.items()
        }
        for arch_name in sims:
            results_by_arch.setdefault(arch_name, {})
        items = [
            (arch_name, (rec.name, st))
            for arch_name in sims
            for rec, st in zip(survivors, stats)
            if rec.name not in results_by_arch[arch_name]
        ]
        resumed_benchmarks = len(sims) * len(survivors) - len(items)
        bench_fn = partial(_arch_benchmark_unit, sims)
        if injector is not None:
            bench_fn = injector.wrap(bench_fn, _bench_item_key)
        batch = checkpoint_every if checkpointing else max(1, len(items))
        with TELEMETRY.span(
            "experiments.benchmark_all",
            n_arches=len(sims),
            n_matrices=len(survivors),
            jobs=jobs,
        ):
            for lo in range(0, len(items), batch):
                chunk = items[lo : lo + batch]
                outcome = resilient_map(
                    bench_fn,
                    chunk,
                    keys=[_bench_item_key(it) for it in chunk],
                    jobs=jobs,
                    policy=policy,
                    validate=_validate_benchmark,
                    label="experiments.benchmark",
                )
                retried += outcome.retried
                for it, value, ok in zip(chunk, outcome.values, outcome.ok):
                    if ok:
                        results_by_arch[it[0]][it[1][0]] = value
                for index, failure in outcome.failures.items():
                    arch_name, pair = chunk[index]
                    quarantine.add(
                        pair[0], f"benchmark:{arch_name}", failure
                    )
                if checkpointing:
                    _store_checkpoint(
                        disk, config, stats_by_name, results_by_arch
                    )

        # A matrix quarantined at any stage (or on any architecture) is
        # excluded everywhere, keeping features and per-arch results
        # aligned on one surviving name list.
        bad = set(quarantine.names)
        kept = [r for r in survivors if r.name not in bad]
        kept_stats = [stats_by_name[r.name] for r in kept]
        with TELEMETRY.span("experiments.features"):
            features = FeatureTable(
                names=[r.name for r in kept],
                feature_names=list(FEATURE_NAMES),
                values=features_from_stats_batch(kept_stats),
            )
        results = {
            arch_name: [results_by_arch[arch_name][r.name] for r in kept]
            for arch_name in sims
        }
        datasets = {
            arch: build_labeled_dataset(arch, features, res)
            for arch, res in results.items()
        }

    if disk is not None:
        # The campaign completed; the checkpoint has served its purpose.
        disk.remove(checkpoint_key(config))
    TELEMETRY.gauge_set("resilience.survivors", len(kept))
    report = DegradationReport(
        n_records=len(records),
        n_survivors=len(kept),
        quarantine=quarantine,
        retried=retried,
        resumed_stats=resumed_stats,
        resumed_benchmarks=resumed_benchmarks,
    )
    return ExperimentData(
        config=config,
        stats=kept_stats,
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
        _records=kept,
        degradation=report,
    )


def build_experiment_data(
    config: ExperimentConfig | None = None,
    use_cache: bool = True,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> ExperimentData:
    """Run the simulated benchmarking campaign for ``config``.

    Parameters
    ----------
    config
        Experiment configuration (default: the paper preset).
    use_cache
        Consult/populate the in-process memo.
    jobs
        Worker processes for the campaign fan-outs; ``None`` defers to
        ``config.jobs``.  Never changes any computed value.
    cache_dir
        Persistent artifact-cache directory; ``None`` defers to
        ``config.cache_dir``, then ``$REPRO_CACHE_DIR``, else the disk
        cache stays off.
    """
    if config is None:
        config = ExperimentConfig()
    jobs = config.jobs if jobs is None else jobs
    if cache_dir is None:
        cache_dir = config.cache_dir or default_cache_dir()
    faults = config.faults if config.faults is not None else spec_from_env()
    faulted = faults is not None and faults.active
    resilient = (
        faulted
        or config.resume
        or config.checkpoint_every > 0
        or config.retry is not None
    )
    key = campaign_key(config)
    disk = ArtifactCache(cache_dir) if cache_dir else None

    if not faulted:
        # Chaos runs must execute the campaign (that is their point), so
        # only fault-free builds consult the memo and the disk artifact.
        if use_cache and key in _CACHE:
            cached = _CACHE[key]
            # The memo is keyed on campaign fields only; rebind analysis
            # knobs (fold counts, NC grids...) to the caller's config.
            return (
                cached
                if cached.config == config
                else replace(cached, config=config)
            )
        if disk is not None:
            artifact = disk.load(key)
            if artifact is not None:
                data = _data_from_artifact(config, artifact)
                if use_cache:
                    _CACHE[key] = data
                return data

    if resilient:
        data = _build_resilient(config, jobs, disk, faults if faulted else None)
    else:
        data = _build_campaign(config, jobs)

    # Only canonical campaigns — no injected faults, nothing quarantined —
    # may populate the shared artifact cache and the in-process memo.
    degraded = faulted or (
        data.degradation is not None and bool(data.degradation.quarantine)
    )
    if not degraded:
        if disk is not None:
            disk.store(
                key,
                _campaign_artifact(data),
                meta={
                    "config": config.campaign_fields(),
                    "fingerprint": code_fingerprint(),
                    "n_matrices": len(data.features),
                    "arches": list(data.results),
                },
            )
        if use_cache:
            _CACHE[key] = data
    return data
