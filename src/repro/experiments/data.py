"""Build (and cache) the shared experiment dataset.

Everything downstream of the simulated benchmarking campaign — features,
per-architecture labels, common subsets — is deterministic in the
configuration, so one build is shared by all tables and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labeling import LabeledDataset, build_labeled_dataset, common_subset
from repro.datasets import build_collection, permutation_augment
from repro.datasets.generators import MatrixRecord
from repro.experiments.config import ExperimentConfig
from repro.features import extract_features_collection
from repro.features.stats import MatrixStats, compute_stats
from repro.features.table import FeatureTable
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.gpu.simulator import BenchmarkResult


@dataclass
class ExperimentData:
    """Everything the table generators consume."""

    config: ExperimentConfig
    records: list[MatrixRecord]
    stats: list[MatrixStats]
    features: FeatureTable
    #: arch name → benchmark results (all matrices, incl. excluded ones).
    results: dict[str, list[BenchmarkResult]]
    #: arch name → per-architecture labeled dataset (runnable matrices).
    datasets: dict[str, LabeledDataset]
    #: arch name → dataset restricted to the cross-arch common subset.
    common: dict[str, LabeledDataset]

    @property
    def arch_names(self) -> list[str]:
        return list(self.datasets)


_CACHE: dict[ExperimentConfig, ExperimentData] = {}


def build_experiment_data(
    config: ExperimentConfig | None = None, use_cache: bool = True
) -> ExperimentData:
    """Run the simulated benchmarking campaign for ``config``."""
    if config is None:
        config = ExperimentConfig()
    if use_cache and config in _CACHE:
        return _CACHE[config]
    collection = build_collection(
        seed=config.seed, size=config.collection_size
    )
    records = (
        permutation_augment(
            collection.records, copies=config.augment_copies, seed=config.seed
        )
        if config.augment_copies
        else list(collection.records)
    )
    stats = [compute_stats(r.matrix) for r in records]
    features = extract_features_collection(records, stats)
    results: dict[str, list[BenchmarkResult]] = {}
    datasets: dict[str, LabeledDataset] = {}
    for name, arch in ARCHITECTURES.items():
        sim = GPUSimulator(arch, trials=config.trials, seed=config.seed)
        res = sim.benchmark_collection(records, stats)
        results[name] = res
        datasets[name] = build_labeled_dataset(name, features, res)
    data = ExperimentData(
        config=config,
        records=records,
        stats=stats,
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
    )
    if use_cache:
        _CACHE[config] = data
    return data
