"""Build (and cache) the shared experiment dataset.

Everything downstream of the simulated benchmarking campaign — features,
per-architecture labels, common subsets — is deterministic in the
configuration, so one build is shared by all tables and benches.

Two layers make repeat builds cheap:

- an in-process memo keyed by the campaign's content address, and
- the persistent :class:`~repro.runtime.cache.ArtifactCache` (opt-in via
  ``cache_dir`` / ``--cache-dir`` / ``$REPRO_CACHE_DIR``), which lets a
  warm ``repro tables`` run skip the campaign entirely.

The campaign fan-outs (generation, permutation, stats, per-architecture
benchmarking) all run through :func:`repro.runtime.parallel.parallel_map`,
so ``jobs=8`` produces byte-identical artifacts to ``jobs=1``: every work
unit carries its own spawned seed or name-keyed noise stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Any

from repro.core.labeling import LabeledDataset, build_labeled_dataset, common_subset
from repro.datasets import build_collection, permutation_augment
from repro.datasets.generators import MatrixRecord
from repro.experiments.config import ExperimentConfig
from repro.features import stats_for_record
from repro.features.extract import FEATURE_NAMES, features_from_stats_batch
from repro.features.stats import MatrixStats
from repro.features.table import FeatureTable
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.gpu.simulator import BenchmarkResult, _benchmark_unit
from repro.obs import TELEMETRY
from repro.runtime import (
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
    parallel_map,
)


@dataclass
class ExperimentData:
    """Everything the table generators consume."""

    config: ExperimentConfig
    stats: list[MatrixStats]
    features: FeatureTable
    #: arch name → benchmark results (all matrices, incl. excluded ones).
    results: dict[str, list[BenchmarkResult]]
    #: arch name → per-architecture labeled dataset (runnable matrices).
    datasets: dict[str, LabeledDataset]
    #: arch name → dataset restricted to the cross-arch common subset.
    common: dict[str, LabeledDataset]
    #: Generated matrices; ``None`` after a warm-cache load (matrices are
    #: deliberately not persisted — they dwarf every other artifact) and
    #: regenerated on first access via :attr:`records`.
    _records: list[MatrixRecord] | None = None

    @property
    def records(self) -> list[MatrixRecord]:
        """The generated matrix records, rebuilding them if needed.

        Warm-cache loads start without matrices; consumers that need the
        raw structures (the CNN density images of Tables 6/9) trigger a
        generation-only rebuild — no stats or benchmarking re-runs.
        """
        if self._records is None:
            with TELEMETRY.span("experiments.records_rebuild"):
                self._records = _build_records(self.config, self.config.jobs)
        return self._records

    @property
    def arch_names(self) -> list[str]:
        return list(self.datasets)


#: In-process memo: campaign content address → built data.
_CACHE: dict[str, ExperimentData] = {}


def campaign_key(config: ExperimentConfig) -> str:
    """Content address of this configuration's campaign artifacts."""
    return artifact_key(config.campaign_fields())


def _build_records(config: ExperimentConfig, jobs: int) -> list[MatrixRecord]:
    """Generation (+ augmentation) only: the matrices of the campaign."""
    collection = build_collection(
        seed=config.seed, size=config.collection_size, jobs=jobs
    )
    if not config.augment_copies:
        return list(collection.records)
    return permutation_augment(
        collection.records,
        copies=config.augment_copies,
        seed=config.seed,
        jobs=jobs,
    )


def _benchmark_all_architectures(
    records: list[MatrixRecord],
    stats: list[MatrixStats],
    config: ExperimentConfig,
    jobs: int,
) -> dict[str, list[BenchmarkResult]]:
    """Benchmark every (architecture, matrix) pair through one pool.

    The three architectures' loops are flattened into a single item list
    so they run concurrently instead of one pool drain per architecture.
    Results are re-grouped per architecture in record order.
    """
    sims = {
        name: GPUSimulator(arch, trials=config.trials, seed=config.seed)
        for name, arch in ARCHITECTURES.items()
    }
    items: list[tuple[str, tuple[str, MatrixStats]]] = [
        (arch_name, (rec.name, st))
        for arch_name in sims
        for rec, st in zip(records, stats)
    ]
    with TELEMETRY.span(
        "experiments.benchmark_all",
        n_arches=len(sims),
        n_matrices=len(records),
        jobs=jobs,
    ):
        flat = parallel_map(
            partial(_arch_benchmark_unit, sims),
            items,
            jobs=jobs,
            label="experiments.benchmark",
        )
    n = len(records)
    return {
        arch_name: flat[i * n : (i + 1) * n]
        for i, arch_name in enumerate(sims)
    }


def _arch_benchmark_unit(
    sims: dict[str, GPUSimulator], item: tuple[str, tuple[str, MatrixStats]]
) -> BenchmarkResult:
    """Picklable work unit: one (architecture, matrix) simulation."""
    arch_name, pair = item
    return _benchmark_unit(sims[arch_name], pair)


def _campaign_artifact(data: ExperimentData) -> dict[str, Any]:
    """The persistable campaign outputs (everything but the matrices)."""
    return {
        "names": list(data.features.names),
        "feature_names": list(data.features.feature_names),
        "features": data.features.values,
        "stats": data.stats,
        "results": data.results,
    }


def _data_from_artifact(
    config: ExperimentConfig, artifact: dict[str, Any]
) -> ExperimentData:
    """Reassemble :class:`ExperimentData` from cached campaign outputs.

    Labeling and subsetting are recomputed (they are cheap and pure in
    the cached results); the matrices themselves stay lazy.
    """
    features = FeatureTable(
        names=list(artifact["names"]),
        feature_names=list(artifact["feature_names"]),
        values=artifact["features"],
    )
    results: dict[str, list[BenchmarkResult]] = artifact["results"]
    datasets = {
        arch: build_labeled_dataset(arch, features, res)
        for arch, res in results.items()
    }
    return ExperimentData(
        config=config,
        stats=artifact["stats"],
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
        _records=None,
    )


def build_experiment_data(
    config: ExperimentConfig | None = None,
    use_cache: bool = True,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> ExperimentData:
    """Run the simulated benchmarking campaign for ``config``.

    Parameters
    ----------
    config
        Experiment configuration (default: the paper preset).
    use_cache
        Consult/populate the in-process memo.
    jobs
        Worker processes for the campaign fan-outs; ``None`` defers to
        ``config.jobs``.  Never changes any computed value.
    cache_dir
        Persistent artifact-cache directory; ``None`` defers to
        ``config.cache_dir``, then ``$REPRO_CACHE_DIR``, else the disk
        cache stays off.
    """
    if config is None:
        config = ExperimentConfig()
    jobs = config.jobs if jobs is None else jobs
    if cache_dir is None:
        cache_dir = config.cache_dir or default_cache_dir()
    key = campaign_key(config)

    if use_cache and key in _CACHE:
        cached = _CACHE[key]
        # The memo is keyed on campaign fields only; rebind analysis
        # knobs (fold counts, NC grids...) to the caller's config.
        return cached if cached.config == config else replace(cached, config=config)

    disk = ArtifactCache(cache_dir) if cache_dir else None
    if disk is not None:
        artifact = disk.load(key)
        if artifact is not None:
            data = _data_from_artifact(config, artifact)
            if use_cache:
                _CACHE[key] = data
            return data

    with TELEMETRY.span(
        "experiments.campaign",
        collection_size=config.collection_size,
        jobs=jobs,
    ):
        records = _build_records(config, jobs)
        with TELEMETRY.span("experiments.stats", n_matrices=len(records)):
            stats = parallel_map(
                stats_for_record, records, jobs=jobs, label="experiments.stats"
            )
        with TELEMETRY.span("experiments.features"):
            features = FeatureTable(
                names=[r.name for r in records],
                feature_names=list(FEATURE_NAMES),
                values=features_from_stats_batch(stats),
            )
        results = _benchmark_all_architectures(records, stats, config, jobs)
        datasets = {
            arch: build_labeled_dataset(arch, features, res)
            for arch, res in results.items()
        }
    data = ExperimentData(
        config=config,
        stats=stats,
        features=features,
        results=results,
        datasets=datasets,
        common=common_subset(datasets),
        _records=records,
    )
    if disk is not None:
        disk.store(
            key,
            _campaign_artifact(data),
            meta={
                "config": config.campaign_fields(),
                "fingerprint": code_fingerprint(),
                "n_matrices": len(records),
                "arches": list(results),
            },
        )
    if use_cache:
        _CACHE[key] = data
    return data
