"""Shape validation: do the paper's qualitative findings hold here?

The reproduction targets the *shape* of the paper's results — who wins,
by roughly what factor, where the crossovers fall — not absolute numbers
(the substrate is a performance-model simulator, the dataset synthetic).
This module encodes each headline finding as a checkable claim, evaluates
all of them against generated tables, and prints a verdict sheet.

Run:  python -m repro.experiments.validate [--small]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from repro.experiments import table4, table6, table7
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data


@dataclass(frozen=True)
class ClaimResult:
    claim: str
    paper_evidence: str
    measured: str
    holds: bool


def _mean_by_algo(result, value_col: str) -> dict[str, float]:
    out: dict[str, list[float]] = {}
    idx = result.headers.index(value_col)
    algo_idx = result.headers.index(
        "Algorithm" if "Algorithm" in result.headers else "MLM"
    )
    for row in result.rows:
        out.setdefault(row[algo_idx], []).append(row[idx])
    return {k: float(np.mean(v)) for k, v in out.items()}


def check_claims(data: ExperimentData) -> list[ClaimResult]:
    claims: list[ClaimResult] = []

    # ---- Table 3 shape -------------------------------------------------
    dist = {a: data.datasets[a].class_distribution() for a in data.arch_names}

    def frac(arch: str, fmt: str) -> float:
        return dist[arch][fmt] / sum(dist[arch].values())

    claims.append(
        ClaimResult(
            claim="CSR is the majority class on every architecture",
            paper_evidence="Table 3: CSR 66/67/75% on Pascal/Volta/Turing",
            measured=", ".join(
                f"{a}: {frac(a, 'csr'):.0%}" for a in data.arch_names
            ),
            holds=all(
                max(dist[a], key=dist[a].get) == "csr" for a in data.arch_names
            ),
        )
    )
    claims.append(
        ClaimResult(
            claim="COO wins far more often on Turing than on Volta",
            paper_evidence="Table 3: 415 COO on Turing vs 4 on Volta",
            measured=f"turing {dist['turing']['coo']} vs volta "
            f"{dist['volta']['coo']}",
            holds=dist["turing"]["coo"] > 3 * max(dist["volta"]["coo"], 1),
        )
    )
    claims.append(
        ClaimResult(
            claim="HYB wins are concentrated on Pascal",
            paper_evidence="Table 3: 217 HYB on Pascal vs 3 (Volta), 40 (Turing)",
            measured=", ".join(
                f"{a}: {dist[a]['hyb']}" for a in data.arch_names
            ),
            holds=dist["pascal"]["hyb"]
            >= max(dist["volta"]["hyb"], dist["turing"]["hyb"]),
        )
    )

    # ---- Table 4 shape ---------------------------------------------------
    t4 = table4.generate(data)
    mcc4 = _mean_by_algo(t4, "MCC")
    kmeans_best = max(
        mcc4["K-Means-VOTE"], mcc4["K-Means-RF"], mcc4["K-Means-LR"]
    )
    meanshift_best = max(
        v for k, v in mcc4.items() if k.startswith("Mean-Shift")
    )
    claims.append(
        ClaimResult(
            claim="every Mean-Shift variant loses to the best K-Means variant",
            paper_evidence="Table 4: Mean-Shift MCC 0.08-0.21 vs K-Means 0.31-0.63",
            measured=f"K-Means best {kmeans_best:.3f} vs Mean-Shift best "
            f"{meanshift_best:.3f}",
            holds=kmeans_best > meanshift_best,
        )
    )
    claims.append(
        ClaimResult(
            claim="Mean-Shift finds far fewer clusters than tuned K-Means",
            paper_evidence="Table 4: NC ~30 for Mean-Shift vs 100-400 for K-Means",
            measured=f"NCs: "
            f"{ {k: int(v) for k, v in _mean_by_algo(t4, 'NC').items()} }",
            holds=_mean_by_algo(t4, "NC")["Mean-Shift-VOTE"]
            < _mean_by_algo(t4, "NC")["K-Means-VOTE"],
        )
    )

    # ---- Table 6 shape -------------------------------------------------
    t6 = table6.generate(data, models=("DT", "RF", "KNN", "XGBoost", "CNN"))
    mcc6 = _mean_by_algo(t6, "MCC")
    claims.append(
        ClaimResult(
            claim="tree ensembles (RF/XGBoost) beat the CNN on MCC",
            paper_evidence="Table 6: RF/XGBoost MCC 0.53-0.87 vs CNN 0.20-0.72",
            measured=f"RF {mcc6['RF']:.3f}, XGBoost {mcc6['XGBoost']:.3f}, "
            f"CNN {mcc6['CNN']:.3f}",
            holds=max(mcc6["RF"], mcc6["XGBoost"]) > mcc6["CNN"],
        )
    )
    gt6 = _mean_by_algo(t6, "GT")
    claims.append(
        ClaimResult(
            claim="no model beats the oracle (GT <= 1)",
            paper_evidence="Table 6: all GT entries are 1 or lower",
            measured=f"max GT {max(gt6.values()):.3f}",
            holds=max(gt6.values()) <= 1.0 + 1e-9,
        )
    )
    csr6 = _mean_by_algo(t6, "CSR")
    claims.append(
        ClaimResult(
            claim="good supervised models beat the always-CSR baseline",
            paper_evidence="Table 6: CSR speedups 1.02-1.07",
            measured=f"RF CSR speedup {csr6['RF']:.3f}",
            holds=csr6["RF"] > 1.0,
        )
    )

    # ---- semi-supervised vs supervised (the headline) ---------------------
    claims.append(
        ClaimResult(
            claim="semi-supervised K-Means is competitive with supervised "
            "models (within ~70% of RF's MCC)",
            paper_evidence="§5.3/§7: 'our method attains comparable performance'",
            measured=f"K-Means best {kmeans_best:.3f} vs RF {mcc6['RF']:.3f}",
            holds=kmeans_best > 0.7 * mcc6["RF"],
        )
    )

    # ---- Table 7 shape ----------------------------------------------------
    t7 = table7.generate(data, models=("RF", "XGBoost"))
    i0 = t7.headers.index("MCC@0%")
    i50 = t7.headers.index("MCC@50%")
    gains = [row[i50] - row[i0] for row in t7.rows]
    claims.append(
        ClaimResult(
            claim="retraining with target data improves supervised transfer",
            paper_evidence="Table 7: 'performance improvement when going "
            "from 0 to 25%' (§5.3)",
            measured=f"mean MCC gain 0%->50%: {np.mean(gains):+.3f}",
            holds=float(np.mean(gains)) > -0.02,
        )
    )
    transfer_mcc = float(np.mean([row[i0] for row in t7.rows]))
    local_mcc = float(np.mean([mcc6["RF"], mcc6["XGBoost"]]))
    claims.append(
        ClaimResult(
            claim="0%-transfer MCC sits below the local MCC",
            paper_evidence="§5.3: 'the MCC scores are noticeably lower than "
            "those presented in Table 6'",
            measured=f"transfer {transfer_mcc:.3f} vs local {local_mcc:.3f}",
            holds=transfer_mcc < local_mcc,
        )
    )
    return claims


def render(claims: list[ClaimResult]) -> str:
    lines = ["Paper-shape validation", "=" * 70]
    for c in claims:
        status = "HOLDS " if c.holds else "FAILS "
        lines.append(f"[{status}] {c.claim}")
        lines.append(f"    paper:    {c.paper_evidence}")
        lines.append(f"    measured: {c.measured}")
    held = sum(c.holds for c in claims)
    lines.append("=" * 70)
    lines.append(f"{held}/{len(claims)} claims hold")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument(
        "--size", type=int, default=None,
        help="override collection size (with 3-fold CV) for faster runs",
    )
    args = parser.parse_args(argv)
    if args.size is not None:
        config = ExperimentConfig(
            collection_size=args.size, augment_copies=0, trials=10,
            n_folds=3,
        )
    elif args.small:
        config = ExperimentConfig.small()
    else:
        config = ExperimentConfig.paper()
    data = build_experiment_data(config)
    claims = check_claims(data)
    print(render(claims))
    return 0 if all(c.holds for c in claims) else 1


if __name__ == "__main__":
    sys.exit(main())
