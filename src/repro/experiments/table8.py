"""Table 8: format-conversion cost and total benchmarking time.

Two parts, as in the paper: (a) the relative cost of converting a CSR
matrix into each benchmarked format, normalised to one CSR SpMV; and
(b) the estimated wall-clock hours a real benchmarking campaign over the
collection would take on each platform (5 s .mtx read per matrix +
conversions + ``trials`` SpMV repetitions per format).
"""

from __future__ import annotations

from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.gpu.simulator import CONVERSION_COST_RELATIVE


def generate(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
) -> TableResult:
    if data is None:
        data = build_experiment_data(config)
    cfg = data.config
    table = TableResult(
        table_id="Table 8",
        title=(
            "Relative cost of format conversion and estimated benchmarking "
            "time per platform"
        ),
        headers=["Row", "Value"],
    )
    for fmt in ("coo", "ell", "hyb"):
        table.add_row(
            f"conversion cost {fmt.upper()} (x CSR SpMV)",
            CONVERSION_COST_RELATIVE[fmt],
        )
    # Campaign cost: the paper benchmarks 100 trials per (matrix, format);
    # we report the estimate for our collection at the paper's trial count.
    for name, arch in ARCHITECTURES.items():
        sim = GPUSimulator(arch, trials=100, seed=cfg.seed)
        seconds = sim.campaign_seconds(data.results[name])
        table.add_row(
            f"benchmarking time {name} (hours)", round(seconds / 3600.0, 2)
        )
    table.notes.append(
        "paper reports 24-27 hours per GPU for 1929(+augmented) SuiteSparse "
        "matrices; our synthetic matrices are ~1000x smaller, so the "
        "dominant term here is the fixed 5 s/matrix .mtx read time"
    )
    return table
