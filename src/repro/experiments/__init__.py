"""Experiment harness: one generator per table of the paper's evaluation.

Every module exposes ``generate(data, config) -> TableResult``; the
:mod:`repro.experiments.runner` regenerates the full evaluation and the
``benchmarks/`` suite times each table individually.
"""

from repro.experiments.common import TableResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import ExperimentData, build_experiment_data

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "TableResult",
    "build_experiment_data",
]
