"""Experiment configuration presets.

The paper's campaign uses 1929 SuiteSparse matrices plus permutation
augmentation and 100-trial timing; the ``paper()`` preset scales that to
the synthetic collection, while ``small()`` keeps CI/test runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_nc_grid() -> tuple[int, ...]:
    # Scaled version of the paper's NC choices (they use 30..2000 on ~6-9k
    # matrices; our collections are ~10x smaller).
    return (25, 50, 100, 150)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment table."""

    collection_size: int = 400
    augment_copies: int = 1
    trials: int = 20
    seed: int = 20210809
    n_folds: int = 5
    #: Candidate cluster counts for K-Means / Birch (the paper tunes NC per
    #: algorithm and architecture in preliminary experiments).
    nc_grid: tuple[int, ...] = field(default_factory=_default_nc_grid)
    #: Fraction of each dataset held out for transfer-test evaluation.
    transfer_test_fraction: float = 0.3

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Fast preset for tests: ~5x smaller than the benchmark preset."""
        return cls(
            collection_size=120,
            augment_copies=0,
            trials=5,
            n_folds=3,
            nc_grid=(15, 30),
        )

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Benchmark-harness preset (regenerates every table)."""
        return cls()
