"""Experiment configuration presets.

The paper's campaign uses 1929 SuiteSparse matrices plus permutation
augmentation and 100-trial timing; the ``paper()`` preset scales that to
the synthetic collection, while ``small()`` keeps CI/test runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime.faults import FaultSpec
from repro.runtime.resilience import RetryPolicy


def _default_nc_grid() -> tuple[int, ...]:
    # Scaled version of the paper's NC choices (they use 30..2000 on ~6-9k
    # matrices; our collections are ~10x smaller).
    return (25, 50, 100, 150)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment table.

    Two kinds of fields live here:

    - *Science* knobs (sizes, seeds, trials, folds…) that determine the
      numbers in every table.
    - *Execution* knobs (``jobs``, ``cache_dir``) that only control how
      fast the campaign runs and where its artifacts persist.  They are
      excluded from :meth:`campaign_fields` because, by the determinism
      contract, they must not change any result.
    """

    collection_size: int = 400
    augment_copies: int = 1
    trials: int = 20
    seed: int = 20210809
    n_folds: int = 5
    #: Candidate cluster counts for K-Means / Birch (the paper tunes NC per
    #: algorithm and architecture in preliminary experiments).
    nc_grid: tuple[int, ...] = field(default_factory=_default_nc_grid)
    #: Fraction of each dataset held out for transfer-test evaluation.
    transfer_test_fraction: float = 0.3
    #: Worker processes for the campaign fan-outs (1 = serial inline,
    #: 0 = one per CPU core).  Must not affect any computed value.
    jobs: int = 1
    #: Directory of the persistent artifact cache (None = disk cache off).
    cache_dir: str | None = None
    #: Fault-injection spec for chaos runs (None = no injection; the
    #: ``$REPRO_FAULTS`` environment variable is consulted as a
    #: fallback).  Execution knob: survivors' results are unchanged.
    faults: FaultSpec | None = None
    #: Retry/backoff/timeout policy for the campaign's fault-tolerant
    #: path (None = the default :class:`RetryPolicy` when that path is
    #: active).  Execution knob.
    retry: RetryPolicy | None = None
    #: Store a partial-progress checkpoint every N benchmark tasks
    #: (0 = off; requires a cache directory).  Execution knob.
    checkpoint_every: int = 0
    #: Reuse a previous run's checkpoint instead of redoing its work
    #: (requires a cache directory).  Execution knob.
    resume: bool = False

    def campaign_fields(self) -> dict[str, Any]:
        """The fields the benchmarking-campaign artifacts depend on.

        This is the configuration half of the artifact-cache key: only
        knobs that change the generated matrices, their features, or
        their benchmark results belong here.  Analysis knobs (fold
        counts, NC grids, transfer fractions) and execution knobs
        (``jobs``, ``cache_dir``) deliberately do not, so those runs
        share one cached campaign.
        """
        return {
            "collection_size": self.collection_size,
            "augment_copies": self.augment_copies,
            "trials": self.trials,
            "seed": self.seed,
        }

    @classmethod
    def small(cls, **overrides: Any) -> "ExperimentConfig":
        """Fast preset for tests: ~5x smaller than the benchmark preset."""
        defaults: dict[str, Any] = dict(
            collection_size=120,
            augment_copies=0,
            trials=5,
            n_folds=3,
            nc_grid=(15, 30),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper(cls, **overrides: Any) -> "ExperimentConfig":
        """Benchmark-harness preset (regenerates every table)."""
        return cls(**overrides)
