"""repro — reproduction of the ICPP Workshops 2021 paper on automated
sparse matrix format selection with supervised and semi-supervised ML.

The package is organised bottom-up:

- :mod:`repro.formats`  — sparse matrix storage formats (COO, CSR, CSC, ELL,
  HYB, DIA) with NumPy-vectorised SpMV kernels and MatrixMarket I/O.
- :mod:`repro.datasets` — synthetic SuiteSparse-like matrix collection.
- :mod:`repro.gpu`      — analytical GPU performance-model simulator for the
  three architectures of the paper (Pascal, Volta, Turing).
- :mod:`repro.features` — the 21 statistical features of Table 1.
- :mod:`repro.ml`       — from-scratch ML: clustering, classifiers, PCA,
  preprocessing, metrics, model selection.
- :mod:`repro.core`     — the paper's contribution: the semi-supervised
  format selector, supervised baselines, and the transfer workflow.
- :mod:`repro.experiments` — generators for every table of the evaluation.
"""

from repro._version import __version__

__all__ = ["__version__"]
