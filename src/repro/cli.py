"""Command-line interface.

Subcommands:

- ``features <file.mtx>`` — print the 21 Table-1 features of a matrix.
- ``benchmark <file.mtx> --arch volta`` — simulated per-format SpMV times.
- ``train --size 200 --arch volta --out selector.npz`` — build a synthetic
  collection, benchmark it, train a K-Means-VOTE selector, freeze it.
- ``predict <file.mtx> --model selector.npz`` — format recommendation.
- ``tables [--small] [--only table3 ...]`` — regenerate the paper tables.
- ``stats <trace.jsonl>`` — hot-path report from a ``--profile`` trace.

Every subcommand accepts ``--profile [PATH]``: telemetry is switched on
for the run, and on exit the span tree plus a metrics snapshot is printed
to stderr (and the Chrome-trace JSONL written to PATH when given).

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__
from repro.core.deploy import FrozenSelector, freeze
from repro.core.labeling import build_labeled_dataset
from repro.core.semisupervised import ClusterFormatSelector
from repro.datasets import build_collection
from repro.features import FEATURE_NAMES, extract_features, extract_features_collection
from repro.formats import read_matrix_market
from repro.gpu import ARCHITECTURES, GPUSimulator


def _cmd_features(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    vec = extract_features(matrix)
    width = max(len(n) for n in FEATURE_NAMES)
    for name, value in zip(FEATURE_NAMES, vec):
        print(f"{name:<{width}}  {value:.6g}")
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    arch = ARCHITECTURES[args.arch]
    sim = GPUSimulator(arch, trials=args.trials, seed=args.seed)
    result = sim.benchmark(str(args.matrix), matrix)
    print(f"simulated {arch.model} ({arch.microarchitecture}), "
          f"{args.trials} trials")
    for fmt in ("coo", "csr", "ell", "hyb"):
        if fmt in result.times:
            t = result.times[fmt]
            marker = "  <- best" if fmt == result.best_format else ""
            print(f"  {fmt}: {t * 1e6:10.3f} us{marker}")
        else:
            print(f"  {fmt}: excluded ({result.excluded[fmt]})")
    if result.runnable:
        print(f"speedup of best over CSR: "
              f"{result.times['csr'] / result.times[result.best_format]:.2f}x")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    print(f"building {args.size}-matrix collection (seed {args.seed}) ...")
    collection = build_collection(seed=args.seed, size=args.size)
    features = extract_features_collection(collection.records)
    arch = ARCHITECTURES[args.arch]
    print(f"benchmarking on simulated {arch.model} ...")
    sim = GPUSimulator(arch, trials=args.trials, seed=args.seed)
    dataset = build_labeled_dataset(
        args.arch, features, sim.benchmark_collection(collection.records)
    )
    print(f"training K-Means-{args.labeler.upper()} "
          f"(NC={args.clusters}) on {len(dataset)} matrices ...")
    selector = ClusterFormatSelector(
        "kmeans", args.labeler, args.clusters, seed=args.seed
    )
    selector.fit(dataset.X, dataset.labels)
    frozen = freeze(selector)
    frozen.save(args.out)
    train_acc = float(np.mean(frozen.predict(dataset.X) == dataset.labels))
    print(f"saved {frozen.n_centroids} labeled centroids to {args.out} "
          f"(training accuracy {train_acc:.3f})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    frozen = FrozenSelector.load(args.model)
    matrix = read_matrix_market(args.matrix)
    vec = extract_features(matrix)[None, :]
    label = frozen.predict(vec)[0]
    cluster = int(frozen.assign(vec)[0])
    print(f"recommended format: {label} (centroid #{cluster} of "
          f"{frozen.n_centroids})")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded: list[str] = []
    if args.small:
        forwarded.append("--small")
    if args.only:
        forwarded += ["--only", *args.only]
    if args.markdown:
        forwarded += ["--markdown", args.markdown]
    return runner_main(forwarded)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import TraceParseError, stats_report

    try:
        print(stats_report(args.trace, top=args.top))
    except FileNotFoundError:
        print(f"repro stats: no such trace file: {args.trace}",
              file=sys.stderr)
        return 1
    except TraceParseError as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 1
    return 0


#: Sentinel for ``--profile`` given without a PATH operand.
_PROFILE_STDERR_ONLY = "-"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    # Shared by every subcommand (argparse only honours flags placed
    # after the subcommand name when they live on the subparser).
    profile_parent = argparse.ArgumentParser(add_help=False)
    profile_parent.add_argument(
        "--profile",
        nargs="?",
        const=_PROFILE_STDERR_ONLY,
        default=None,
        metavar="PATH",
        help="enable telemetry; dump span tree + metrics on exit "
             "(and write a Chrome-trace JSONL to PATH when given)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("features", parents=[profile_parent],
                       help="print Table-1 features of a matrix")
    p.add_argument("matrix", help=".mtx file")
    p.set_defaults(func=_cmd_features)

    p = sub.add_parser("benchmark", parents=[profile_parent],
                       help="simulated per-format SpMV times")
    p.add_argument("matrix", help=".mtx file")
    p.add_argument("--arch", choices=sorted(ARCHITECTURES), default="volta")
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_benchmark)

    p = sub.add_parser("train", parents=[profile_parent],
                       help="train and freeze a selector")
    p.add_argument("--size", type=int, default=200)
    p.add_argument("--arch", choices=sorted(ARCHITECTURES), default="volta")
    p.add_argument("--labeler", choices=("vote", "lr", "rf"), default="vote")
    p.add_argument("--clusters", type=int, default=40)
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output .npz path")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("predict", parents=[profile_parent],
                       help="recommend a format for a matrix")
    p.add_argument("matrix", help=".mtx file")
    p.add_argument("--model", required=True, help="frozen selector .npz")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("tables", parents=[profile_parent],
                       help="regenerate the paper's tables")
    p.add_argument("--small", action="store_true")
    p.add_argument("--only", nargs="*", default=None)
    p.add_argument("--markdown", default=None)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("stats",
                       help="aggregate a --profile trace into a hot-path "
                            "report")
    p.add_argument("trace", help="trace .jsonl written by --profile")
    p.add_argument("--top", type=int, default=None,
                   help="show only the N hottest spans")
    p.set_defaults(func=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    profile = getattr(args, "profile", None)
    if profile is None:
        return args.func(args)

    from repro.obs import TELEMETRY, dump_profile

    TELEMETRY.enable()
    TELEMETRY.reset()
    try:
        with TELEMETRY.span(f"cli.{args.command}"):
            rc = args.func(args)
    finally:
        trace_path = None if profile == _PROFILE_STDERR_ONLY else profile
        dump_profile(TELEMETRY, trace_path)
        TELEMETRY.disable()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
