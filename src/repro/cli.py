"""Command-line interface.

Subcommands:

- ``features <file.mtx>`` — print the 21 Table-1 features of a matrix.
- ``benchmark <file.mtx> --arch volta`` — simulated per-format SpMV times.
- ``train --size 200 --arch volta --out selector.npz`` — build a synthetic
  collection, benchmark it, train a K-Means-VOTE selector, freeze it.
- ``predict <file.mtx> --model selector.npz`` — format recommendation
  (degrades to a CSR fallback when the model is unusable; exit codes:
  0 = recommendation printed, 1 = model problem under ``--strict``,
  2 = unusable input matrix).
- ``predict-batch <dir|manifest> --model selector.npz`` — batched
  recommendations for a whole collection (a directory of ``.mtx`` files,
  or a manifest listing one path per line), one JSON object per matrix
  on stdout.  Runs the sharded batch-inference engine
  (``repro.inference``): answers are bit-identical to per-matrix
  ``predict``, for every ``--jobs``/``--shard-size`` combination;
  unreadable matrices are quarantined and answered with the fallback
  format instead of failing the run.
- ``serve --model selector.npz [--socket PATH]`` — long-running resilient
  selector service (JSONL over stdin/stdout, or a Unix socket): hardened
  ingestion, bounded-queue admission control with load shedding, a
  circuit breaker around inference, an out-of-distribution guard, and
  hot model reload with shadow validation.  ``$REPRO_FAULTS`` injects
  deterministic inference faults, same as for campaigns.
- ``tables [--small] [--only table3 ...]`` — regenerate the paper tables.
- ``chaos [--fail 0.2 ...]`` — run a fault-injected campaign and report
  what the resilience layer absorbed (``--verify`` cross-checks that the
  survivors match a fault-free run byte for byte).  With
  ``--target serve`` the same name-keyed fault stream is aimed at the
  serving stack instead: a deterministic drill of malformed/oversized
  payloads, queue-overflowing bursts, injected inference faults, and a
  corrupt-then-good mid-run model swap.
- ``stats <trace.jsonl>`` — hot-path report from a ``--profile`` trace.
- ``cache info|clear`` — inspect or purge the campaign artifact cache.

Every subcommand accepts ``--profile [PATH]``: telemetry is switched on
for the run, and on exit the span tree plus a metrics snapshot is printed
to stderr (and the Chrome-trace JSONL written to PATH when given).

The campaign subcommands (``train``, ``tables``) accept ``--jobs N``
(process-pool fan-out; results are bit-identical for any N) and
``--cache-dir PATH`` (persist campaign artifacts so warm runs skip the
campaign; also settable via ``$REPRO_CACHE_DIR``), plus the resilience
knobs ``--retries`` / ``--task-timeout`` / ``--checkpoint-every`` /
``--resume``.  The ``$REPRO_FAULTS`` environment variable injects
deterministic faults into any campaign (see ``repro.runtime.faults``);
an injected mid-campaign abort exits with code 3, leaving checkpoints
behind for ``--resume``.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__
from repro.core.deploy import FallbackSelector, freeze
from repro.core.semisupervised import ClusterFormatSelector
from repro.features import FEATURE_NAMES, extract_features
from repro.formats import read_matrix_market
from repro.gpu import ARCHITECTURES, GPUSimulator
from repro.runtime.faults import CampaignAbort


def _cmd_features(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    vec = extract_features(matrix)
    width = max(len(n) for n in FEATURE_NAMES)
    for name, value in zip(FEATURE_NAMES, vec):
        print(f"{name:<{width}}  {value:.6g}")
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    arch = ARCHITECTURES[args.arch]
    sim = GPUSimulator(arch, trials=args.trials, seed=args.seed)
    result = sim.benchmark(str(args.matrix), matrix, getattr(args, "op", "spmv"))
    print(f"simulated {arch.model} ({arch.microarchitecture}), "
          f"{args.trials} trials, op {result.op}")
    for fmt in ("coo", "csr", "ell", "hyb"):
        if fmt in result.times:
            t = result.times[fmt]
            marker = "  <- best" if fmt == result.best_format else ""
            print(f"  {fmt}: {t * 1e6:10.3f} us{marker}")
        else:
            print(f"  {fmt}: excluded ({result.excluded[fmt]})")
    if result.runnable:
        print(f"speedup of best over CSR: "
              f"{result.times['csr'] / result.times[result.best_format]:.2f}x")
    return 0


def _retry_policy_from(args: argparse.Namespace):
    """A RetryPolicy when any resilience flag was given, else ``None``."""
    from repro.runtime import RetryPolicy

    overrides = {}
    if getattr(args, "retries", None) is not None:
        overrides["max_attempts"] = args.retries
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout"] = args.task_timeout
    return RetryPolicy(**overrides) if overrides else None


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.data import build_experiment_data

    arch = ARCHITECTURES[args.arch]
    print(f"building {args.size}-matrix collection (seed {args.seed}) ...")
    print(f"benchmarking on simulated {arch.model} ...")
    # Route through the shared campaign builder: --jobs fans the work out
    # and --cache-dir makes repeat invocations skip the campaign.
    config = ExperimentConfig(
        collection_size=args.size,
        augment_copies=0,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retry=_retry_policy_from(args),
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    data = build_experiment_data(config)
    if data.degradation is not None:
        print(data.degradation.to_text())
    dataset = data.datasets[args.arch]
    print(f"training K-Means-{args.labeler.upper()} "
          f"(NC={args.clusters}) on {len(dataset)} matrices ...")
    selector = ClusterFormatSelector(
        "kmeans", args.labeler, args.clusters, seed=args.seed
    )
    selector.fit(dataset.X, dataset.labels)
    frozen = freeze(selector)
    frozen.save(args.out)
    train_acc = float(np.mean(frozen.predict(dataset.X) == dataset.labels))
    print(f"saved {frozen.n_centroids} labeled centroids to {args.out} "
          f"(training accuracy {train_acc:.3f})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.features import extract_features_streaming
    from repro.formats import ReadPolicy

    op = getattr(args, "op", "spmv")
    if op != "spmv":
        return _predict_for_op(args, op)
    if args.model is None:
        print("repro predict: --model is required for --op spmv",
              file=sys.stderr)
        return 2
    selector = FallbackSelector.load(
        args.model, fallback_format=args.fallback_format
    )
    if selector.degraded:
        print(f"repro predict: model unusable ({selector.error}); "
              f"degrading to {selector.fallback_format}", file=sys.stderr)
    policy = ReadPolicy(
        max_dim=args.max_dim if args.max_dim > 0 else None,
        max_nnz=args.max_nnz if args.max_nnz > 0 else None,
    )
    tiered = None
    if args.tiered and not selector.degraded:
        from repro.core.tiered import TieredSelector

        if args.tier_margin is not None:
            tiered = TieredSelector(selector.selector, args.tier_margin)
        else:
            tiered = TieredSelector.calibrate(selector.selector)
    # An unreadable matrix is unrecoverable — there is nothing to
    # recommend a format *for* — so it exits 2, fallback or not.  The
    # streaming reader enforces the declared-size caps at the size line,
    # so a forged giant header is rejected before any entry is read.
    try:
        if tiered is not None:
            decision = tiered.select_stream(args.matrix, policy)
        else:
            vec = extract_features_streaming(args.matrix, policy)[None, :]
    except Exception as exc:
        print(f"repro predict: unusable input matrix {args.matrix!r}: "
              f"{exc}", file=sys.stderr)
        return 2
    if tiered is not None:
        print(f"recommended format: {decision.format} "
              f"(tier {decision.tier}, centroid #{decision.centroid} of "
              f"{selector.selector.n_centroids})")
        return 0
    label = selector.predict_one(vec)
    if selector.error is not None:
        if args.strict:
            print("repro predict: refusing degraded recommendation "
                  "(--strict)", file=sys.stderr)
            return 1
        print(f"recommended format: {label} (degraded fallback)")
        return 0
    cluster = int(selector.selector.assign(vec)[0])
    print(f"recommended format: {label} (centroid #{cluster} of "
          f"{selector.selector.n_centroids})")
    return 0


def _predict_for_op(args: argparse.Namespace, op: str) -> int:
    """``repro predict --op spmm[:k]|spgemm``: analytical recommendation.

    The frozen selectors are trained on the SpMV campaign, so non-SpMV
    ops go straight to the per-format kernel cost model at the requested
    architecture.  Exit codes mirror the model path: 0 on a
    recommendation, 1 when no format is feasible, 2 on unusable input.
    """
    from repro.features.stats import compute_stats
    from repro.formats import ReadPolicy
    from repro.formats.io import read_matrix_market
    from repro.gpu.kernels import (
        NoFeasibleFormatError,
        best_format,
        parse_op,
        predict_times,
    )

    try:
        spec = parse_op(op)
    except ValueError as exc:
        print(f"repro predict: {exc}", file=sys.stderr)
        return 2
    policy = ReadPolicy(
        max_dim=args.max_dim if args.max_dim > 0 else None,
        max_nnz=args.max_nnz if args.max_nnz > 0 else None,
    )
    try:
        matrix = read_matrix_market(args.matrix, policy)
    except Exception as exc:
        print(f"repro predict: unusable input matrix {args.matrix!r}: "
              f"{exc}", file=sys.stderr)
        return 2
    times = predict_times(compute_stats(matrix), ARCHITECTURES[args.arch], spec)
    try:
        fmt = best_format(times)
    except NoFeasibleFormatError as exc:
        print(f"repro predict: {exc}", file=sys.stderr)
        return 1
    print(f"recommended format: {fmt} for {spec.canonical} on {args.arch} "
          f"(analytical kernel model)")
    return 0


def _extract_task(path: str) -> tuple[np.ndarray | None, str | None]:
    """Pool-side feature extraction guard: (vector, None) or (None, why).

    Module-level so ``parallel_map`` can pickle it; never raises, so one
    unreadable matrix cannot take down a collection run.
    """
    from repro.features import extract_features_streaming

    try:
        return extract_features_streaming(path), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


def _tiered_task(
    path: str, tiered=None
) -> tuple[tuple[str, int, int] | None, str | None]:
    """Pool-side tiered selection guard for ``predict-batch --tiered``.

    ((format, tier, centroid), None) on success, (None, why) on any
    failure.  Module-level for the same pickling reason as
    :func:`_extract_task`; the calibrated selector rides along via
    ``functools.partial``.
    """
    try:
        decision = tiered.select_stream(path)
        return (decision.format, decision.tier, decision.centroid), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


def _resolve_batch_inputs(source: str) -> list[tuple[str, str]] | None:
    """(name, path) pairs from a directory, one ``.mtx``, or a manifest."""
    from pathlib import Path

    root = Path(source)
    if root.is_dir():
        return [(p.stem, str(p)) for p in sorted(root.glob("*.mtx"))]
    if not root.is_file():
        return None
    if root.suffix == ".mtx":
        return [(root.stem, str(root))]
    entries: list[tuple[str, str]] = []
    for line in root.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        path = Path(line)
        if not path.is_absolute():
            path = root.parent / path
        entries.append((path.stem, str(path)))
    return entries


def _cmd_predict_batch(args: argparse.Namespace) -> int:
    import json

    from repro.inference import BatchPredictor
    from repro.runtime.parallel import parallel_map
    from repro.runtime.resilience import TaskFailure

    entries = _resolve_batch_inputs(args.collection)
    if entries is None:
        print(f"repro predict-batch: no such directory or manifest: "
              f"{args.collection!r}", file=sys.stderr)
        return 2
    if not entries:
        print(f"repro predict-batch: no matrices found in "
              f"{args.collection!r}", file=sys.stderr)
        return 2
    selector = FallbackSelector.load(
        args.model, fallback_format=args.fallback_format
    )
    if selector.degraded:
        print(f"repro predict-batch: model unusable ({selector.error}); "
              f"degrading to {selector.fallback_format}", file=sys.stderr)
        if args.strict:
            return 1
    if args.tiered and not selector.degraded:
        return _predict_batch_tiered(args, selector, entries)
    names = [name for name, _ in entries]
    extracted = parallel_map(
        _extract_task,
        [path for _, path in entries],
        jobs=args.jobs,
        label="inference.extract",
    )
    good = [i for i, (vec, err) in enumerate(extracted) if err is None]
    X = (
        np.vstack([extracted[i][0] for i in good])
        if good
        else np.empty((0, len(FEATURE_NAMES)))
    )
    predictor = BatchPredictor(selector)
    report = predictor.predict_sharded(
        X,
        names=[names[i] for i in good],
        jobs=args.jobs,
        shard_size=args.shard_size,
    )
    records: list[dict | None] = [None] * len(entries)
    for item, i in zip(report.items, good):
        records[i] = item.to_json()
    for i, (_, err) in enumerate(extracted):
        if err is None:
            continue
        report.quarantine.add(
            names[i],
            stage="extract",
            failure=TaskFailure(
                key=names[i], kind="error", attempts=1, message=err
            ),
        )
        records[i] = {
            "name": names[i],
            "format": selector.fallback_format,
            "source": "fallback",
            "error": err,
        }
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for record in records:
            print(json.dumps(record), file=out)
    finally:
        if args.out:
            out.close()
    n_fallback = sum(1 for r in records if r["source"] == "fallback")
    print(
        f"predict-batch: {len(entries)} matrices, "
        f"{len(entries) - n_fallback} model answers, "
        f"{n_fallback} fallbacks "
        f"({report.plan.n_shards} shard(s), jobs={report.plan.jobs})",
        file=sys.stderr,
    )
    if report.quarantine:
        print(report.quarantine.report(), file=sys.stderr)
    if args.strict and n_fallback:
        return 1
    return 0


def _predict_batch_tiered(
    args: argparse.Namespace, selector, entries: list[tuple[str, str]]
) -> int:
    """Cheap-first batch path (``--tiered``): one streamed pass per matrix.

    Each worker runs the tiered selector directly on the file — tier-1
    answers never materialize the matrix or the full feature vector —
    so there is no separate extract/inference fan-out to share, and the
    records gain a ``tier`` field.
    """
    import functools
    import json

    from repro.core.tiered import TieredSelector
    from repro.runtime.parallel import parallel_map

    if args.tier_margin is not None:
        tiered = TieredSelector(selector.selector, args.tier_margin)
    else:
        tiered = TieredSelector.calibrate(selector.selector)
    names = [name for name, _ in entries]
    results = parallel_map(
        functools.partial(_tiered_task, tiered=tiered),
        [path for _, path in entries],
        jobs=args.jobs,
        label="inference.tiered",
    )
    records: list[dict] = []
    n_fallback = 0
    n_tier1 = 0
    for name, (result, err) in zip(names, results):
        if err is not None:
            n_fallback += 1
            records.append({
                "name": name,
                "format": selector.fallback_format,
                "source": "fallback",
                "error": err,
            })
            continue
        fmt, tier, centroid = result
        n_tier1 += tier == 1
        records.append({
            "name": name,
            "format": fmt,
            "source": "model",
            "tier": tier,
            "centroid": centroid,
        })
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for record in records:
            print(json.dumps(record), file=out)
    finally:
        if args.out:
            out.close()
    n_model = len(records) - n_fallback
    print(
        f"predict-batch: {len(entries)} matrices, "
        f"{n_model} model answers, {n_fallback} fallbacks "
        f"(tiered: {n_tier1} tier-1, {n_model - n_tier1} escalated)",
        file=sys.stderr,
    )
    if args.strict and n_fallback:
        return 1
    return 0


def _serving_config(args: argparse.Namespace, model_path: str):
    from repro.serving import GatewayLimits, ServingConfig

    return ServingConfig(
        model_path=model_path,
        fallback_format=args.fallback_format,
        max_request_bytes=args.max_request_bytes,
        limits=GatewayLimits(
            max_matrix_bytes=args.max_matrix_bytes,
            max_dim=args.max_dim,
            max_nnz=args.max_nnz,
        ),
        queue_size=args.queue_size,
        deadline_seconds=args.deadline if args.deadline > 0 else None,
        breaker_failures=args.breaker_failures,
        breaker_reset_seconds=args.breaker_reset,
        breaker_probes=args.breaker_probes,
        ood_factor=args.ood_factor,
        hot_reload=not args.no_reload,
        max_batch=args.max_batch,
        max_batch_delay_seconds=args.max_batch_delay_ms / 1000.0,
        tiered=args.tiered,
        tier_margin=args.tier_margin,
    )


def _worker_serve_flags(args: argparse.Namespace) -> list[str]:
    """Serving knobs forwarded verbatim to each tier worker process.

    ``--no-reload`` is deliberately *not* forwarded: a worker's reload
    watch is one ``stat`` of the store's CURRENT pointer, and the
    front-end gates whether new versions are ever published at all.
    """
    flags = [
        "--fallback-format", args.fallback_format,
        "--queue-size", str(args.queue_size),
        "--deadline", str(args.deadline),
        "--max-request-bytes", str(args.max_request_bytes),
        "--max-matrix-bytes", str(args.max_matrix_bytes),
        "--max-dim", str(args.max_dim),
        "--max-nnz", str(args.max_nnz),
        "--breaker-failures", str(args.breaker_failures),
        "--breaker-reset", str(args.breaker_reset),
        "--breaker-probes", str(args.breaker_probes),
        "--ood-factor", str(args.ood_factor),
        "--max-batch", str(args.max_batch),
        "--max-batch-delay-ms", str(args.max_batch_delay_ms),
    ]
    if args.tiered:
        flags.append("--tiered")
    if args.tier_margin is not None:
        flags += ["--tier-margin", str(args.tier_margin)]
    return flags


def _tier_config(
    args: argparse.Namespace,
    model_path: str,
    run_dir: str,
    worker_env: dict | None = None,
):
    from repro.serving import TierConfig

    return TierConfig(
        model_path=model_path,
        run_dir=run_dir,
        workers=args.workers,
        workers_min=getattr(args, "workers_min", None),
        workers_max=getattr(args, "workers_max", None),
        worker_args=tuple(_worker_serve_flags(args)),
        fallback_format=args.fallback_format,
        max_request_bytes=args.max_request_bytes,
        hot_reload=not args.no_reload,
        request_timeout_seconds=getattr(args, "request_timeout", 60.0),
        hedge_ms=getattr(args, "hedge_ms", None),
        hedge_budget=getattr(args, "hedge_budget", 0.05),
        drain_timeout_seconds=getattr(args, "drain_timeout", 10.0),
        store_keep=getattr(args, "store_keep", 2),
        worker_env=worker_env or {},
    )


def _cmd_serve_tier(args: argparse.Namespace) -> int:
    """``repro serve --workers N`` (N >= 2): the horizontally scaled tier."""
    import asyncio
    import tempfile

    from repro.obs import TELEMETRY
    from repro.obs.events import EventLog
    from repro.serving import ServingTier

    own_telemetry = not TELEMETRY.enabled
    if own_telemetry:
        TELEMETRY.reset()
        TELEMETRY.enable()
    scratch = None
    run_dir = args.run_dir
    if run_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-serve-tier-")
        run_dir = scratch.name
    access_log = None
    if args.access_log:
        access_log = EventLog(
            args.access_log,
            max_bytes=args.access_log_max_bytes,
            backups=args.access_log_backups,
        )
    try:
        tier = ServingTier(
            _tier_config(args, args.model, run_dir), access_log=access_log
        )
        if tier.host.degraded:
            print(
                f"repro serve: tier starting degraded "
                f"({tier.host.active.error}); workers fall back to "
                f"{args.fallback_format} until a valid model appears at "
                f"{args.model}",
                file=sys.stderr,
            )
        if args.socket:
            print(
                f"repro serve: tier front-end on unix socket "
                f"{args.socket} ({tier.target_workers} workers, "
                f"min {tier.config.min_workers} / "
                f"max {tier.config.max_workers})",
                file=sys.stderr,
            )
            return asyncio.run(tier.run_socket(args.socket))
        return asyncio.run(tier.run_stdio())
    finally:
        if scratch is not None:
            scratch.cleanup()
        if own_telemetry:
            TELEMETRY.disable()
            TELEMETRY.reset()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import TELEMETRY
    from repro.obs.events import EventLog
    from repro.runtime.faults import injector_for, spec_from_env
    from repro.serving import SelectorServer

    if args.worker_store is None and (
        args.workers > 1 or (args.workers_max or 1) > 1
    ):
        return _cmd_serve_tier(args)

    access_log = None
    if args.access_log:
        access_log = EventLog(
            args.access_log,
            max_bytes=args.access_log_max_bytes,
            backups=args.access_log_backups,
        )
    # The `metrics` op serves from the live global registry, so serving
    # turns telemetry on for its lifetime — unless --profile (or a
    # caller) already did, in which case that owner keeps control.
    own_telemetry = not TELEMETRY.enabled
    if own_telemetry:
        TELEMETRY.reset()
        TELEMETRY.enable()
    try:
        host = None
        if args.worker_store is not None:
            # Tier worker: attach read-only to the shared mmap store
            # instead of loading (and re-validating) the .npz — the
            # front-end shadow-validated this version once for everyone.
            from repro.serving import StoreModelHost

            host = StoreModelHost(args.worker_store)
            print(
                f"repro serve: worker {args.worker_id or '?'} attached to "
                f"model store {args.worker_store}",
                file=sys.stderr,
            )
        server = SelectorServer(
            _serving_config(args, args.model),
            fault_injector=injector_for(spec_from_env()),
            access_log=access_log,
            host=host,
        )
        if server.host.degraded:
            print(
                f"repro serve: starting degraded "
                f"({server.host.active.error}); "
                f"answers fall back to {args.fallback_format} until a valid "
                f"model appears at {args.model}",
                file=sys.stderr,
            )
        if args.socket:
            print(
                f"repro serve: listening on unix socket {args.socket}",
                file=sys.stderr,
            )
            return server.serve_socket(args.socket)
        return server.serve_stream(sys.stdin, sys.stdout)
    finally:
        if access_log is not None:
            access_log.close()
        if own_telemetry:
            TELEMETRY.disable()
            TELEMETRY.reset()


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    from repro.obs import TELEMETRY
    from repro.runtime import FaultSpec

    spec = FaultSpec(
        failure_rate=args.fail,
        latency_rate=args.latency,
        latency_seconds=args.delay,
        corruption_rate=args.corrupt,
        poison_fraction=args.poison,
        seed=args.fault_seed,
    )
    # The drill exports its serving counters (--metrics-out feeds
    # `repro obs report`), so it needs the registry live even without
    # --profile; respect an already-enabled owner as `serve` does.
    own_telemetry = not TELEMETRY.enabled
    if own_telemetry:
        TELEMETRY.reset()
        TELEMETRY.enable()
    try:
        if args.workers > 1:
            return _run_chaos_tier_drill(args, spec)
        return _run_chaos_serve_drill(args, spec)
    finally:
        if own_telemetry:
            TELEMETRY.disable()
            TELEMETRY.reset()


def _run_chaos_tier_drill(args: argparse.Namespace, spec) -> int:
    """Chaos drill against the multi-worker tier (real subprocesses).

    Same request mix and same per-line contract as the in-process drill,
    plus the tier-only hazards: ``--kill-worker`` SIGKILLs one worker
    mid-burst, after which the drill asserts the respawn happened, the
    worker rejoined the ring, no connection hung, and the front-end's
    routed-request counters reconcile exactly
    (``routed == completed + worker_lost``).
    """
    import asyncio
    import json
    import os
    import tempfile

    from repro.serving import ServingTier
    from repro.serving.drill import (
        audit_tier_conservation,
        audit_tier_responses,
        build_request_lines,
        run_tier_drain_drill,
        synthetic_frozen_selector,
        tier_expectations,
    )
    from repro.serving.frontend import drive_tier

    with tempfile.TemporaryDirectory(prefix="repro-tier-chaos-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=args.seed).save(model_path)
        extra_env = {}
        if spec.active:
            # Workers inherit the same deterministic fault stream the
            # in-process drill injects directly.
            extra_env["REPRO_FAULTS"] = (
                f"fail={args.fail},latency={args.latency},"
                f"delay={args.delay},corrupt={args.corrupt},"
                f"poison={args.poison},seed={args.fault_seed}"
            )
        worker_env = {}
        if args.slow_worker:
            # Exactly one worker answers slowly (50 ms on half its
            # requests); the rest of the fleet is healthy, so hedged
            # dispatch — not respawn — is what rescues its tail.  A
            # fixed hedge delay keeps the drill deterministic (the
            # rolling p95 would need warm-up traffic first).
            worker_env["w0"] = {
                "REPRO_FAULTS": (
                    f"latency=0.5,delay=0.05,seed={args.fault_seed}"
                )
            }
            if args.hedge_ms is None:
                args.hedge_ms = 15.0
        tier = ServingTier(
            _tier_config(
                args,
                model_path,
                os.path.join(tmp, "tier"),
                worker_env=worker_env,
            ),
            extra_env=extra_env,
        )
        lines, expectations = build_request_lines(
            args.requests, seed=args.seed, oversize_bytes=args.max_matrix_bytes
        )
        expectations = tier_expectations(expectations)

        events: list[str] = []
        killed: list[str] = []
        actions: dict[int, object] = {}
        if args.swap:
            # The writes call check_reload() synchronously (the tier
            # object lives in this process), so quarantine/publish are
            # deterministic, not racing the watch loop.
            def _write_corrupt() -> None:
                with open(model_path, "wb") as fh:
                    fh.write(b"\x00garbage, not an npz\x00" * 64)
                events.append(f"corrupt candidate: {tier.check_reload()}")

            def _write_good() -> None:
                synthetic_frozen_selector(
                    seed=args.seed + 1, n_centroids=8
                ).save(model_path)
                events.append(f"retrained candidate: {tier.check_reload()}")

            actions[max(1, len(lines) // 3)] = _write_corrupt
            actions[max(2, (2 * len(lines)) // 3)] = _write_good
        if args.kill_worker:
            def _kill() -> None:
                name = tier.kill_worker()
                if name:
                    killed.append(name)
                events.append(f"killed worker {name} mid-burst")

            actions[max(1, len(lines) // 2)] = _kill

        front = os.path.join(tmp, "front.sock")

        async def _run():
            server_task = asyncio.ensure_future(tier.run_socket(front))
            for _ in range(1200):
                if os.path.exists(front):
                    break
                if server_task.done():
                    server_task.result()
                await asyncio.sleep(0.05)
            pairs = await asyncio.wait_for(
                drive_tier(
                    front, lines, connections=args.burst, actions=actions
                ),
                timeout=300.0,
            )
            rejoined = not killed
            if killed:
                for _ in range(400):
                    if killed[0] in tier.workers:
                        rejoined = True
                        break
                    await asyncio.sleep(0.05)
            reader, writer = await asyncio.open_unix_connection(front)
            writer.write(b'{"id":"__m","op":"metrics"}\n')
            await writer.drain()
            metrics = json.loads(await reader.readline())
            writer.close()
            # Graceful-drain audit doubles as the tier's shutdown: the
            # shutdown op inside the drill is what stops the server.
            drain_report = await run_tier_drain_drill(front, seed=args.seed)
            await asyncio.wait_for(server_task, timeout=60.0)
            return pairs, metrics, rejoined, drain_report

        pairs, metrics, rejoined, drain_report = asyncio.run(_run())
        report = audit_tier_responses(
            pairs, expectations, n_requests=len(lines)
        )
        report.swap_events = events
        print(
            f"serve chaos (tier): {args.requests} requests over "
            f"{args.burst} connections, {args.workers} workers, "
            f"kill={'on' if args.kill_worker else 'off'}, "
            f"swap={'on' if args.swap else 'off'}, fail={args.fail} "
            f"corrupt={args.corrupt}"
        )
        print(report.to_text())
        print(
            f"tier counters: routed={tier.n_routed} "
            f"completed={tier.n_completed} worker_lost={tier.n_worker_lost} "
            f"respawned={tier.n_respawned} rebalanced={tier.n_rebalanced} "
            f"hedges={tier.n_hedges} hedge_wins={tier.n_hedge_wins} "
            f"primary_wins={tier.n_primary_wins} "
            f"deadline_exceeded={tier.n_deadline_exceeded} "
            f"drain_rejected={tier.n_draining_rejected}"
        )
        rc = 0 if report.ok else 1
        for violation in audit_tier_conservation(tier):
            print(f"repro chaos: {violation}", file=sys.stderr)
            rc = 1
        if drain_report.violations:
            for violation in drain_report.violations:
                print(f"repro chaos: drain: {violation}", file=sys.stderr)
            rc = 1
        else:
            print(
                f"drain audit: {drain_report.n_responses} responses, "
                f"zero silently-dropped requests"
            )
        if args.slow_worker and tier.n_hedges < 1:
            print(
                "repro chaos: slow worker never triggered a hedged "
                "dispatch",
                file=sys.stderr,
            )
            rc = 1
        if args.kill_worker:
            if tier.n_respawned < 1:
                print(
                    "repro chaos: killed worker was never respawned",
                    file=sys.stderr,
                )
                rc = 1
            if not rejoined:
                print(
                    f"repro chaos: killed worker "
                    f"{killed[0] if killed else '?'} did not rejoin the "
                    f"ring",
                    file=sys.stderr,
                )
                rc = 1
        if args.swap:
            if tier.host.n_quarantined < 1:
                print(
                    "repro chaos: corrupt candidate was not quarantined",
                    file=sys.stderr,
                )
                rc = 1
            if tier.host.n_reloads < 1:
                print(
                    "repro chaos: retrained candidate was not swapped in",
                    file=sys.stderr,
                )
                rc = 1
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    metrics.get("metrics", {}), fh, indent=2, sort_keys=True
                )
                fh.write("\n")
            print(f"serve chaos: tier metrics snapshot -> {args.metrics_out}")
        return rc


def _run_chaos_serve_drill(args: argparse.Namespace, spec) -> int:
    import io
    import json
    import os
    import tempfile
    import time as time_mod

    from repro.core.deploy import FallbackSelector
    from repro.features import extract_features
    from repro.formats import read_matrix_market
    from repro.runtime.faults import FaultInjector
    from repro.serving import SelectorServer
    from repro.serving.drill import (
        _random_matrix_text,
        build_request_lines,
        run_serve_drill,
        synthetic_frozen_selector,
    )

    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=args.seed).save(model_path)
        server = SelectorServer(
            _serving_config(args, model_path),
            fault_injector=FaultInjector(spec) if spec.active else None,
        )
        lines, expectations = build_request_lines(
            args.requests, seed=args.seed, oversize_bytes=args.max_matrix_bytes
        )
        n_bursts = max(1, -(-len(lines) // args.burst))
        actions = {}
        if args.swap:
            def _write_corrupt() -> str:
                with open(model_path, "wb") as fh:
                    fh.write(b"\x00garbage, not an npz\x00" * 64)
                return "corrupt candidate written"

            def _write_good() -> str:
                synthetic_frozen_selector(
                    seed=args.seed + 1, n_centroids=8
                ).save(model_path)
                return "retrained candidate written"

            actions[max(1, n_bursts // 3)] = _write_corrupt
            actions[max(2, (2 * n_bursts) // 3)] = _write_good
        print(
            f"serve chaos: {args.requests} requests in bursts of "
            f"{args.burst} (queue {args.queue_size}), fail={args.fail} "
            f"corrupt={args.corrupt}, swap={'on' if args.swap else 'off'}"
        )
        report = run_serve_drill(
            server, lines, expectations, burst=args.burst, actions=actions
        )
        print(report.to_text())
        rc = 0
        if not report.ok:
            rc = 1
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    server.metrics_snapshot(), fh, indent=2, sort_keys=True
                )
                fh.write("\n")
            print(f"serve chaos: metrics snapshot -> {args.metrics_out}")
        if args.swap:
            if server.host.n_quarantined < 1:
                print(
                    "repro chaos: corrupt candidate was not quarantined",
                    file=sys.stderr,
                )
                rc = 1
            if server.host.n_reloads < 1:
                print(
                    "repro chaos: retrained candidate was not swapped in",
                    file=sys.stderr,
                )
                rc = 1
        if args.require_breaker and server.breaker.n_opens == 0:
            print(
                "repro chaos: expected the circuit breaker to open; "
                "raise --fail or --requests",
                file=sys.stderr,
            )
            rc = 1
        if args.verify:
            # Recovery: disarm injection, let the breaker's half-open
            # probes close it, then demand byte-identical parity with a
            # fresh single-shot FallbackSelector on the same model file.
            server.fault_injector = None
            time_mod.sleep(args.breaker_reset + 0.05)
            text = _random_matrix_text(0, args.seed)
            line = json.dumps({"id": "parity", "op": "predict", "mtx": text})
            for _ in range(args.breaker_probes + 1):
                served = server.handle_line(line)
            fresh = FallbackSelector.load(model_path)
            vec = extract_features(read_matrix_market(io.StringIO(text)))[None, :]
            expected = fresh.predict_one(vec)
            if served.get("status") != "ok" or served.get("format") != expected:
                print(
                    f"repro chaos: PARITY MISMATCH: served {served} vs "
                    f"single-shot {expected!r}",
                    file=sys.stderr,
                )
                rc = 1
            else:
                print(
                    f"verify: post-recovery answer {expected!r} identical "
                    f"to a fresh single-shot predict"
                )
        return rc


def _survivor_mismatches(clean, chaotic) -> list[str]:
    """Where a degraded campaign's survivors differ from a clean run."""
    clean_rows = {
        name: clean.features.values[i]
        for i, name in enumerate(clean.features.names)
    }
    mismatches = []
    for i, name in enumerate(chaotic.features.names):
        if not np.array_equal(chaotic.features.values[i], clean_rows[name]):
            mismatches.append(f"features differ for {name}")
    for arch, results in chaotic.results.items():
        clean_by_name = dict(zip(clean.features.names, clean.results[arch]))
        for name, result in zip(chaotic.features.names, results):
            reference = clean_by_name[name]
            if (result.times != reference.times
                    or result.best_format != reference.best_format):
                mismatches.append(f"benchmark differs for {arch}:{name}")
    return mismatches


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.target == "serve":
        return _cmd_chaos_serve(args)
    import dataclasses

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.data import build_experiment_data
    from repro.runtime import FaultSpec, RetryPolicy

    spec = FaultSpec(
        failure_rate=args.fail,
        latency_rate=args.latency,
        latency_seconds=args.delay,
        corruption_rate=args.corrupt,
        poison_fraction=args.poison,
        seed=args.fault_seed,
    )
    # Zero backoff: chaos runs exercise the retry *logic*; sleeping
    # between rounds would only slow the smoke test down.
    policy = RetryPolicy(
        max_attempts=args.retries, backoff_base=0.0, backoff_max=0.0
    )
    config = ExperimentConfig.small(
        collection_size=args.size,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        faults=spec,
        retry=policy,
    )
    print(f"chaos campaign: {args.size} matrices, "
          f"fail={args.fail} corrupt={args.corrupt} latency={args.latency} "
          f"(fault seed {args.fault_seed}, {args.retries} attempts)")
    data = build_experiment_data(config, use_cache=False)
    report = data.degradation
    print(report.to_text())
    rc = 0
    if args.require_quarantine and report.n_quarantined == 0:
        print("repro chaos: expected a non-empty quarantine but every "
              "task survived; raise --fail or --size", file=sys.stderr)
        rc = 1
    if args.verify:
        clean_config = dataclasses.replace(config, faults=None, retry=None)
        clean = build_experiment_data(clean_config, use_cache=False)
        mismatches = _survivor_mismatches(clean, data)
        if mismatches:
            for line in mismatches:
                print(f"repro chaos: MISMATCH: {line}", file=sys.stderr)
            rc = 1
        else:
            print(f"verify: {len(data.features)} surviving matrices x "
                  f"{len(data.results)} arches byte-identical to the "
                  f"fault-free run")
    return rc


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded: list[str] = []
    if args.small:
        forwarded.append("--small")
    if args.only:
        forwarded += ["--only", *args.only]
    if args.markdown:
        forwarded += ["--markdown", args.markdown]
    forwarded += ["--jobs", str(args.jobs)]
    if args.cache_dir:
        forwarded += ["--cache-dir", args.cache_dir]
    if args.retries is not None:
        forwarded += ["--retries", str(args.retries)]
    if args.task_timeout is not None:
        forwarded += ["--task-timeout", str(args.task_timeout)]
    if args.checkpoint_every:
        forwarded += ["--checkpoint-every", str(args.checkpoint_every)]
    if args.resume:
        forwarded.append("--resume")
    return runner_main(forwarded)


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    from repro.runtime import default_cache_dir

    return args.cache_dir or default_cache_dir()


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ArtifactCache

    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        print(
            "repro cache: no cache directory (pass --cache-dir or set "
            "$REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    cache = ArtifactCache(cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached campaign(s) from {cache_dir}")
        return 0
    info = cache.info()
    print(f"cache root : {info['root']}")
    print(f"entries    : {info['entries']}")
    print(f"total size : {info['bytes'] / 1e6:.1f} MB")
    for meta in cache.entries():
        key = str(meta.get("key", "?"))[:16]
        n = meta.get("n_matrices", "?")
        size_mb = int(meta.get("bytes", 0)) / 1e6
        cfg = meta.get("config", {})
        print(f"  {key}…  {n} matrices  {size_mb:.1f} MB  {cfg}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import TraceParseError, stats_report

    try:
        print(stats_report(args.trace, top=args.top))
    except TraceParseError as exc:
        # Missing, empty, and truncated traces all land here: one typed
        # diagnostic line, exit code 2 (distinct from runtime failures).
        print(f"repro stats: {exc}", file=sys.stderr)
        return 2
    return 0


def _load_metrics_snapshot(path: str) -> dict:
    """Read a registry snapshot from a metrics JSON or BENCH_*.json file."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    # A BENCH_obs.json wraps the snapshot under "metrics".
    if "metrics" in data and isinstance(data["metrics"], dict):
        return data["metrics"]
    return data


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.slo import SLOConfigError, load_slo_file, report

    try:
        rules = load_slo_file(args.slo)
        snapshot = _load_metrics_snapshot(args.metrics)
    except (SLOConfigError, OSError, ValueError) as exc:
        print(f"repro obs report: {exc}", file=sys.stderr)
        return 2
    try:
        text, ok = report(rules, snapshot)
    except SLOConfigError as exc:
        print(f"repro obs report: {exc}", file=sys.stderr)
        return 2
    print(text)
    return 0 if ok else 1


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from repro.obs.bench import run_bench, write_bench

    if args.select:
        return _cmd_obs_bench_select(args)

    out = args.out or "BENCH_obs.json"

    def _run(model_path: str) -> int:
        result = run_bench(
            model_path,
            n_requests=args.requests,
            n_items=args.items,
            jobs=args.jobs,
            seed=args.seed,
            max_batch=args.max_batch,
            repeats=args.repeats,
        )
        write_bench(result, out)
        serve = result["serve"]
        batch = result["batch"]
        print(
            f"serve : {serve['n_requests']} requests  "
            f"p50 {serve['p50_ms']:.3f} ms  p95 {serve['p95_ms']:.3f} ms  "
            f"p99 {serve['p99_ms']:.3f} ms  {serve['rps']:.0f} req/s"
        )
        print(
            f"batch : {batch['repeats']}x{batch['n_items']} items "
            f"(jobs={batch['jobs']})  p50 {batch['p50_ms']:.3f} ms  "
            f"p99 {batch['p99_ms']:.3f} ms  "
            f"{batch['items_per_second']:.0f} items/s"
        )
        print(f"bench : written to {out}")
        if args.slo:
            slo_args = argparse.Namespace(slo=args.slo, metrics=out)
            return _cmd_obs_report(slo_args)
        return 0

    if args.model:
        return _run(args.model)
    from repro.serving.drill import synthetic_frozen_selector

    with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
        model_path = os.path.join(tmp, "selector.npz")
        synthetic_frozen_selector(seed=args.seed).save(model_path)
        return _run(model_path)


def _cmd_obs_bench_select(args: argparse.Namespace) -> int:
    from repro.obs.bench import run_select_bench, write_bench

    out = args.out or "BENCH_select.json"
    result = run_select_bench(
        args.model,
        n_matrices=args.matrices,
        seed=args.seed,
        repeats=args.repeats,
    )
    write_bench(result, out)
    tier1, full, tiered = result["tier1"], result["full"], result["tiered"]
    print(
        f"tier1 : p50 {tier1['p50_ms']:.3f} ms  "
        f"p95 {tier1['p95_ms']:.3f} ms  p99 {tier1['p99_ms']:.3f} ms"
    )
    print(
        f"full  : p50 {full['p50_ms']:.3f} ms  "
        f"p95 {full['p95_ms']:.3f} ms  p99 {full['p99_ms']:.3f} ms"
    )
    print(
        f"tiered: p50 {tiered['p50_ms']:.3f} ms  "
        f"p99 {tiered['p99_ms']:.3f} ms  "
        f"{tiered['matrices_per_second']:.0f} matrices/s  "
        f"escalation rate {tiered['escalation_rate']:.3f}"
    )
    print(f"bench : written to {out}")
    if args.slo:
        slo_args = argparse.Namespace(slo=args.slo, metrics=out)
        return _cmd_obs_report(slo_args)
    return 0


#: Sentinel for ``--profile`` given without a PATH operand.
_PROFILE_STDERR_ONLY = "-"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    # Shared by every subcommand (argparse only honours flags placed
    # after the subcommand name when they live on the subparser).
    profile_parent = argparse.ArgumentParser(add_help=False)
    profile_parent.add_argument(
        "--profile",
        nargs="?",
        const=_PROFILE_STDERR_ONLY,
        default=None,
        metavar="PATH",
        help="enable telemetry; dump span tree + metrics on exit "
             "(and write a Chrome-trace JSONL to PATH when given)",
    )
    # Shared by the campaign-running subcommands (train, tables).
    campaign_parent = argparse.ArgumentParser(add_help=False)
    campaign_parent.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the campaign fan-outs (0 = all "
             "cores); results are identical for any value",
    )
    campaign_parent.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist campaign artifacts under PATH (warm runs skip "
             "the campaign; default $REPRO_CACHE_DIR, else off)",
    )
    campaign_parent.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per campaign task before quarantining it "
             "(enables the fault-tolerant path; default 3 when active)",
    )
    campaign_parent.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for campaign tasks "
             "(SIGALRM-based; hangs become retryable failures)",
    )
    campaign_parent.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint campaign progress to the cache dir every N "
             "benchmark tasks (0 = off)",
    )
    campaign_parent.add_argument(
        "--resume", action="store_true",
        help="reuse a previous run's checkpoint from the cache dir "
             "instead of redoing completed work",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("features", parents=[profile_parent],
                       help="print Table-1 features of a matrix")
    p.add_argument("matrix", help=".mtx file")
    p.set_defaults(func=_cmd_features)

    p = sub.add_parser("benchmark", parents=[profile_parent],
                       help="simulated per-format kernel times")
    p.add_argument("matrix", help=".mtx file")
    p.add_argument("--arch", choices=sorted(ARCHITECTURES), default="volta")
    p.add_argument("--op", default="spmv", metavar="OP",
                   help="operation to time: spmv (default), spmm[:k], "
                        "or spgemm")
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_benchmark)

    p = sub.add_parser("train", parents=[profile_parent, campaign_parent],
                       help="train and freeze a selector")
    p.add_argument("--size", type=int, default=200)
    p.add_argument("--arch", choices=sorted(ARCHITECTURES), default="volta")
    p.add_argument("--labeler", choices=("vote", "lr", "rf"), default="vote")
    p.add_argument("--clusters", type=int, default=40)
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output .npz path")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("predict", parents=[profile_parent],
                       help="recommend a format for a matrix")
    p.add_argument("matrix", help=".mtx file")
    p.add_argument("--model", default=None, help="frozen selector .npz "
                   "(required for --op spmv; ignored for other ops, which "
                   "use the analytical kernel model)")
    p.add_argument("--op", default="spmv", metavar="OP",
                   help="operation to select for: spmv (default), "
                        "spmm[:k] (sparse x dense with width k), or spgemm")
    p.add_argument("--arch", choices=sorted(ARCHITECTURES), default="volta",
                   help="architecture for the analytical --op path")
    p.add_argument("--fallback-format", default="csr", metavar="FMT",
                   help="format recommended when the model is unusable "
                        "(default: csr)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 instead of degrading when the model is "
                        "unusable")
    p.add_argument("--tiered", action="store_true",
                   help="cheap-first tiered selection: answer from row-"
                        "length statistics when the calibrated confidence "
                        "margin allows, escalate to the full 21-feature "
                        "pipeline otherwise")
    p.add_argument("--tier-margin", type=float, default=None, metavar="M",
                   help="tier-1 confidence margin override (default: "
                        "calibrated from the frozen model)")
    p.add_argument("--max-dim", type=int, default=50_000_000, metavar="N",
                   help="reject matrices declaring more rows or columns "
                        "than this at the size line, before any entry is "
                        "read (0 disables)")
    p.add_argument("--max-nnz", type=int, default=2_000_000_000, metavar="N",
                   help="reject matrices declaring more nonzeros than this "
                        "at the size line (0 disables)")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("predict-batch", parents=[profile_parent],
                       help="batched recommendations for a collection "
                            "(bit-identical to per-matrix predict)")
    p.add_argument("collection",
                   help="directory of .mtx files, a single .mtx, or a "
                        "manifest file listing one matrix path per line")
    p.add_argument("--model", required=True, help="frozen selector .npz")
    p.add_argument("--fallback-format", default="csr", metavar="FMT",
                   help="format recorded for unusable matrices or an "
                        "unusable model (default: csr)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for extraction and inference "
                        "shards (0 = all cores); output is identical "
                        "for any value")
    p.add_argument("--shard-size", type=int, default=None, metavar="N",
                   help="items per inference shard (default: pool "
                        "heuristic); never changes output")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSONL here instead of stdout")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 if the model is unusable or any matrix "
                        "fell back")
    p.add_argument("--tiered", action="store_true",
                   help="cheap-first tiered selection per matrix (records "
                        "gain a 'tier' field; tier-1 answers never build "
                        "the full feature vector)")
    p.add_argument("--tier-margin", type=float, default=None, metavar="M",
                   help="tier-1 confidence margin override (default: "
                        "calibrated from the frozen model)")
    p.set_defaults(func=_cmd_predict_batch)

    def add_serving_args(parser, **overrides):
        """Serving knobs, shared by ``serve`` and ``chaos --target serve``.

        A plain function rather than a parent parser: parent parsers
        share action objects between subparsers, so per-subcommand
        ``set_defaults`` on one would silently leak into the other.
        """
        defaults = dict(
            queue_size=64, deadline=5.0,
            max_request_bytes=16 * 1024 * 1024,
            max_matrix_bytes=8 * 1024 * 1024,
            max_dim=50_000_000, max_nnz=5_000_000,
            breaker_failures=5, breaker_reset=2.0, breaker_probes=2,
            max_batch=8,
        )
        defaults.update(overrides)
        parser.add_argument(
            "--fallback-format", default="csr", metavar="FMT",
            help="format served when the model cannot be trusted")
        parser.add_argument(
            "--queue-size", type=int, default=defaults["queue_size"],
            metavar="N",
            help="bounded request queue; overflowing bursts shed the oldest")
        parser.add_argument(
            "--deadline", type=float, default=defaults["deadline"],
            metavar="SECONDS",
            help="per-request processing deadline (0 disables)")
        parser.add_argument(
            "--max-request-bytes", type=int,
            default=defaults["max_request_bytes"], metavar="N",
            help="reject request lines larger than this")
        parser.add_argument(
            "--max-matrix-bytes", type=int,
            default=defaults["max_matrix_bytes"], metavar="N",
            help="reject serialized matrices larger than this")
        parser.add_argument(
            "--max-dim", type=int, default=defaults["max_dim"], metavar="N",
            help="reject matrices declaring more rows/columns than this")
        parser.add_argument(
            "--max-nnz", type=int, default=defaults["max_nnz"], metavar="N",
            help="reject matrices declaring more nonzeros than this")
        parser.add_argument(
            "--breaker-failures", type=int,
            default=defaults["breaker_failures"], metavar="N",
            help="consecutive inference faults that open the circuit breaker")
        parser.add_argument(
            "--breaker-reset", type=float, default=defaults["breaker_reset"],
            metavar="SECONDS",
            help="open-state dwell before half-open probing")
        parser.add_argument(
            "--breaker-probes", type=int, default=defaults["breaker_probes"],
            metavar="N",
            help="half-open probe successes needed to close the breaker")
        parser.add_argument(
            "--ood-factor", type=float, default=8.0, metavar="F",
            help="out-of-distribution threshold as a multiple of the "
                 "model's centroid scale (0 disables)")
        parser.add_argument(
            "--no-reload", action="store_true",
            help="disable hot model reload (serve the boot-time model only)")
        parser.add_argument(
            "--max-batch", type=int, default=defaults["max_batch"],
            metavar="N",
            help="admission-queue requests drained per micro-batch; the "
                 "predict ops share one vectorized inference pass with "
                 "per-request responses unchanged (1 disables)")
        parser.add_argument(
            "--max-batch-delay-ms", type=float, default=0.0, metavar="MS",
            help="linger this long for more input before processing a "
                 "short micro-batch (0 = never wait)")
        parser.add_argument(
            "--tiered", action="store_true",
            help="cheap-first tiered selection: answer predict requests "
                 "from row-length statistics when the calibrated "
                 "confidence margin allows, escalate to the full "
                 "21-feature pipeline otherwise (responses gain a "
                 "'tier' field)")
        parser.add_argument(
            "--tier-margin", type=float, default=None, metavar="M",
            help="tier-1 confidence margin override (default: calibrated "
                 "from the frozen model)")

    p = sub.add_parser("serve", parents=[profile_parent],
                       help="run the resilient selector service "
                            "(JSONL on stdin/stdout, or a Unix socket)")
    add_serving_args(p)
    p.add_argument("--model", required=True, help="frozen selector .npz")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="serve on a Unix socket instead of stdin/stdout")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes behind the asyncio front-end; "
                        "1 (default) keeps the single-process server "
                        "with byte-identical responses")
    p.add_argument("--workers-min", type=int, default=None, metavar="N",
                   help="autoscale floor (default: --workers)")
    p.add_argument("--workers-max", type=int, default=None, metavar="N",
                   help="autoscale ceiling (default: --workers)")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="tier scratch directory for the shared model "
                        "store and worker sockets (default: a temp dir)")
    p.add_argument("--worker-store", default=None, help=argparse.SUPPRESS)
    p.add_argument("--worker-id", default=None, help=argparse.SUPPRESS)
    p.add_argument("--access-log", default=None, metavar="PATH",
                   help="append one JSONL event per request (trace id, "
                        "op, status, latency) with size-based rotation")
    p.add_argument("--access-log-max-bytes", type=int,
                   default=10 * 1024 * 1024, metavar="N",
                   help="rotate the access log past this size")
    p.add_argument("--request-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="tier front-end: per-request latency budget; "
                        "stamped on the worker wire as deadline_ms "
                        "(min-combined with the client's own) and the "
                        "patience before a wedged worker is killed "
                        "(default 60)")
    p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                   help="tier front-end: hedge a request to the next ring "
                        "worker after this many ms without an answer "
                        "(default: rolling p95 of completed requests; "
                        "<= 0 disables hedging)")
    p.add_argument("--hedge-budget", type=float, default=0.05, metavar="FRAC",
                   help="tier front-end: token-bucket cap on hedged "
                        "dispatches as a fraction of routed traffic "
                        "(default 0.05; <= 0 disables hedging)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="tier front-end: patience for in-flight requests "
                        "after SIGTERM/shutdown before teardown "
                        "(default 10)")
    p.add_argument("--store-keep", type=int, default=2, metavar="N",
                   help="tier front-end: non-CURRENT model-store versions "
                        "kept by GC after each publish (default 2; "
                        "0 disables pruning)")
    p.add_argument("--access-log-backups", type=int, default=3, metavar="N",
                   help="rotated access-log files kept")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("chaos", parents=[profile_parent],
                       help="run a fault-injected campaign and report "
                            "what the resilience layer absorbed")
    # Chaos-tuned serving defaults: a queue smaller than the burst so
    # shedding actually happens, and a breaker that trips and recovers
    # within the drill's wall-clock budget.
    add_serving_args(p, queue_size=8, deadline=0.0, breaker_failures=3,
                     breaker_reset=0.05, breaker_probes=1,
                     max_matrix_bytes=32768, max_request_bytes=65536,
                     max_nnz=100_000)
    p.add_argument("--target", choices=("campaign", "serve"),
                   default="campaign",
                   help="aim the fault stream at the training campaign "
                        "or at the serving stack")
    p.add_argument("--requests", type=int, default=200, metavar="N",
                   help="[serve] drill request count")
    p.add_argument("--burst", type=int, default=16, metavar="N",
                   help="[serve] requests submitted per burst (tier "
                        "drills use this as the concurrent connection "
                        "count)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="[serve] drill the multi-worker tier with this "
                        "many worker processes (1 = in-process server)")
    p.add_argument("--kill-worker", action="store_true",
                   help="[serve] SIGKILL one worker mid-drill and "
                        "assert respawn, ring rejoin, and counter "
                        "reconciliation (requires --workers >= 2)")
    p.add_argument("--slow-worker", action="store_true",
                   help="[serve] inject latency faults into exactly one "
                        "worker and assert hedged dispatch fires, hedge "
                        "volume stays within budget, and the hedging "
                        "conservation law holds (requires --workers >= 2)")
    p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                   help="[serve] tier hedge delay override (default: "
                        "15 ms under --slow-worker, else rolling p95)")
    p.add_argument("--hedge-budget", type=float, default=0.05,
                   metavar="FRAC",
                   help="[serve] tier hedge token-bucket budget "
                        "(default 0.05)")
    p.add_argument("--swap", dest="swap", action="store_true", default=True,
                   help="[serve] perform the corrupt-then-good mid-run "
                        "model swap (default)")
    p.add_argument("--no-swap", dest="swap", action="store_false",
                   help="[serve] skip the mid-run model swap")
    p.add_argument("--require-breaker", action="store_true",
                   help="[serve] exit 1 unless the circuit breaker opened")
    p.add_argument("--size", type=int, default=60,
                   help="collection size of the chaos campaign")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=20210809,
                   help="campaign seed (matrices + benchmark noise)")
    p.add_argument("--jobs", type=int, default=1, metavar="N")
    p.add_argument("--fail", type=float, default=0.2, metavar="P",
                   help="per-attempt task failure probability")
    p.add_argument("--latency", type=float, default=0.0, metavar="P",
                   help="per-attempt probability of an injected delay")
    p.add_argument("--delay", type=float, default=0.002, metavar="SECONDS",
                   help="injected delay length")
    p.add_argument("--corrupt", type=float, default=0.05, metavar="P",
                   help="per-attempt result-corruption probability")
    p.add_argument("--poison", type=float, default=0.25, metavar="FRAC",
                   help="fraction of failing mass that fails every attempt")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault stream")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="attempts per task before quarantine")
    p.add_argument("--require-quarantine", action="store_true",
                   help="exit 1 unless at least one task was quarantined")
    p.add_argument("--verify", action="store_true",
                   help="re-run fault-free and exit 1 unless every "
                        "survivor is byte-identical (campaign), or check "
                        "post-recovery parity with a fresh single-shot "
                        "predict (serve)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="[serve] write the post-drill metrics snapshot "
                        "as JSON (feed it to `repro obs report`)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("tables", parents=[profile_parent, campaign_parent],
                       help="regenerate the paper's tables")
    p.add_argument("--small", action="store_true")
    p.add_argument("--only", nargs="*", default=None)
    p.add_argument("--markdown", default=None)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("cache", parents=[profile_parent],
                       help="inspect or purge the campaign artifact cache")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="cache directory (default $REPRO_CACHE_DIR)")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("stats",
                       help="aggregate a --profile trace into a hot-path "
                            "report")
    p.add_argument("trace", help="trace .jsonl written by --profile")
    p.add_argument("--top", type=int, default=None,
                   help="show only the N hottest spans")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("obs",
                       help="observability tooling: SLO reports and the "
                            "serving latency benchmark")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p_report = obs_sub.add_parser(
        "report",
        help="evaluate declarative SLO thresholds against a metrics "
             "snapshot; exits 1 on violation, 2 on bad input")
    p_report.add_argument("--slo", required=True, metavar="FILE",
                          help="SLO rules JSON (top-level 'slos' list)")
    p_report.add_argument("--metrics", required=True, metavar="FILE",
                          help="metrics snapshot JSON (from `repro chaos "
                               "--metrics-out` or a BENCH_obs.json)")
    p_report.set_defaults(func=_cmd_obs_report)

    p_bench = obs_sub.add_parser(
        "bench",
        help="seeded serving+batch latency benchmark; writes "
             "BENCH_obs.json (p50/p95/p99, RPS, per-stage span costs). "
             "--select benchmarks tiered selection instead and writes "
             "BENCH_select.json (per-tier quantiles, escalation rate)")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="output JSON path (default: BENCH_obs.json, "
                              "or BENCH_select.json with --select)")
    p_bench.add_argument("--select", action="store_true",
                         help="benchmark tiered selection latency (tier-1 "
                              "vs full pipeline vs calibrated tiered "
                              "end-to-end) instead of the serving stack")
    p_bench.add_argument("--matrices", type=int, default=64, metavar="N",
                         help="seeded matrices per repeat (--select only)")
    p_bench.add_argument("--model", default=None, metavar="PATH",
                         help="frozen selector .npz (default: a synthetic "
                              "model)")
    p_bench.add_argument("--requests", type=int, default=200, metavar="N",
                         help="serve-path request count")
    p_bench.add_argument("--items", type=int, default=256, metavar="N",
                         help="batch-path items per repeat")
    p_bench.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="worker processes for the batch path")
    p_bench.add_argument("--repeats", type=int, default=5, metavar="N",
                         help="batch repeats (quantiles are over repeats)")
    p_bench.add_argument("--max-batch", type=int, default=8, metavar="N",
                         help="serving micro-batch size")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="workload seed")
    p_bench.add_argument("--slo", default=None, metavar="FILE",
                         help="also evaluate these SLO rules against the "
                              "fresh BENCH_obs.json")
    p_bench.set_defaults(func=_cmd_obs_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except CampaignAbort as exc:
        # A (simulated) mid-campaign crash: partial progress is already
        # checkpointed when --checkpoint-every/--resume are in play.
        print(f"repro: campaign aborted: {exc}", file=sys.stderr)
        print("repro: rerun with --resume --cache-dir PATH to continue "
              "from the last checkpoint", file=sys.stderr)
        return 3


def _dispatch(args: argparse.Namespace) -> int:
    profile = getattr(args, "profile", None)
    if profile is None:
        return args.func(args)

    from repro.obs import TELEMETRY, dump_profile, request_scope

    TELEMETRY.enable()
    TELEMETRY.reset()
    try:
        # The CLI root is a request scope: every fan-out the command
        # performs (feature extraction, sharded inference, campaign
        # chunks) inherits one trace id, so a profiled run stitches
        # into a single end-to-end trace.
        with request_scope(f"cli.{args.command}"):
            rc = args.func(args)
    finally:
        trace_path = None if profile == _PROFILE_STDERR_ONLY else profile
        dump_profile(TELEMETRY, trace_path)
        TELEMETRY.disable()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
