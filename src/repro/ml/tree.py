"""CART decision-tree classifier (Gini impurity, exact greedy splits).

Backs both the paper's DT baseline and the Random Forest (prior work
Sedaghati et al. [30] used trees/forests for format selection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, encode_labels


@dataclass
class _Node:
    """One tree node; leaves carry class-count distributions."""

    counts: np.ndarray  # per-class sample counts reaching this node
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    n = counts.sum()
    if n == 0:
        return 0.0
    p = counts / n
    return float(1.0 - (p * p).sum())


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Best (feature, threshold, gain) over candidate features.

    For each feature the samples are sorted once and class counts are
    accumulated cumulatively, so all thresholds are evaluated in O(n·k)
    after the O(n log n) sort — the standard exact-greedy formulation.
    """
    n = y.shape[0]
    parent_gini = _gini(np.bincount(y, minlength=n_classes).astype(float))
    best = (-1, 0.0, 0.0)
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), y] = 1.0
    for j in feature_indices:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        # Cumulative class counts for the "left" side of each cut.
        left_counts = np.cumsum(onehot[order], axis=0)
        total = left_counts[-1]
        # Valid cut positions: between distinct adjacent values, with at
        # least min_samples_leaf on each side.
        distinct = xs[1:] != xs[:-1]
        pos = np.flatnonzero(distinct) + 1  # left side has `pos` samples
        pos = pos[(pos >= min_samples_leaf) & (n - pos >= min_samples_leaf)]
        if pos.size == 0:
            continue
        lc = left_counts[pos - 1]
        rc = total - lc
        nl = pos.astype(float)
        nr = n - nl
        gini_l = 1.0 - ((lc / nl[:, None]) ** 2).sum(axis=1)
        gini_r = 1.0 - ((rc / nr[:, None]) ** 2).sum(axis=1)
        weighted = (nl * gini_l + nr * gini_r) / n
        gains = parent_gini - weighted
        i = int(np.argmax(gains))
        if gains[i] > best[2]:
            thr = 0.5 * (xs[pos[i] - 1] + xs[pos[i]])
            best = (int(j), float(thr), float(gains[i]))
    return best


class DecisionTreeClassifier(BaseEstimator):
    """CART classifier.

    Parameters follow the scikit-learn names the paper's setup mentions
    (``max_depth``, ``min_samples_split``, ``max_features``).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        return max(1, min(int(mf), n_features))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self.classes_, encoded = encode_labels(y)
        self._rng = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        self._k = self._n_candidate_features(self.n_features_)
        self.root_ = self._build(X, encoded, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n_classes = self.classes_.shape[0]
        counts = np.bincount(y, minlength=n_classes).astype(float)
        node = _Node(counts=counts)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.shape[0] < self.min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node
        if self._k < self.n_features_:
            feats = self._rng.choice(self.n_features_, self._k, replace=False)
        else:
            feats = np.arange(self.n_features_)
        feature, threshold, gain = _best_split(
            X, y, n_classes, feats, self.min_samples_leaf
        )
        if feature < 0 or gain <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        out = np.empty((X.shape[0], self.classes_.shape[0]))
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left
                    if X[i, node.feature] <= node.threshold
                    else node.right
                )
            total = node.counts.sum()
            out[i] = node.counts / total if total else node.counts
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        self._require_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        self._require_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)
