"""Row-stable linear algebra kernels for batched inference.

The batch engine's headline guarantee (DESIGN §11) is *bit-identity*:
``predict_batch(xs)[i] == predict(xs[i : i + 1])[0]`` for every model
family.  BLAS ``gemm`` cannot honour that contract — its blocking and
accumulation order depend on the operand shapes, so ``(A @ B.T)[i]`` and
``(A[i:i+1] @ B.T)[0]`` may differ in the last ulps, and an argmin over
near-tied distances could then flip a label between the batch and single
paths.

``np.einsum`` with ``optimize=False`` lowers to a fixed-order C loop that
computes every output row with the same left-to-right accumulation
regardless of how many rows the operand has.  Each kernel here is
therefore *row-stable*: slicing the input commutes with the operation,
bitwise.  All inference-time matrix products in the ``ml`` estimators and
:class:`~repro.core.deploy.FrozenSelector` route through this module;
fit-time math may keep faster BLAS paths since training is outside the
contract (and re-fitting is not expected to be bit-reproducible across
batch shapes).

``optimize=False`` is load-bearing: with ``optimize=True`` einsum may
dispatch to ``tensordot`` → gemm and silently lose row stability.
"""

from __future__ import annotations

import numpy as np


def rs_matmul_t(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Row-stable ``A @ B.T`` for ``A (n, d)`` and ``B (k, d)``."""
    return np.einsum("ij,kj->ik", A, B, optimize=False)


def rs_matvec(A: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-stable ``A @ v`` for ``A (n, d)`` and ``v (d,)``."""
    return np.einsum("ij,j->i", A, v, optimize=False)


def rs_sq_norms(A: np.ndarray) -> np.ndarray:
    """Row-stable per-row squared Euclidean norms of ``A (n, d)``."""
    return np.einsum("ij,ij->i", A, A, optimize=False)


def pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Row-stable squared Euclidean distances, shape ``(len(A), len(B))``.

    Uses the expansion ``||a-b||² = ||a||² + ||b||² - 2a·b`` with the
    cross term computed by :func:`rs_matmul_t`, clamped at 0 against
    cancellation.  Every term is computed row-locally, so row ``i`` of
    the result is a pure function of ``A[i]`` and ``B`` — independent of
    the other rows of ``A``.
    """
    a2 = rs_sq_norms(A)[:, None]
    b2 = rs_sq_norms(B)[None, :]
    d2 = a2 + b2 - 2.0 * rs_matmul_t(A, B)
    return np.maximum(d2, 0.0)
