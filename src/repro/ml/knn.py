"""K-nearest-neighbours classifier (brute-force Euclidean).

The paper (§4) motivates KNN explicitly: *"The fact that K-Means and other
clustering algorithms use Euclidean distance as a similarity metric
suggests that a KNN predictor which uses the same feature set and the same
preprocessing transformations should also be competitive."*
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array
from repro.ml.linalg import pairwise_sq_dists

__all__ = ["KNeighborsClassifier", "pairwise_sq_dists"]


class KNeighborsClassifier(BaseEstimator):
    """Majority vote over the k nearest training samples.

    ``weights='distance'`` uses inverse-distance weighting; exact
    duplicates of a training point inherit its label.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self.classes_, self._encoded = np.unique(y, return_inverse=True)
        self._X = X
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_X")
        X = check_array(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected {self._X.shape[1]} features, got {X.shape[1]}"
            )
        k = min(self.n_neighbors, self._X.shape[0])
        d2 = pairwise_sq_dists(X, self._X)
        nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        n_classes = self.classes_.shape[0]
        proba = np.zeros((X.shape[0], n_classes))
        rows = np.arange(X.shape[0])[:, None]
        labels = self._encoded[nn]
        if self.weights == "uniform":
            w = np.ones_like(d2[rows, nn])
        else:
            dist = np.sqrt(d2[rows, nn])
            exact = dist <= 1e-12
            # Any exact-duplicate neighbour dominates; otherwise 1/d.
            w = np.where(exact, 0.0, 1.0 / np.maximum(dist, 1e-12))
            has_exact = exact.any(axis=1)
            w[has_exact] = exact[has_exact].astype(float)
        for c in range(n_classes):
            proba[:, c] = np.where(labels == c, w, 0.0).sum(axis=1)
        totals = proba.sum(axis=1, keepdims=True)
        return proba / np.maximum(totals, 1e-300)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
