"""Feature preprocessing: the paper's §4 transformation pipeline pieces.

*"In our approach, a log transform or a square root transform is applied to
all features which have a sparse distribution (irrespective of whether they
have a power-law distribution). Afterward, min-max scaling is used to scale
each feature to a range of [0, 1]."*
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array, check_batch


class MinMaxScaler:
    """Scale each feature to [0, 1] over the fitted range.

    Constant features map to 0.  Out-of-range values at transform time are
    clipped by default — the paper's transfer setting applies a scaler
    fitted on one platform's training matrices to new matrices, so values
    beyond the fitted range must stay bounded.
    """

    def __init__(self, clip: bool = True) -> None:
        self.clip = clip

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_array(X)
        self.min_ = X.min(axis=0)
        self.max_ = X.max(axis=0)
        span = self.max_ - self.min_
        # Constant columns get span 1 so they transform to exactly 0.
        self.span_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "span_"):
            raise NotFittedError("MinMaxScaler must be fitted first")
        X = check_array(X)
        if X.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"expected {self.min_.shape[0]} features, got {X.shape[1]}"
            )
        out = (X - self.min_) / self.span_
        if self.clip:
            out = np.clip(out, 0.0, 1.0)
        return out

    def transform_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch scaling; bit-identical to :meth:`transform` per row.

        Elementwise ops are trivially row-stable; this entry point only
        adds tolerance for zero-row batches.
        """
        if not hasattr(self, "span_"):
            raise NotFittedError("MinMaxScaler must be fitted first")
        X = check_batch(X, n_features=self.min_.shape[0])
        if X.shape[0] == 0:
            return X
        return self.transform(X)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class StandardScaler:
    """Zero-mean unit-variance scaling (used by some supervised baselines)."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "std_"):
            raise NotFittedError("StandardScaler must be fitted first")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.std_

    def transform_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch scaling; bit-identical to :meth:`transform` per row."""
        if not hasattr(self, "std_"):
            raise NotFittedError("StandardScaler must be fitted first")
        X = check_batch(X, n_features=self.mean_.shape[0])
        if X.shape[0] == 0:
            return X
        return self.transform(X)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def sparse_distribution_score(column: np.ndarray) -> float:
    """How 'sparsely distributed' a nonnegative feature column is.

    Measured as the ratio of the 99th-percentile value to the median of the
    positive mass — heavy right tails (power-law-ish features like ``nnz``
    or ``nnz_max``) score high, compact distributions score near 1.
    """
    column = np.asarray(column, dtype=np.float64)
    positive = column[column > 0]
    if positive.size < 2:
        return 1.0
    hi = np.percentile(positive, 99)
    med = np.median(positive)
    if med <= 0:
        return float("inf")
    return float(hi / med)


class SparseDistributionTransformer:
    """Per-feature log/sqrt transform of sparsely-distributed columns.

    Columns whose :func:`sparse_distribution_score` exceeds ``threshold``
    get ``log1p`` (default) or ``sqrt``; the rest pass through.  Negative
    values are shifted by the fitted column minimum first, so the transform
    is well defined for difference features like ``max_mu``.
    """

    def __init__(
        self, kind: str = "log", threshold: float = 5.0
    ) -> None:
        if kind not in ("log", "sqrt"):
            raise ValueError(f"kind must be 'log' or 'sqrt', got {kind!r}")
        self.kind = kind
        self.threshold = threshold

    def fit(self, X: np.ndarray) -> "SparseDistributionTransformer":
        X = check_array(X)
        self.shift_ = np.minimum(X.min(axis=0), 0.0)
        shifted = X - self.shift_
        scores = np.array(
            [sparse_distribution_score(shifted[:, j]) for j in range(X.shape[1])]
        )
        self.apply_ = scores > self.threshold
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "apply_"):
            raise NotFittedError(
                "SparseDistributionTransformer must be fitted first"
            )
        X = check_array(X)
        if X.shape[1] != self.apply_.shape[0]:
            raise ValueError(
                f"expected {self.apply_.shape[0]} features, got {X.shape[1]}"
            )
        out = X - self.shift_
        # Transfer-time values may undershoot the fitted minimum; clamp at
        # zero so log/sqrt stay defined.
        out = np.maximum(out, 0.0)
        cols = self.apply_
        if cols.any():
            if self.kind == "log":
                out[:, cols] = np.log1p(out[:, cols])
            else:
                out[:, cols] = np.sqrt(out[:, cols])
        return out

    def transform_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch transform; bit-identical to :meth:`transform` per row."""
        if not hasattr(self, "apply_"):
            raise NotFittedError(
                "SparseDistributionTransformer must be fitted first"
            )
        X = check_batch(X, n_features=self.apply_.shape[0])
        if X.shape[0] == 0:
            return X
        return self.transform(X)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
