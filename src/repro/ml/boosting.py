"""XGBoost-style gradient-boosted trees (softmax objective, second order).

The paper's strongest supervised baseline.  Setup (§5.1): *"For XGBoost, we
set a learning rate of 0.1 and the number of rounds to 100."*  This
implementation follows the XGBoost formulation: per-round, per-class
gradient/Hessian statistics of the softmax cross-entropy, regression trees
grown by exact greedy search on the gain

    0.5 * [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ

and leaf weights −G/(H+λ), applied with shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, encode_labels


@dataclass
class _RegNode:
    weight: float
    feature: int = -1
    threshold: float = 0.0
    left: "_RegNode | None" = None
    right: "_RegNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _GradientTree:
    """One regression tree fit to (gradient, Hessian) statistics."""

    def __init__(
        self,
        max_depth: int,
        reg_lambda: float,
        gamma: float,
        min_child_weight: float,
    ) -> None:
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight

    def fit(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> "_GradientTree":
        self.root_ = self._build(X, g, h, depth=0)
        return self

    def _leaf_weight(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _build(
        self, X: np.ndarray, g: np.ndarray, h: np.ndarray, depth: int
    ) -> _RegNode:
        g_sum, h_sum = float(g.sum()), float(h.sum())
        node = _RegNode(weight=self._leaf_weight(g_sum, h_sum))
        if depth >= self.max_depth or X.shape[0] < 2:
            return node
        parent_score = g_sum * g_sum / (h_sum + self.reg_lambda)
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for j in range(X.shape[1]):
            order = np.argsort(X[:, j], kind="stable")
            xs = X[order, j]
            gl = np.cumsum(g[order])
            hl = np.cumsum(h[order])
            distinct = xs[1:] != xs[:-1]
            pos = np.flatnonzero(distinct) + 1
            if pos.size == 0:
                continue
            GL, HL = gl[pos - 1], hl[pos - 1]
            GR, HR = g_sum - GL, h_sum - HL
            ok = (HL >= self.min_child_weight) & (HR >= self.min_child_weight)
            if not ok.any():
                continue
            gains = 0.5 * (
                GL * GL / (HL + self.reg_lambda)
                + GR * GR / (HR + self.reg_lambda)
                - parent_score
            ) - self.gamma
            gains = np.where(ok, gains, -np.inf)
            i = int(np.argmax(gains))
            if gains[i] > best_gain:
                best_gain = float(gains[i])
                best_feature = j
                best_threshold = 0.5 * (xs[pos[i] - 1] + xs[pos[i]])
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(X[mask], g[mask], h[mask], depth + 1)
        node.right = self._build(X[~mask], g[~mask], h[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left
                    if X[i, node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.weight
        return out


def _softmax(Z: np.ndarray) -> np.ndarray:
    Z = Z - Z.max(axis=1, keepdims=True)
    e = np.exp(Z)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(BaseEstimator):
    """Multiclass gradient boosting with the paper's XGBoost settings."""

    def __init__(
        self,
        n_rounds: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        self.classes_, encoded = encode_labels(y)
        n = X.shape[0]
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.seed)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0
        F = np.zeros((n, k))
        self.trees_: list[list[_GradientTree]] = []
        for _ in range(self.n_rounds):
            P = _softmax(F) if k > 1 else np.ones((n, 1))
            round_trees: list[_GradientTree] = []
            if self.subsample < 1.0:
                m = max(2, int(self.subsample * n))
                sample = rng.choice(n, size=m, replace=False)
            else:
                sample = np.arange(n)
            for c in range(k):
                g = P[:, c] - onehot[:, c]
                h = np.maximum(P[:, c] * (1.0 - P[:, c]), 1e-16)
                tree = _GradientTree(
                    self.max_depth,
                    self.reg_lambda,
                    self.gamma,
                    self.min_child_weight,
                )
                tree.fit(X[sample], g[sample], h[sample])
                F[:, c] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.trees_.append(round_trees)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        X = check_array(X)
        k = self.classes_.shape[0]
        F = np.zeros((X.shape[0], k))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                F[:, c] += self.learning_rate * tree.predict(X)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        F = self.decision_function(X)
        if self.classes_.shape[0] == 1:
            return np.ones((X.shape[0], 1))
        return _softmax(F)

    def predict(self, X: np.ndarray) -> np.ndarray:
        F = self.decision_function(X)  # raises NotFittedError first
        return self.classes_[np.argmax(F, axis=1)]
