"""Regression models: CART regression trees and forests.

§2.2 of the paper: *"The ML models can be either regression or
classification based."*  Prior work (Benatia et al. [3]; the
overhead-conscious line [39, 40]) predicts per-format execution *times*
rather than a class label — which is what
:class:`repro.core.regression.RegressionFormatSelector` builds on top of
these estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, NotFittedError, check_array, check_X_y


@dataclass
class _RegNode:
    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_RegNode | None" = None
    right: "_RegNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor(BaseEstimator):
    """CART regression tree minimising within-leaf squared error."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def _n_candidates(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if mf == "log2":
            return max(1, int(np.log2(d)))
        return max(1, min(int(mf), d))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        self._rng = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        self._k = self._n_candidates(self.n_features_)
        self.root_ = self._build(X, y, 0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _RegNode:
        node = _RegNode(value=float(y.mean()))
        n = y.shape[0]
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or n < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        if self._k < self.n_features_:
            feats = self._rng.choice(self.n_features_, self._k, replace=False)
        else:
            feats = np.arange(self.n_features_)
        # Exact greedy: for each feature, cumulative sums give every cut's
        # SSE reduction in O(n) after the sort.
        total_sum = y.sum()
        total_sq = float(y @ y)
        parent_sse = total_sq - total_sum * total_sum / n
        best_gain, best_feature, best_threshold = 1e-12, -1, 0.0
        for j in feats:
            order = np.argsort(X[:, j], kind="stable")
            xs = X[order, j]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            distinct = xs[1:] != xs[:-1]
            pos = np.flatnonzero(distinct) + 1
            pos = pos[
                (pos >= self.min_samples_leaf)
                & (n - pos >= self.min_samples_leaf)
            ]
            if pos.size == 0:
                continue
            nl = pos.astype(np.float64)
            nr = n - nl
            sum_l = csum[pos - 1]
            sq_l = csq[pos - 1]
            sse_l = sq_l - sum_l * sum_l / nl
            sum_r = total_sum - sum_l
            sq_r = total_sq - sq_l
            sse_r = sq_r - sum_r * sum_r / nr
            gains = parent_sse - (sse_l + sse_r)
            i = int(np.argmax(gains))
            if gains[i] > best_gain:
                best_gain = float(gains[i])
                best_feature = int(j)
                best_threshold = 0.5 * (xs[pos[i] - 1] + xs[pos[i]])
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        out = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left
                    if X[i, node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.value
        return out


class RandomForestRegressor(BaseEstimator):
    """Bagged regression trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = 8,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_: list[DecisionTreeRegressor] = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "trees_"):
            raise NotFittedError("RandomForestRegressor must be fitted first")
        return np.mean([t.predict(X) for t in self.trees_], axis=0)
