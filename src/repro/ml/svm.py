"""Support Vector Machine: binary SMO with linear/RBF kernels, one-vs-rest.

Benatia et al. [3] used a multiclass SVM for format selection; the paper
reimplements it as one of its supervised baselines.  The binary solver is
the simplified SMO algorithm (random second-multiplier choice, KKT
tolerance stopping) over a precomputed kernel matrix — adequate for the
collection sizes involved (thousands of samples).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array
from repro.ml.knn import pairwise_sq_dists
from repro.ml.linalg import rs_matmul_t, rs_matvec


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    # Row-stable so decision_function rows are batch-size independent.
    return rs_matmul_t(A, B)


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    return np.exp(-gamma * pairwise_sq_dists(A, B))


class _BinarySMO:
    """Simplified SMO for a binary SVM over a precomputed kernel matrix."""

    def __init__(
        self,
        C: float,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 2000,
        seed: int = 0,
    ) -> None:
        self.C = C
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed

    def fit(self, K: np.ndarray, y: np.ndarray) -> "_BinarySMO":
        n = y.shape[0]
        rng = np.random.default_rng(self.seed)
        alpha = np.zeros(n)
        b = 0.0
        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            f_cache = (alpha * y) @ K + b  # decision values for all points
            for i in range(n):
                Ei = f_cache[i] - y[i]
                if (y[i] * Ei < -self.tol and alpha[i] < self.C) or (
                    y[i] * Ei > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    Ej = f_cache[j] - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        L = max(0.0, aj_old - ai_old)
                        H = min(self.C, self.C + aj_old - ai_old)
                    else:
                        L = max(0.0, ai_old + aj_old - self.C)
                        H = min(self.C, ai_old + aj_old)
                    if L >= H:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (Ei - Ej) / eta
                    aj = min(H, max(L, aj))
                    if abs(aj - aj_old) < 1e-7:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    # Update bias from the KKT conditions.
                    di = y[i] * (ai - ai_old)
                    dj = y[j] * (aj - aj_old)
                    b1 = b - Ei - di * K[i, i] - dj * K[i, j]
                    b2 = b - Ej - di * K[i, j] - dj * K[j, j]
                    if 0 < ai < self.C:
                        b_new = b1
                    elif 0 < aj < self.C:
                        b_new = b2
                    else:
                        b_new = 0.5 * (b1 + b2)
                    # Incremental decision-value refresh:
                    # f = (alpha*y) @ K + b, so df = di*K[i] + dj*K[j] + db.
                    f_cache += di * K[i] + dj * K[j] + (b_new - b)
                    b = b_new
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iters += 1
        self.alpha_ = alpha
        self.b_ = b
        return self

    def decision(self, K_test_train: np.ndarray, y_train: np.ndarray) -> np.ndarray:
        return rs_matvec(K_test_train, self.alpha_ * y_train) + self.b_


class SVC(BaseEstimator):
    """One-vs-rest kernel SVM classifier.

    ``gamma='scale'`` follows scikit-learn: ``1 / (d * Var(X))``.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 3,
        seed: int = 0,
    ) -> None:
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.seed = seed

    def _gamma_value(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return linear_kernel(A, B)
        return rbf_kernel(A, B, self.gamma_)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self.gamma_ = self._gamma_value(X)
        self._X = X
        K = self._kernel(X, X)
        self._machines: list[_BinarySMO] = []
        self._targets: list[np.ndarray] = []
        for c, cls in enumerate(self.classes_):
            target = np.where(y == cls, 1.0, -1.0)
            smo = _BinarySMO(
                C=self.C,
                tol=self.tol,
                max_passes=self.max_passes,
                seed=self.seed + c,
            )
            if np.all(target == target[0]):
                # Class absent or universal in this OVR slice; constant vote.
                smo.alpha_ = np.zeros(X.shape[0])
                smo.b_ = float(target[0])
            else:
                smo.fit(K, target)
            self._machines.append(smo)
            self._targets.append(target)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_machines")
        X = check_array(X)
        K = self._kernel(X, self._X)
        scores = np.column_stack(
            [
                m.decision(K, t)
                for m, t in zip(self._machines, self._targets)
            ]
        )
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
