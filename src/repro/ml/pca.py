"""Principal Component Analysis via SVD.

The paper (§4): *"We then use Principal Component Analysis (PCA) to
decompose the features to a feature vector of size 8."*
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array, check_batch
from repro.ml.linalg import rs_matmul_t


class PCA:
    """Project data onto the top ``n_components`` principal directions.

    Uses the thin SVD of the centred data matrix (richer and more stable
    than an explicit covariance eigendecomposition — see the hpc guides'
    advice to prefer ``full_matrices=False``).
    """

    def __init__(self, n_components: int = 8) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def fit(self, X: np.ndarray) -> "PCA":
        X = check_array(X)
        k = min(self.n_components, X.shape[1], X.shape[0])
        self.mean_ = X.mean(axis=0)
        centred = X - self.mean_
        _, s, vt = np.linalg.svd(centred, full_matrices=False)
        self.components_ = vt[:k]
        n = X.shape[0]
        var = (s**2) / max(n - 1, 1)
        total = var.sum()
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = (
            var[:k] / total if total > 0 else np.zeros(k)
        )
        self.n_components_ = k
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA must be fitted first")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        # Row-stable product: projecting a batch must be bit-identical
        # to projecting each row alone (see ml/linalg.py).
        return rs_matmul_t(X - self.mean_, self.components_)

    def transform_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch projection; bit-identical to :meth:`transform` per row."""
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA must be fitted first")
        X = check_batch(X, n_features=self.mean_.shape[0])
        if X.shape[0] == 0:
            return np.empty((0, self.n_components_))
        return self.transform(X)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Reconstruct from component space (lossy if k < n_features)."""
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA must be fitted first")
        Z = check_array(Z)
        return Z @ self.components_ + self.mean_
