"""From-scratch NumPy machine-learning library.

Stands in for scikit-learn, XGBoost and TensorFlow, which the paper uses
but which are unavailable offline.  Everything the evaluation needs is
implemented here:

- clustering: :mod:`repro.ml.cluster` (K-Means, Mean-Shift, Birch)
- classifiers: decision tree, random forest, KNN, SVM (linear/RBF,
  one-vs-rest SMO), multinomial logistic regression, XGBoost-style
  second-order gradient boosting, and a small CNN over density images
- preprocessing: log/sqrt transforms, min-max scaling, PCA
- evaluation: accuracy / macro-F1 / multiclass MCC / confusion matrices,
  stratified K-fold cross-validation
"""

from repro.ml.base import BaseEstimator, check_X_y, check_array
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_macro,
    matthews_corrcoef,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    train_test_split,
)
from repro.ml.pca import PCA
from repro.ml.preprocessing import (
    MinMaxScaler,
    SparseDistributionTransformer,
    StandardScaler,
)

__all__ = [
    "BaseEstimator",
    "KFold",
    "MinMaxScaler",
    "PCA",
    "SparseDistributionTransformer",
    "StandardScaler",
    "StratifiedKFold",
    "accuracy_score",
    "check_X_y",
    "check_array",
    "confusion_matrix",
    "f1_macro",
    "matthews_corrcoef",
    "train_test_split",
]
