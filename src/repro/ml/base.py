"""Estimator protocol and array validation shared by all ML components."""

from __future__ import annotations

import abc

import numpy as np


def check_array(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate a 2-D finite float array."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains non-finite values")
    return X


def check_batch(
    X: np.ndarray, n_features: int | None = None, name: str = "X"
) -> np.ndarray:
    """Validate a 2-D finite float array that may hold zero samples.

    Batch entry points accept empty batches (a sharding planner may
    produce them at boundaries); :func:`check_array` rejects them because
    the estimators' math needs at least one row.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains non-finite values")
    if n_features is not None and X.shape[1] != n_features:
        raise ValueError(
            f"expected {n_features} features, got {X.shape[1]}"
        )
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and an aligned label vector."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(
            f"y must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
        )
    return X, y


def encode_labels(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary labels to 0..K-1; returns (classes, encoded)."""
    classes, encoded = np.unique(y, return_inverse=True)
    return classes, encoded


class BaseEstimator(abc.ABC):
    """Minimal fit/predict protocol.

    Estimators store learned state on ``self`` with a trailing underscore
    and must raise :class:`NotFittedError` from ``predict`` before ``fit``.
    """

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseEstimator":
        """Learn from (X, y); returns self for chaining."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels for X."""

    def fit_predict(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).predict(X)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Predict a stacked batch; tolerates zero-row input.

        Bit-identical to :meth:`predict` row by row: every estimator's
        inference path runs on row-stable kernels (``ml.linalg``) or
        per-row loops, so stacking inputs cannot change any output.
        Subclasses only override this when batching needs extra state.
        """
        X = check_batch(X)
        if X.shape[0] == 0:
            classes = getattr(self, "classes_", None)
            dtype = classes.dtype if classes is not None else np.float64
            return np.empty(0, dtype=dtype)
        return self.predict(X)

    def _require_fitted(self, attr: str) -> None:
        if not hasattr(self, attr):
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )


class NotFittedError(RuntimeError):
    """Raised when predict is called before fit."""
