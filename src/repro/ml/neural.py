"""From-scratch CNN over matrix density images.

Reimplements the deep-learning baseline of Zhao et al. [38], which the
paper reproduced in TensorFlow: the sparse matrix is *"encoded as an
image"* — a fixed-resolution density histogram — and a small CNN predicts
the format class.  Architecture: two conv+ReLU+maxpool stages, one hidden
dense layer, softmax output; trained with Adam on mini-batches.

As in the paper, the CNN is by far the most expensive model to train
(Table 9) and struggles with the unbalanced class distribution (§5.3:
*"the known difficulty CNNs face with unbalanced training sets"*).
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.ml.base import BaseEstimator, NotFittedError, encode_labels


def density_image(matrix: COOMatrix, resolution: int = 32) -> np.ndarray:
    """Fixed-size log-density image of the sparsity pattern.

    Bins the nonzeros into a ``resolution × resolution`` grid, then
    normalises ``log1p(counts)`` to [0, 1].
    """
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    r_bins = np.minimum(
        (matrix.rows * resolution) // matrix.nrows, resolution - 1
    )
    c_bins = np.minimum(
        (matrix.cols * resolution) // matrix.ncols, resolution - 1
    )
    img = np.zeros((resolution, resolution))
    np.add.at(img, (r_bins, c_bins), 1.0)
    img = np.log1p(img)
    peak = img.max()
    return img / peak if peak > 0 else img


# ---------------------------------------------------------------------------
# Layer primitives (NHWC tensors, im2col convolution)
# ---------------------------------------------------------------------------


def _im2col(X: np.ndarray, ksize: int) -> np.ndarray:
    """(n, h, w, c) → (n, h-k+1, w-k+1, k*k*c) patch matrix (valid conv)."""
    n, h, w, c = X.shape
    oh, ow = h - ksize + 1, w - ksize + 1
    s0, s1, s2, s3 = X.strides
    patches = np.lib.stride_tricks.as_strided(
        X,
        shape=(n, oh, ow, ksize, ksize, c),
        strides=(s0, s1, s2, s1, s2, s3),
        writeable=False,
    )
    return patches.reshape(n, oh, ow, ksize * ksize * c)


class _Conv:
    """Valid 2-D convolution with bias; stores cache for backprop."""

    def __init__(self, ksize: int, c_in: int, c_out: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / (ksize * ksize * c_in))
        self.W = rng.standard_normal((ksize * ksize * c_in, c_out)) * scale
        self.b = np.zeros(c_out)
        self.ksize = ksize
        self.c_in = c_in

    def forward(self, X: np.ndarray) -> np.ndarray:
        self._cols = _im2col(X, self.ksize)
        self._in_shape = X.shape
        return self._cols @ self.W + self.b

    def backward(self, dY: np.ndarray) -> np.ndarray:
        n, oh, ow, c_out = dY.shape
        cols = self._cols.reshape(-1, self.W.shape[0])
        dY_flat = dY.reshape(-1, c_out)
        self.dW = cols.T @ dY_flat
        self.db = dY_flat.sum(axis=0)
        dcols = (dY_flat @ self.W.T).reshape(
            n, oh, ow, self.ksize, self.ksize, self.c_in
        )
        dX = np.zeros(self._in_shape)
        # Scatter patch gradients back (col2im).
        for di in range(self.ksize):
            for dj in range(self.ksize):
                dX[:, di : di + oh, dj : dj + ow, :] += dcols[:, :, :, di, dj, :]
        return dX

    def params(self):
        return [(self.W, "dW"), (self.b, "db")]


class _ReLU:
    def forward(self, X: np.ndarray) -> np.ndarray:
        self._mask = X > 0
        return X * self._mask

    def backward(self, dY: np.ndarray) -> np.ndarray:
        return dY * self._mask

    def params(self):
        return []


class _MaxPool2:
    """2×2 max pooling (inputs must have even spatial dims)."""

    def forward(self, X: np.ndarray) -> np.ndarray:
        n, h, w, c = X.shape
        if h % 2 or w % 2:
            raise ValueError("MaxPool2 requires even spatial dimensions")
        blocks = X.reshape(n, h // 2, 2, w // 2, 2, c)
        self._blocks = blocks
        out = blocks.max(axis=(2, 4))
        self._argmask = blocks == out[:, :, None, :, None, :]
        return out

    def backward(self, dY: np.ndarray) -> np.ndarray:
        # Route gradient to max positions (ties share, then renormalised).
        counts = self._argmask.sum(axis=(2, 4), keepdims=True)
        grad = (
            self._argmask
            * dY[:, :, None, :, None, :]
            / np.maximum(counts, 1)
        )
        n, hh, _, ww, _, c = grad.shape
        return grad.reshape(n, hh * 2, ww * 2, c)

    def params(self):
        return []


class _Dense:
    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator):
        self.W = rng.standard_normal((d_in, d_out)) * np.sqrt(2.0 / d_in)
        self.b = np.zeros(d_out)

    def forward(self, X: np.ndarray) -> np.ndarray:
        self._X = X
        return X @ self.W + self.b

    def backward(self, dY: np.ndarray) -> np.ndarray:
        self.dW = self._X.T @ dY
        self.db = dY.sum(axis=0)
        return dY @ self.W.T

    def params(self):
        return [(self.W, "dW"), (self.b, "db")]


class _Flatten:
    def forward(self, X: np.ndarray) -> np.ndarray:
        self._shape = X.shape
        return X.reshape(X.shape[0], -1)

    def backward(self, dY: np.ndarray) -> np.ndarray:
        return dY.reshape(self._shape)

    def params(self):
        return []


def _softmax(Z: np.ndarray) -> np.ndarray:
    Z = Z - Z.max(axis=1, keepdims=True)
    e = np.exp(Z)
    return e / e.sum(axis=1, keepdims=True)


class CNNClassifier(BaseEstimator):
    """Small CNN on ``resolution²`` density images.

    ``fit``/``predict`` take image tensors of shape (n, res, res); use
    :func:`density_image` to build them from matrices.  Class weights
    counteract (but, as in the paper, do not fix) the CSR-heavy imbalance.
    """

    def __init__(
        self,
        resolution: int = 32,
        n_filters: tuple[int, int] = (8, 16),
        hidden: int = 64,
        epochs: int = 12,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        class_weighting: bool = False,
        seed: int = 0,
    ) -> None:
        self.resolution = resolution
        self.n_filters = n_filters
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.class_weighting = class_weighting
        self.seed = seed

    def _build(self, n_classes: int, rng: np.random.Generator) -> None:
        res = self.resolution
        f1, f2 = self.n_filters
        # valid conv 3x3 shrinks by 2; pad input by 1 via design: we just
        # track the running spatial size.
        s1 = (res - 2) // 2          # conv3 + pool2
        s2 = (s1 - 2) // 2           # conv3 + pool2
        if s2 < 1:
            raise ValueError(f"resolution {res} too small for this CNN")
        # MaxPool2 requires even inputs; crop convs handle typical 32→15
        # cases by flooring — enforce evenness via an assert-time check in
        # forward; choose resolution 32 (30→15 is odd) so crop one row/col.
        self._crop1 = (res - 2) % 2
        self._crop2 = ((res - 2 - self._crop1) // 2 - 2) % 2
        self.layers_ = [
            _Conv(3, 1, f1, rng),
            _ReLU(),
            _MaxPool2(),
            _Conv(3, f1, f2, rng),
            _ReLU(),
            _MaxPool2(),
            _Flatten(),
        ]
        flat = s2 * s2 * f2
        self._dense1 = _Dense(flat, self.hidden, rng)
        self._dense2 = _Dense(self.hidden, n_classes, rng)
        self._relu3 = _ReLU()

    def _forward(self, X: np.ndarray) -> np.ndarray:
        out = X[..., None]  # NHWC with one channel
        for i, layer in enumerate(self.layers_):
            out = layer.forward(out)
            # Crop to even spatial size before each pool if needed.
            if isinstance(layer, _ReLU) and out.ndim == 4:
                if out.shape[1] % 2:
                    out = out[:, :-1, :-1, :]
        out = self._dense1.forward(out)
        out = self._relu3.forward(out)
        return self._dense2.forward(out)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CNNClassifier":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 3 or X.shape[1] != self.resolution:
            raise ValueError(
                f"X must be (n, {self.resolution}, {self.resolution}) images"
            )
        self.classes_, encoded = encode_labels(np.asarray(y))
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.seed)
        self._build(k, rng)
        n = X.shape[0]
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0
        if self.class_weighting:
            freq = onehot.sum(axis=0)
            w_class = n / (k * np.maximum(freq, 1.0))
            sample_w = w_class[encoded]
        else:
            sample_w = np.ones(n)
        params = []
        for layer in self.layers_ + [self._dense1, self._dense2]:
            params.extend(
                (layer, arr, grad_name) for arr, grad_name in layer.params()
            )
        # Adam state per parameter tensor.
        m = [np.zeros_like(arr) for _, arr, _ in params]
        v = [np.zeros_like(arr) for _, arr, _ in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                if batch.size < 2:
                    continue
                logits = self._forward(X[batch])
                probs = _softmax(logits)
                w = sample_w[batch][:, None]
                dlogits = (probs - onehot[batch]) * w / batch.size
                # Backprop through the dense head then the conv stack.
                grad = self._dense2.backward(dlogits)
                grad = self._relu3.backward(grad)
                grad = self._dense1.backward(grad)
                for layer in reversed(self.layers_):
                    if isinstance(layer, _ReLU) and grad.ndim == 4:
                        want = layer._mask.shape
                        if grad.shape[1] != want[1]:
                            padded = np.zeros(want)
                            padded[:, : grad.shape[1], : grad.shape[2], :] = grad
                            grad = padded
                    grad = layer.backward(grad)
                t += 1
                for idx, (layer, arr, gname) in enumerate(params):
                    g = getattr(layer, gname)
                    m[idx] = beta1 * m[idx] + (1 - beta1) * g
                    v[idx] = beta2 * v[idx] + (1 - beta2) * (g * g)
                    mhat = m[idx] / (1 - beta1**t)
                    vhat = v[idx] / (1 - beta2**t)
                    arr -= self.learning_rate * mhat / (np.sqrt(vhat) + eps)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "layers_"):
            raise NotFittedError("CNNClassifier must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        return _softmax(self._forward(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
