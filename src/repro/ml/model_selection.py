"""Data-splitting utilities: K-fold CV (plain and stratified), holdout.

The paper evaluates everything with 5-fold cross-validation (§5.1) and its
transfer experiments retrain on 0/25/50% fractions of the target platform's
training data, which maps to :func:`train_test_split` with stratification.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class KFold:
    """Plain K-fold split over sample indices."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, seed: int = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(
        self, n_samples: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train, test


class StratifiedKFold:
    """K-fold preserving per-class proportions in every fold.

    Classes with fewer members than folds still work: their members are
    spread over the first folds round-robin.
    """

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, seed: int = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(
        self, y: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        if y.shape[0] < self.n_splits:
            raise ValueError(
                f"cannot split {y.shape[0]} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(y.shape[0], dtype=np.int64)
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(members.shape[0]) % self.n_splits
        for i in range(self.n_splits):
            test = np.flatnonzero(fold_of == i)
            train = np.flatnonzero(fold_of != i)
            if test.size == 0 or train.size == 0:
                raise ValueError(
                    "stratified split produced an empty fold; "
                    "use fewer splits"
                )
            yield train, test


def train_test_split(
    n_samples: int,
    test_fraction: float,
    y: np.ndarray | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Index split into (train, test); stratified when ``y`` is given.

    ``test_fraction`` may be 0 (empty test set) — the transfer experiments
    use a 0% retraining case.
    """
    if not 0.0 <= test_fraction < 1.0:
        raise ValueError("test_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    indices = np.arange(n_samples)
    n_test = int(round(test_fraction * n_samples))
    if n_test == 0:
        return indices, np.empty(0, dtype=np.int64)
    if y is None:
        rng.shuffle(indices)
        return indices[n_test:], indices[:n_test]
    y = np.asarray(y)
    if y.shape[0] != n_samples:
        raise ValueError("y length must equal n_samples")
    test_parts: list[np.ndarray] = []
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        k = int(round(test_fraction * members.shape[0]))
        test_parts.append(members[:k])
    test = np.sort(np.concatenate(test_parts))
    mask = np.ones(n_samples, dtype=bool)
    mask[test] = False
    return np.flatnonzero(mask), test
