"""Mean-Shift clustering (flat kernel) with bandwidth estimation.

Comaniciu & Meer's mode-seeking procedure [8].  As the paper observes
(§5.2), Mean-Shift determines the number of clusters itself and tends to
find *"many clusters which are too small to capture meaningful differences
in performance"* — its weak results are part of the reproduced story.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array, check_batch
from repro.ml.knn import pairwise_sq_dists
from repro.obs import TELEMETRY


def estimate_bandwidth(
    X: np.ndarray, quantile: float = 0.3, n_samples: int = 500, seed: int = 0
) -> float:
    """Mean distance to the ``quantile``-fraction nearest neighbours.

    Mirrors scikit-learn's estimator: for each (sub)sampled point, take the
    mean of the distance to its k = quantile·n nearest neighbours.
    """
    X = check_array(X)
    if not 0 < quantile <= 1:
        raise ValueError("quantile must be in (0, 1]")
    rng = np.random.default_rng(seed)
    if X.shape[0] > n_samples:
        X = X[rng.choice(X.shape[0], n_samples, replace=False)]
    n = X.shape[0]
    k = max(1, int(n * quantile))
    d = np.sqrt(pairwise_sq_dists(X, X))
    d.sort(axis=1)
    # Column 0 is the self-distance (0); average the next k.
    return float(d[:, 1 : k + 1].mean())


class MeanShift:
    """Flat-kernel mean shift over all points as seeds.

    Modes closer than the bandwidth are merged; points are assigned to the
    nearest mode.  ``predict`` assigns new points to the nearest mode, so
    the model plugs into the same selector machinery as K-Means.
    """

    def __init__(
        self,
        bandwidth: float | None = None,
        max_iter: int = 200,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.bandwidth = bandwidth
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(self, X: np.ndarray) -> "MeanShift":
        X = check_array(X)
        bw = (
            self.bandwidth
            if self.bandwidth is not None
            else estimate_bandwidth(X, seed=self.seed)
        )
        if bw <= 0:
            # Degenerate data (all points identical): one cluster.
            self.bandwidth_ = 0.0
            self.cluster_centers_ = X[:1].copy()
            self.labels_ = np.zeros(X.shape[0], dtype=np.int64)
            self.n_iter_ = 0
            return self
        self.bandwidth_ = float(bw)
        bw2 = bw * bw
        # Shift every seed to its local mode (vectorised over all seeds).
        modes = X.copy()
        active = np.ones(modes.shape[0], dtype=bool)
        n_iter = 0
        with TELEMETRY.span("meanshift.fit", n_samples=X.shape[0]):
            for n_iter in range(1, self.max_iter + 1):
                if not active.any():
                    n_iter -= 1
                    break
                d2 = pairwise_sq_dists(modes[active], X)
                within = d2 <= bw2
                counts = within.sum(axis=1)
                # Every seed is within bw of itself, so counts >= 1.
                new_modes = (within @ X) / counts[:, None]
                shift2 = np.einsum(
                    "ij,ij->i",
                    new_modes - modes[active],
                    new_modes - modes[active],
                )
                modes[active] = new_modes
                still = shift2 > (self.tol * bw) ** 2
                idx = np.flatnonzero(active)
                active[idx[~still]] = False
            self.cluster_centers_ = self._merge_modes(modes, bw)
            self.labels_ = self.predict(X)
        self.n_iter_ = n_iter
        TELEMETRY.gauge_set("meanshift.iterations", n_iter)
        return self

    def _merge_modes(self, modes: np.ndarray, bw: float) -> np.ndarray:
        """Deduplicate converged modes closer than the bandwidth.

        Modes are processed in order of their basin population, so larger
        basins absorb smaller nearby ones (as in scikit-learn).
        """
        d2 = pairwise_sq_dists(modes, modes)
        population = (d2 <= bw * bw).sum(axis=1)
        order = np.argsort(population)[::-1]
        kept: list[np.ndarray] = []
        for i in order:
            mode = modes[i]
            if all(np.sum((mode - k) ** 2) > bw * bw for k in kept):
                kept.append(mode)
        return np.vstack(kept)

    @property
    def n_clusters_(self) -> int:
        if not hasattr(self, "cluster_centers_"):
            raise NotFittedError("MeanShift must be fitted first")
        return int(self.cluster_centers_.shape[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "cluster_centers_"):
            raise NotFittedError("MeanShift must be fitted first")
        X = check_array(X)
        return np.argmin(pairwise_sq_dists(X, self.cluster_centers_), axis=1)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch assignment; bit-identical to :meth:`predict` per row."""
        if not hasattr(self, "cluster_centers_"):
            raise NotFittedError("MeanShift must be fitted first")
        X = check_batch(X, n_features=self.cluster_centers_.shape[1])
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return self.predict(X)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
