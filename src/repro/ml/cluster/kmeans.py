"""K-Means clustering with k-means++ seeding and Lloyd iterations."""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array, check_batch
from repro.ml.knn import pairwise_sq_dists
from repro.obs import TELEMETRY


def kmeans_plusplus(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D²-weighted sequential centroid choice."""
    n = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = X[first]
    closest_d2 = pairwise_sq_dists(X, centers[:1]).ravel()
    for c in range(1, n_clusters):
        total = closest_d2.sum()
        if total <= 0:
            # All points coincide with chosen centers; pick uniformly.
            idx = int(rng.integers(0, n))
        else:
            idx = int(rng.choice(n, p=closest_d2 / total))
        centers[c] = X[idx]
        d2_new = pairwise_sq_dists(X, centers[c : c + 1]).ravel()
        np.minimum(closest_d2, d2_new, out=closest_d2)
    return centers


class KMeans:
    """Lloyd's algorithm, best of ``n_init`` k-means++ restarts.

    Empty clusters are re-seeded with the points farthest from their
    assigned centroids, so the fitted model always exposes exactly
    ``n_clusters`` centroids (the semi-supervised selector indexes
    label tables by cluster id).
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(self, X: np.ndarray) -> "KMeans":
        X = check_array(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"{X.shape[0]} samples cannot form {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        with TELEMETRY.span(
            "kmeans.fit", n_clusters=self.n_clusters, n_samples=X.shape[0]
        ):
            for _ in range(self.n_init):
                centers, labels, inertia, n_iter = self._single_run(X, rng)
                if inertia < best_inertia:
                    best_inertia = inertia
                    self.cluster_centers_ = centers
                    self.labels_ = labels
                    self.inertia_ = float(inertia)
                    self.n_iter_ = n_iter
        TELEMETRY.gauge_set("kmeans.iterations", self.n_iter_)
        return self

    def _single_run(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = kmeans_plusplus(X, self.n_clusters, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        prev_inertia = np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            d2 = pairwise_sq_dists(X, centers)
            labels = np.argmin(d2, axis=1)
            inertia = float(d2[np.arange(X.shape[0]), labels].sum())
            # Recompute centroids; re-seed empties with farthest points.
            counts = np.bincount(labels, minlength=self.n_clusters)
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, X)
            nonempty = counts > 0
            centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            empties = np.flatnonzero(~nonempty)
            if empties.size:
                dist_to_own = d2[np.arange(X.shape[0]), labels]
                farthest = np.argsort(dist_to_own)[::-1][: empties.size]
                centers[empties] = X[farthest]
            if prev_inertia - inertia <= self.tol * max(prev_inertia, 1e-300):
                break
            prev_inertia = inertia
        d2 = pairwise_sq_dists(X, centers)
        labels = np.argmin(d2, axis=1)
        inertia = float(d2[np.arange(X.shape[0]), labels].sum())
        return centers, labels, inertia, n_iter

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment (the paper's inference rule)."""
        if not hasattr(self, "cluster_centers_"):
            raise NotFittedError("KMeans must be fitted first")
        X = check_array(X)
        return np.argmin(pairwise_sq_dists(X, self.cluster_centers_), axis=1)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch assignment; bit-identical to :meth:`predict` per row."""
        if not hasattr(self, "cluster_centers_"):
            raise NotFittedError("KMeans must be fitted first")
        X = check_batch(X, n_features=self.cluster_centers_.shape[1])
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return self.predict(X)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
