"""Clustering algorithms used by the semi-supervised selector.

The paper (§4): *"we implement and test our approach with a variety of
clustering algorithms, including the well-known K-Means, as well as
Mean-Shift and Birch clustering."*
"""

from repro.ml.cluster.birch import Birch
from repro.ml.cluster.kmeans import KMeans
from repro.ml.cluster.meanshift import MeanShift, estimate_bandwidth

__all__ = ["Birch", "KMeans", "MeanShift", "estimate_bandwidth"]
