"""BIRCH clustering (Zhang, Ramakrishnan & Livny [37]).

A CF-tree incrementally absorbs points into subclusters bounded by a
radius ``threshold``, splitting nodes that exceed the ``branching_factor``.
A global step then groups the leaf subcluster centroids into ``n_clusters``
groups with K-Means, as scikit-learn's implementation does.

BIRCH is the one incremental algorithm in the paper's portfolio, which is
why its conclusion singles out incremental clustering as the route to an
*online* format-selection system.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array, check_batch
from repro.ml.cluster.kmeans import KMeans
from repro.ml.knn import pairwise_sq_dists
from repro.obs import TELEMETRY


class _CF:
    """Clustering feature: (count, linear sum, sum of squared norms)."""

    __slots__ = ("n", "ls", "ss", "child")

    def __init__(self, dim: int, child: "_Node | None" = None) -> None:
        self.n = 0
        self.ls = np.zeros(dim)
        self.ss = 0.0
        self.child = child

    def add_point(self, x: np.ndarray) -> None:
        self.n += 1
        self.ls += x
        self.ss += float(x @ x)

    def merge(self, other: "_CF") -> None:
        self.n += other.n
        self.ls += other.ls
        self.ss += other.ss

    @property
    def centroid(self) -> np.ndarray:
        return self.ls / self.n if self.n else self.ls

    def radius_with(self, x: np.ndarray) -> float:
        """RMS radius of this subcluster after absorbing ``x``."""
        n = self.n + 1
        ls = self.ls + x
        ss = self.ss + float(x @ x)
        centroid = ls / n
        r2 = ss / n - float(centroid @ centroid)
        return float(np.sqrt(max(r2, 0.0)))


class _Node:
    """CF-tree node holding up to ``branching_factor`` CF entries."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: list[_CF] = []
        self.is_leaf = is_leaf

    def closest_entry(self, x: np.ndarray) -> int:
        centroids = np.vstack([e.centroid for e in self.entries])
        d2 = pairwise_sq_dists(x[None, :], centroids).ravel()
        return int(np.argmin(d2))


class Birch:
    """CF-tree clustering with a K-Means global step.

    Parameters
    ----------
    n_clusters
        Target number of global clusters; ``None`` keeps the raw leaf
        subclusters as the final clustering.
    threshold
        Maximum RMS radius of a leaf subcluster.
    branching_factor
        Maximum CF entries per node before a split.
    """

    def __init__(
        self,
        n_clusters: int | None = 8,
        threshold: float = 0.25,
        branching_factor: int = 50,
        seed: int = 0,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if branching_factor < 2:
            raise ValueError("branching_factor must be >= 2")
        self.n_clusters = n_clusters
        self.threshold = threshold
        self.branching_factor = branching_factor
        self.seed = seed

    # -- CF-tree construction ---------------------------------------------

    def _insert(self, node: _Node, x: np.ndarray) -> _CF | None:
        """Insert ``x``; returns a new sibling CF if ``node`` split."""
        dim = x.shape[0]
        if not node.entries:
            cf = _CF(dim)
            cf.add_point(x)
            node.entries.append(cf)
            return None
        idx = node.closest_entry(x)
        entry = node.entries[idx]
        if node.is_leaf:
            if entry.radius_with(x) <= self.threshold:
                entry.add_point(x)
                return None
            cf = _CF(dim)
            cf.add_point(x)
            node.entries.append(cf)
        else:
            new_sibling = self._insert(entry.child, x)
            entry.add_point(x)
            if new_sibling is not None:
                node.entries.append(new_sibling)
                # The parent entry no longer covers the moved children:
                # rebuild its CF from the child node.
                self._refresh_entry(entry)
        if len(node.entries) > self.branching_factor:
            return self._split(node)
        return None

    def _refresh_entry(self, entry: _CF) -> None:
        child = entry.child
        entry.n = sum(e.n for e in child.entries)
        entry.ls = np.sum([e.ls for e in child.entries], axis=0)
        entry.ss = float(sum(e.ss for e in child.entries))

    def _split(self, node: _Node) -> _CF:
        """Split ``node`` in place; returns the CF wrapping the new sibling."""
        centroids = np.vstack([e.centroid for e in node.entries])
        d2 = pairwise_sq_dists(centroids, centroids)
        i, j = np.unravel_index(np.argmax(d2), d2.shape)
        keep = _Node(node.is_leaf)
        move = _Node(node.is_leaf)
        for k, entry in enumerate(node.entries):
            target = keep if d2[k, i] <= d2[k, j] else move
            target.entries.append(entry)
        if not keep.entries or not move.entries:
            # Degenerate (all centroids identical): split arbitrarily.
            half = len(node.entries) // 2
            keep.entries = node.entries[:half]
            move.entries = node.entries[half:]
        node.entries = keep.entries
        dim = node.entries[0].ls.shape[0]
        sibling_cf = _CF(dim, child=move)
        self._refresh_entry(sibling_cf)
        return sibling_cf

    def fit(self, X: np.ndarray) -> "Birch":
        X = check_array(X)
        dim = X.shape[1]
        root = _Node(is_leaf=True)
        with TELEMETRY.span("birch.fit", n_samples=X.shape[0]):
            for x in X:
                sibling = self._insert(root, x)
                if sibling is not None:
                    # Grow a new root one level up.
                    old_cf = _CF(dim, child=root)
                    if root.is_leaf:
                        # Wrap the old root's entries directly.
                        old_cf.n = sum(e.n for e in root.entries)
                        old_cf.ls = np.sum(
                            [e.ls for e in root.entries], axis=0
                        )
                        old_cf.ss = float(sum(e.ss for e in root.entries))
                    else:
                        self._refresh_entry(old_cf)
                    new_root = _Node(is_leaf=False)
                    new_root.entries = [old_cf, sibling]
                    root = new_root
            self._root = root
            leaves = self._collect_leaf_entries(root)
            self.subcluster_centers_ = np.vstack(
                [cf.centroid for cf in leaves]
            )
            self.subcluster_counts_ = np.array([cf.n for cf in leaves])
            self._global_step()
            self.labels_ = self.predict(X)
        # Birch converges in one pass; its convergence signal is the tree
        # size the pass produced.
        TELEMETRY.gauge_set("birch.subclusters", len(leaves))
        return self

    def _collect_leaf_entries(self, node: _Node) -> list[_CF]:
        if node.is_leaf:
            return list(node.entries)
        out: list[_CF] = []
        for entry in node.entries:
            out.extend(self._collect_leaf_entries(entry.child))
        return out

    def _global_step(self) -> None:
        n_sub = self.subcluster_centers_.shape[0]
        if self.n_clusters is None or self.n_clusters >= n_sub:
            self.subcluster_labels_ = np.arange(n_sub)
            self.n_clusters_ = n_sub
            return
        km = KMeans(n_clusters=self.n_clusters, seed=self.seed)
        km.fit(self.subcluster_centers_)
        self.subcluster_labels_ = km.labels_
        self.n_clusters_ = self.n_clusters

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "subcluster_centers_"):
            raise NotFittedError("Birch must be fitted first")
        X = check_array(X)
        nearest = np.argmin(
            pairwise_sq_dists(X, self.subcluster_centers_), axis=1
        )
        return self.subcluster_labels_[nearest]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch assignment; bit-identical to :meth:`predict` per row."""
        if not hasattr(self, "subcluster_centers_"):
            raise NotFittedError("Birch must be fitted first")
        X = check_batch(X, n_features=self.subcluster_centers_.shape[1])
        if X.shape[0] == 0:
            return np.empty(0, dtype=self.subcluster_labels_.dtype)
        return self.predict(X)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
