"""Random Forest classifier.

The paper's setup (§5.1): *"For RF, we use 100 estimators with a maximum
depth of 6."*  Bagged CART trees with sqrt-feature subsampling and
soft-probability voting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseEstimator):
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_: list[DecisionTreeClassifier] = []
        for t in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        X = check_array(X)
        # Trees may have seen different class subsets in their bootstrap
        # samples; align their probability columns onto self.classes_.
        agg = np.zeros((X.shape[0], self.classes_.shape[0]))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            cols = np.searchsorted(self.classes_, tree.classes_)
            agg[:, cols] += proba
        return agg / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
