"""Classification metrics: ACC, macro-F1, multiclass MCC, confusion matrix.

The paper reports accuracy and F1 like prior work, and argues (§5.2, citing
Chicco & Jurman 2020) for Matthews correlation coefficient because the
format classes are highly unbalanced: *"MCC is a statistical rate that
produces a high score only if the predictions obtained good results in all
the cells of the confusion matrix, proportional to the number of elements
in each class of the dataset."*
"""

from __future__ import annotations

import numpy as np


def _check_pair(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim != 1 or y_true.shape != y_pred.shape:
        raise ValueError(
            f"label arrays must be 1-D and aligned, got {y_true.shape} "
            f"vs {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("label arrays must be non-empty")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | list | None = None,
) -> np.ndarray:
    """C[i, j] = count of samples with true label i predicted as j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {lab: i for i, lab in enumerate(labels.tolist())}
    k = len(labels)
    cm = np.zeros((k, k), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        cm[index[t], index[p]] += 1
    return cm


def precision_recall_f1_per_class(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | list | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 (0 where undefined)."""
    cm = confusion_matrix(y_true, y_pred, labels)
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    true_pos = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        recall = np.where(true_pos > 0, tp / true_pos, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1


def f1_macro(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | list | None = None,
) -> float:
    """Unweighted mean of per-class F1 over classes present in y_true.

    Classes that never occur as a true label (they can appear in ``labels``
    or as spurious predictions) are excluded from the average, so a model
    is not rewarded or punished for classes absent from the test fold.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    _, _, f1 = precision_recall_f1_per_class(y_true, y_pred, labels)
    present = np.isin(labels, np.unique(y_true))
    if not present.any():
        return 0.0
    return float(f1[present].mean())


def f1_weighted(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Support-weighted mean of per-class F1."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    _, _, f1 = precision_recall_f1_per_class(y_true, y_pred, labels)
    support = np.array([(y_true == lab).sum() for lab in labels], dtype=float)
    return float(np.average(f1, weights=support)) if support.sum() else 0.0


def matthews_corrcoef(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Multiclass MCC (Gorodkin's R_K statistic).

    Computed from the confusion matrix C as

        (c*s - Σ_k p_k t_k) /
        sqrt((s² - Σ p_k²)(s² - Σ t_k²))

    where c = trace(C), s = total samples, p_k = column sums (predicted),
    t_k = row sums (true).  Returns 0 when either variance term vanishes
    (all-one-class predictions or labels), matching scikit-learn.
    """
    cm = confusion_matrix(y_true, y_pred).astype(np.float64)
    t_k = cm.sum(axis=1)
    p_k = cm.sum(axis=0)
    c = np.trace(cm)
    s = cm.sum()
    cov_ytyp = c * s - float(t_k @ p_k)
    cov_ypyp = s * s - float(p_k @ p_k)
    cov_ytyt = s * s - float(t_k @ t_k)
    denom = np.sqrt(cov_ypyp) * np.sqrt(cov_ytyt)
    if denom == 0:
        return 0.0
    # The sqrt rounding can push a perfect (anti-)correlation a few ulp
    # outside the mathematical range; clamp to [-1, 1].
    return float(min(1.0, max(-1.0, cov_ytyp / denom)))
