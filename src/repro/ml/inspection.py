"""Model inspection: permutation feature importance.

The paper contrasts its clustering approach's explainability with
black-box supervised models (§1: *"it is hard to understand the results
of many supervised systems"*).  Permutation importance is the standard
model-agnostic probe for those black boxes: shuffle one feature column
and measure how much a metric drops.  Used by the explainability example
to show which Table-1 features a Random Forest actually relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml.metrics import accuracy_score


@dataclass(frozen=True)
class ImportanceResult:
    """Per-feature importance: mean and std of the metric drop."""

    importances_mean: np.ndarray
    importances_std: np.ndarray
    baseline_score: float

    def ranking(self) -> np.ndarray:
        """Feature indices sorted by decreasing importance."""
        return np.argsort(self.importances_mean)[::-1]


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    n_repeats: int = 5,
    seed: int = 0,
) -> ImportanceResult:
    """Importance of each feature as the mean metric drop when shuffled.

    ``model`` must be fitted and expose ``predict``.  Higher is more
    important; near-zero (or negative) means the model ignores the
    feature.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = np.random.default_rng(seed)
    baseline = metric(y, model.predict(X))
    n_features = X.shape[1]
    drops = np.empty((n_features, n_repeats))
    for j in range(n_features):
        for r in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            drops[j, r] = baseline - metric(y, model.predict(shuffled))
    return ImportanceResult(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        baseline_score=float(baseline),
    )
