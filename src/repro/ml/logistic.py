"""Multinomial logistic regression (softmax, L2-regularised, L-BFGS).

Used both as a supervised baseline component and as one of the paper's
per-cluster labelers (the "LR" in K-Means-LR / Birch-LR / Mean-Shift-LR).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BaseEstimator, check_X_y, check_array, encode_labels
from repro.ml.linalg import rs_matmul_t


def _softmax(Z: np.ndarray) -> np.ndarray:
    Z = Z - Z.max(axis=1, keepdims=True)
    e = np.exp(Z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator):
    """Softmax regression minimising L2-regularised cross-entropy.

    ``C`` is the inverse regularisation strength (scikit-learn
    convention); the bias column is not regularised.
    """

    def __init__(
        self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self.classes_, encoded = encode_labels(y)
        n, d = X.shape
        k = self.classes_.shape[0]
        if k == 1:
            # Degenerate single-class training set: constant predictor.
            self.coef_ = np.zeros((1, d))
            self.intercept_ = np.zeros(1)
            return self
        Xb = np.hstack([X, np.ones((n, 1))])
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0
        lam = 1.0 / (self.C * n)

        def objective(w_flat: np.ndarray) -> tuple[float, np.ndarray]:
            W = w_flat.reshape(k, d + 1)
            P = _softmax(Xb @ W.T)
            # Cross-entropy; clip against log(0) for confident mistakes.
            loss = -np.sum(onehot * np.log(np.maximum(P, 1e-300))) / n
            reg = 0.5 * lam * np.sum(W[:, :d] ** 2)
            G = (P - onehot).T @ Xb / n
            G[:, :d] += lam * W[:, :d]
            return loss + reg, G.ravel()

        w0 = np.zeros(k * (d + 1))
        res = minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        W = res.x.reshape(k, d + 1)
        self.coef_ = W[:, :d]
        self.intercept_ = W[:, d]
        self.converged_ = bool(res.success)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[1]:
            raise ValueError(
                f"expected {self.coef_.shape[1]} features, got {X.shape[1]}"
            )
        # Row-stable product keeps per-row scores batch-size independent.
        return rs_matmul_t(X, self.coef_) + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        if self.classes_.shape[0] == 1:
            return np.ones((X.shape[0], 1))
        return _softmax(scores)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
