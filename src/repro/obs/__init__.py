"""repro.obs — tracing, metrics, and profiling for the selection pipeline.

Three layers:

- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms in
  a thread-safe registry, exportable as JSON and Prometheus text format.
- :mod:`repro.obs.trace` — a tree of timed spans (``perf_counter``-based),
  exportable as Chrome-trace-compatible JSONL.
- :mod:`repro.obs.telemetry` — the global :data:`TELEMETRY` facade that
  instrumented call sites use.  **No-op by default**: with telemetry
  disabled, ``TELEMETRY.span()`` returns one shared no-op object and the
  metric helpers return after a single predicate, so instrumentation on
  hot paths (feature extraction, online updates, frozen-selector
  predict) is effectively free until a profiling run turns it on.

Typical use::

    from repro.obs import TELEMETRY

    TELEMETRY.enable()
    with TELEMETRY.span("pipeline.fit", n=len(X)):
        ...
    TELEMETRY.tracer.write_jsonl("trace.jsonl")
    print(TELEMETRY.registry.to_prometheus())

The CLI exposes the same machinery as ``repro <cmd> --profile [PATH]``
and ``repro stats <trace.jsonl>``.
"""

from repro.obs.context import (
    TraceContext,
    activate,
    current_context,
    new_trace_id,
    request_scope,
    stitch,
    worker_capture,
)
from repro.obs.events import EventLog, read_events
from repro.obs.export import dump_profile, render_metrics, render_span_tree
from repro.obs.metrics import (
    BACKOFF_BUCKETS,
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    bucket_quantile,
    exact_quantile,
    quantile_key,
    snapshot_quantile,
    summarize,
)
from repro.obs.slo import (
    SLOConfigError,
    SLOResult,
    evaluate,
    load_slo_file,
)
from repro.obs.stats import (
    HotPath,
    TraceParseError,
    aggregate,
    load_trace,
    render_hot_paths,
    stats_report,
    total_root_seconds,
)
from repro.obs.telemetry import (
    NOOP_SPAN,
    Stopwatch,
    Telemetry,
    TELEMETRY,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "BACKOFF_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "EventLog",
    "Gauge",
    "Histogram",
    "HotPath",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SLOConfigError",
    "SLOResult",
    "Span",
    "Stopwatch",
    "TELEMETRY",
    "Telemetry",
    "TraceContext",
    "TraceParseError",
    "Tracer",
    "activate",
    "aggregate",
    "bucket_quantile",
    "current_context",
    "dump_profile",
    "evaluate",
    "exact_quantile",
    "load_slo_file",
    "load_trace",
    "new_trace_id",
    "quantile_key",
    "read_events",
    "render_hot_paths",
    "render_metrics",
    "render_span_tree",
    "request_scope",
    "snapshot_quantile",
    "stats_report",
    "stitch",
    "summarize",
    "total_root_seconds",
    "worker_capture",
]
