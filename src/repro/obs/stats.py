"""Aggregate a span trace into a hot-path report.

``repro stats <trace.jsonl>`` lands here.  The input is the JSONL written
by :meth:`repro.obs.trace.Tracer.write_jsonl`: one Chrome-trace complete
event per line, each carrying ``args.id``/``args.parent`` so the span
tree can be rebuilt exactly (no reliance on timestamp containment).

Per span *name* we report:

- **calls** — number of spans,
- **cum** — cumulative time (sum of durations),
- **self** — cum minus time spent in child spans, i.e. where the time
  actually goes,
- **self%** — share of the total self time across all names.

Sorted by self time, this is the "where does selection time go?" table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass


class TraceParseError(ValueError):
    """The file is not a span-event JSONL trace."""


@dataclass
class HotPath:
    """Aggregated timing for one span name."""

    name: str
    calls: int
    cum_seconds: float
    self_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.cum_seconds / self.calls if self.calls else 0.0


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace; raises :class:`TraceParseError` on bad input.

    Missing and unreadable files raise the same typed error as garbage
    content — the CLI maps all of them onto one exit-code-2 diagnostic
    instead of surfacing a raw traceback.
    """
    events: list[dict] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise TraceParseError(f"{path}: cannot read trace: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceParseError(
                    f"{path}:{lineno}: not JSON: {exc}"
                ) from exc
            if not isinstance(event, dict) or "name" not in event \
                    or "dur" not in event:
                raise TraceParseError(
                    f"{path}:{lineno}: not a span event (need name/dur)"
                )
            events.append(event)
    return events


def aggregate(events: list[dict]) -> list[HotPath]:
    """Group events by name; self time = duration − children durations."""
    dur_by_id: dict[int, float] = {}
    child_seconds: dict[int, float] = {}
    for event in events:
        args = event.get("args", {})
        span_id = args.get("id")
        dur = float(event["dur"]) / 1e6
        if span_id is not None:
            dur_by_id[span_id] = dur
    for event in events:
        args = event.get("args", {})
        parent = args.get("parent", -1)
        if parent is not None and parent != -1:
            child_seconds[parent] = (
                child_seconds.get(parent, 0.0) + float(event["dur"]) / 1e6
            )
    grouped: dict[str, HotPath] = {}
    for event in events:
        name = event["name"]
        args = event.get("args", {})
        span_id = args.get("id")
        dur = float(event["dur"]) / 1e6
        self_dur = max(0.0, dur - child_seconds.get(span_id, 0.0))
        hp = grouped.get(name)
        if hp is None:
            grouped[name] = HotPath(name, 1, dur, self_dur)
        else:
            hp.calls += 1
            hp.cum_seconds += dur
            hp.self_seconds += self_dur
    return sorted(
        grouped.values(), key=lambda h: h.self_seconds, reverse=True
    )


def total_root_seconds(events: list[dict]) -> float:
    """Wall time covered by the trace (sum of root-span durations)."""
    return sum(
        float(e["dur"]) / 1e6
        for e in events
        if e.get("args", {}).get("parent", -1) == -1
    )


def render_hot_paths(hot: list[HotPath], top: int | None = None) -> str:
    """Fixed-width hot-path table (self-time descending)."""
    rows = hot[:top] if top else hot
    total_self = sum(h.self_seconds for h in hot) or 1.0
    name_w = max([len(h.name) for h in rows] + [len("span")])
    header = (
        f"{'span':<{name_w}}  {'calls':>7}  {'cum (s)':>10}  "
        f"{'self (s)':>10}  {'self%':>6}  {'mean (s)':>10}"
    )
    lines = [header, "-" * len(header)]
    for h in rows:
        lines.append(
            f"{h.name:<{name_w}}  {h.calls:>7}  {h.cum_seconds:>10.4f}  "
            f"{h.self_seconds:>10.4f}  "
            f"{100 * h.self_seconds / total_self:>5.1f}%  "
            f"{h.mean_seconds:>10.6f}"
        )
    return "\n".join(lines)


def stats_report(path: str, top: int | None = None) -> str:
    """Full ``repro stats`` report for one trace file."""
    events = load_trace(path)
    if not events:
        raise TraceParseError(f"{path}: empty trace (no span events)")
    hot = aggregate(events)
    lines = [
        f"trace: {path}",
        f"events: {len(events)}  span names: {len(hot)}  "
        f"covered wall time: {total_root_seconds(events):.4f}s",
        "",
        render_hot_paths(hot, top=top),
    ]
    return "\n".join(lines)
